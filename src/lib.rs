//! # rexec — a different re-execution speed can help
//!
//! Umbrella crate re-exporting the full `rexec` workspace: a reproduction
//! of Benoit, Cavelan, Le Fèvre, Robert & Sun, *“A different re-execution
//! speed can help”* (INRIA RR-8888 / ICPP 2016).
//!
//! * [`core`] — exact expectations, first/second-order approximations,
//!   Theorem 1 and the BiCrit solver, Theorem 2, baselines.
//! * [`platforms`] — the paper's published platform and processor
//!   configurations (Hera, Atlas, Coastal, Coastal SSD × XScale, Crusoe).
//! * [`sim`] — a discrete-event Monte Carlo simulator of the execution
//!   model (silent + fail-stop error injection, DVFS, verified
//!   checkpoints, energy metering).
//! * [`sweep`] — the experiment harness regenerating every table and
//!   figure of the paper's evaluation section.
//! * [`obs`] — lightweight observability: counters, histogram sketches,
//!   RAII span timers and a registry with deterministic JSON snapshots.
//! * [`serve`] — the batching, plan-caching planning daemon
//!   (`rexec-serve`/`rexec-loadgen`) answering plan queries over
//!   newline-delimited JSON.
//!
//! See `examples/quickstart.rs` for a five-line tour.

#![warn(missing_docs)]
pub use rexec_core as core;
pub use rexec_obs as obs;
pub use rexec_platforms as platforms;
pub use rexec_serve as serve;
pub use rexec_sim as sim;
pub use rexec_sweep as sweep;

/// One-stop prelude: the analytic core prelude plus the catalog of paper
/// configurations and the simulator entry points.
pub mod prelude {
    pub use rexec_core::prelude::*;
    pub use rexec_platforms::prelude::*;
    pub use rexec_sim::prelude::*;
}
