//! Section 5 extensions: platforms subject to both fail-stop and silent
//! errors.
//!
//! ```text
//! cargo run --example mixed_errors
//! ```
//!
//! * shows the validity window of the first-order approximation as a
//!   function of the fail-stop fraction `f`;
//! * solves BiCrit numerically on the exact mixed model (no closed form
//!   exists) for several error mixes;
//! * demonstrates the sign flip of the linear overhead coefficient at
//!   `σ₂/σ₁ = 2(1 + s/f)`.

use rexec::prelude::*;

fn main() {
    let costs = ResilienceCosts::symmetric(300.0, 15.4);
    let power = PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap();
    let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
    let lambda_total = 1e-5;

    println!("validity window of the first-order approximation (§5.2):");
    println!("  (2(1+s/f))^(-1/2) < sigma2/sigma1 < 2(1+s/f)\n");
    println!("{:>6} {:>12} {:>12}", "f", "lower", "upper");
    for f in [1.0, 0.75, 0.5, 0.25, 0.1] {
        let (lo, hi) = FirstOrder::validity_window(f);
        println!("{f:>6} {lo:>12.4} {hi:>12.2}");
    }

    println!("\nexact numeric BiCrit on the mixed model (rho = 3):\n");
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "f", "sigma1", "sigma2", "Wopt", "E/W", "T/W"
    );
    for f in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mm = MixedModel::new(
            ErrorRates::from_total(lambda_total, f).unwrap(),
            costs,
            power,
        );
        match numeric::exact_bicrit_solve_mixed(&mm, &speeds, 3.0) {
            Some((s1, s2, o)) => println!(
                "{f:>6} {s1:>8} {s2:>8} {:>10.0} {:>12.1} {:>10.3}",
                o.w, o.objective, o.constraint
            ),
            None => println!(
                "{f:>6} {:>8} {:>8} {:>10} {:>12} {:>10}",
                "-", "-", "-", "-", "-"
            ),
        }
    }

    println!("\nsign of the first-order linear time coefficient vs sigma2/sigma1");
    println!("(fail-stop only, f = 1: flips at ratio 2 — beyond it the");
    println!("first-order overhead decreases without bound and the");
    println!("approximation breaks down):\n");
    let mm = MixedModel::new(
        ErrorRates::fail_stop_only(lambda_total).unwrap(),
        costs,
        power,
    );
    let s1 = 0.4;
    println!("{:>8} {:>14}", "ratio", "coefficient y");
    for ratio in [0.5, 1.0, 1.5, 1.9, 2.0, 2.1, 2.5] {
        let co = FirstOrder::time_coefficients_mixed(&mm, s1, ratio * s1);
        println!("{ratio:>8} {:>14.3e}", co.linear);
    }

    println!("\nTheorem 2 exploits that hinge: at exactly sigma2 = 2*sigma1 the");
    println!("linear term vanishes and the second-order analysis yields");
    println!("Wopt = (12C/lambda^2)^(1/3) * sigma = Theta(lambda^(-2/3)).");
}
