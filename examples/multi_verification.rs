//! Extension: interleave several verifications between checkpoints
//! (§6's related pattern shape [6]) on top of two-speed re-execution,
//! and validate the analytic model against the segmented simulator.
//!
//! ```text
//! cargo run --release --example multi_verification
//! ```

use rexec::core::multiverif;
use rexec::prelude::*;

fn main() {
    let cfg = configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    });
    let base = cfg.silent_model().unwrap();
    let speeds = cfg.speed_set().unwrap();
    let rho = 3.0;

    println!("Hera/XScale, rho = {rho}: q verifications per checkpoint\n");
    println!(
        "{:>10} {:>7} {:>14} {:>10} {:>12} {:>12} {:>8}",
        "lambda", "best q", "pair", "Wopt", "E/W multi", "E/W q=1", "gain"
    );
    for factor in [1.0, 10.0, 30.0, 100.0, 300.0] {
        let m = base.with_lambda(base.lambda * factor);
        let multi = multiverif::optimize(&m, &speeds, rho, 8).expect("feasible");
        let single = numeric::exact_bicrit_solve(&m, &speeds, rho).expect("feasible");
        println!(
            "{:>10.2e} {:>7} {:>14} {:>10.0} {:>12.2} {:>12.2} {:>7.2}%",
            m.lambda,
            multi.q,
            format!("({}, {})", multi.sigma1, multi.sigma2),
            multi.w_opt,
            multi.energy_overhead,
            single.2.objective,
            100.0 * (1.0 - multi.energy_overhead / single.2.objective),
        );
    }

    // Validate one of the multi-verification optima by simulation.
    let m = base.with_lambda(base.lambda * 30.0);
    let sol = multiverif::optimize(&m, &speeds, rho, 8).unwrap();
    let sim_cfg = SimConfig::from_silent_model(&m, sol.w_opt, sol.sigma1, sol.sigma2);
    let trials = 30_000u64;
    let mut time = Stats::new();
    let mut energy = Stats::new();
    for i in 0..trials {
        let mut rng = SimRng::for_trial(4242, i);
        let p = simulate_pattern_segmented(&sim_cfg, sol.q, &mut rng);
        time.push(p.time);
        energy.push(p.energy);
    }
    let t_expect = multiverif::expected_time(&m, sol.w_opt, sol.q, sol.sigma1, sol.sigma2);
    let e_expect = multiverif::expected_energy(&m, sol.w_opt, sol.q, sol.sigma1, sol.sigma2);
    println!(
        "\nsimulation check at lambda = {:.2e}, q = {} ({} trials):",
        m.lambda, sol.q, trials
    );
    println!(
        "  time   : analytic {:.1}  sampled {:.1} ± {:.1}",
        t_expect,
        time.mean(),
        3.29 * time.std_error()
    );
    println!(
        "  energy : analytic {:.0}  sampled {:.0} ± {:.0}",
        e_expect,
        energy.mean(),
        3.29 * energy.std_error()
    );
    let ok = time.contains(t_expect, 3.29) && energy.contains(e_expect, 3.29);
    println!(
        "  verdict: analytic values {} the 99.9% CI of the sampled means",
        if ok { "inside" } else { "OUTSIDE" }
    );
}
