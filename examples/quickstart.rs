//! Quickstart: solve the BiCrit problem on a published configuration.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Given a platform (error rate λ, checkpoint C, verification V), a DVFS
//! processor (speed set, power law) and a performance bound ρ, compute the
//! energy-optimal execution plan: the first-execution speed σ₁, the
//! re-execution speed σ₂, and the checkpointing pattern size Wopt.

use rexec::prelude::*;

fn main() {
    // Hera/XScale — the configuration behind the paper's §4.2 tables.
    let config = configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    });
    let solver = config.solver().expect("valid configuration");
    let rho = 3.0; // tolerate up to 3 s of expected time per unit of work

    println!("configuration : {}", config.name());
    println!(
        "platform      : lambda = {:.2e} /s (MTBF {:.1} days), C = {} s, V = {} s",
        config.platform.lambda,
        config.platform.mtbf() / 86_400.0,
        config.platform.checkpoint,
        config.platform.verification
    );
    println!(
        "processor     : speeds {:?}, P(sigma) = {} sigma^3 + {} mW",
        config.processor.speeds, config.processor.kappa, config.processor.p_idle
    );
    println!("bound         : rho = {rho}\n");

    let best = solver
        .solve(rho)
        .expect("rho = 3 is feasible on Hera/XScale");
    println!("=== optimal two-speed plan ===");
    println!("first execution at sigma1 = {}", best.sigma1);
    println!("re-executions at  sigma2 = {}", best.sigma2);
    println!("pattern size      Wopt   = {:.0} work units", best.w_opt);
    println!(
        "energy overhead   E/W    = {:.1} mJ per work unit",
        best.energy_overhead
    );
    println!(
        "time overhead     T/W    = {:.3} s per work unit (bound {rho})",
        best.time_overhead
    );

    let one = solver
        .solve_one_speed(rho)
        .expect("one-speed baseline feasible");
    println!("\n=== one-speed baseline (sigma2 = sigma1) ===");
    println!(
        "sigma = {}, Wopt = {:.0}, E/W = {:.1}",
        one.sigma1, one.w_opt, one.energy_overhead
    );
    let saving = 100.0 * (1.0 - best.energy_overhead / one.energy_overhead);
    println!("\ntwo-speed energy saving over one speed: {saving:.1} %");

    // How tight can the bound get before the problem becomes infeasible?
    println!(
        "\nsmallest feasible rho on this configuration: {:.4}",
        solver.min_feasible_rho()
    );
}
