//! Validates the analytic expectations (Propositions 2–5) against the
//! discrete-event Monte Carlo simulator.
//!
//! ```text
//! cargo run --release --example monte_carlo_validation
//! ```
//!
//! For each scenario, runs tens of thousands of independent pattern
//! simulations and checks that the analytic expected time and energy lie
//! inside the 99.9 % confidence interval of the sampled means.

use rexec::prelude::*;

fn check(
    label: &str,
    cfg: SimConfig,
    expected_time: f64,
    expected_energy: f64,
    trials: u64,
    seed: u64,
) {
    let report = MonteCarlo::new(cfg, trials, seed)
        .validate(expected_time, expected_energy, 3.29)
        .expect("example configs are well-formed");
    let s = &report.summary;
    println!("--- {label} ({trials} trials) ---");
    println!(
        "time   : analytic {:>12.2}  sampled {:>12.2} ± {:<8.2} rel {:.4}%  [{}]",
        expected_time,
        s.time.mean(),
        3.29 * s.time.std_error(),
        100.0 * report.time_rel_error(),
        if report.time_ok() { "OK" } else { "MISS" }
    );
    println!(
        "energy : analytic {:>12.0}  sampled {:>12.0} ± {:<8.0} rel {:.4}%  [{}]",
        expected_energy,
        s.energy.mean(),
        3.29 * s.energy.std_error(),
        100.0 * report.energy_rel_error(),
        if report.energy_ok() { "OK" } else { "MISS" }
    );
    println!(
        "attempts per pattern: {:.4} (min {}, max {})\n",
        s.attempts.mean(),
        s.attempts.min(),
        s.attempts.max()
    );
}

fn main() {
    let trials = 50_000;

    // Scenario 1: the paper's Hera/XScale optimum at ρ = 3, real λ.
    let hx = configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    });
    let m = hx.silent_model().unwrap();
    let best = hx.solver().unwrap().solve(3.0).unwrap();
    let cfg = SimConfig::from_silent_model(&m, best.w_opt, best.sigma1, best.sigma2);
    check(
        "Hera/XScale optimum, silent errors (Props 2-3)",
        cfg,
        m.expected_time(best.w_opt, best.sigma1, best.sigma2),
        m.expected_energy(best.w_opt, best.sigma1, best.sigma2),
        trials,
        1,
    );

    // Scenario 2: inflated error rate, two distinct speeds — stresses the
    // re-execution path (roughly one error every other pattern).
    let m2 = m.with_lambda(1e-4);
    let (w, s1, s2) = (2764.0, 0.4, 0.8);
    check(
        "Hera/XScale, lambda = 1e-4, sigma = (0.4, 0.8)",
        SimConfig::from_silent_model(&m2, w, s1, s2),
        m2.expected_time(w, s1, s2),
        m2.expected_energy(w, s1, s2),
        trials,
        2,
    );

    // Scenario 3: mixed fail-stop + silent errors (Props 4-5).
    let mm = MixedModel::new(ErrorRates::new(8e-5, 5e-5).unwrap(), m.costs, m.power);
    let (w, s1, s2) = (3000.0, 0.6, 1.0);
    check(
        "Hera/XScale, mixed errors (Props 4-5)",
        SimConfig::from_mixed_model(&mm, w, s1, s2),
        mm.expected_time(w, s1, s2),
        mm.expected_energy(w, s1, s2),
        trials,
        3,
    );

    // Scenario 4: whole-application simulation — overheads per work unit
    // converge to the pattern overheads.
    let w_base = 100.0 * 2764.0;
    let app_cfg = SimConfig::from_silent_model(&m2, 2764.0, 0.4, 0.8);
    let mut rng = SimRng::new(4);
    let app = simulate_application(&app_cfg, w_base, &mut rng);
    println!(
        "--- whole application: Wbase = {w_base:.0} ({} patterns) ---",
        app.patterns
    );
    println!(
        "makespan/Wbase : {:.4} s per work unit (pattern model: {:.4})",
        app.time_overhead(w_base),
        m2.time_overhead(2764.0, 0.4, 0.8)
    );
    println!(
        "energy/Wbase   : {:.1} mJ per work unit (pattern model: {:.1})",
        app.energy_overhead(w_base),
        m2.energy_overhead(2764.0, 0.4, 0.8)
    );
    println!(
        "errors observed: {} silent, {} fail-stop over {} attempts",
        app.silent_errors, app.fail_stop_errors, app.attempts
    );
}
