//! Energy savings of a different re-execution speed, across all eight
//! published configurations and a range of performance bounds — the
//! paper's headline result ("up to 35 % savings in energy").
//!
//! ```text
//! cargo run --example energy_savings
//! ```

use rexec::prelude::*;
use rexec::sweep::figure::{lambda_hi_for, sweep_figure_paper_grid, SweepParam};

fn main() {
    println!("Two-speed vs one-speed optimal energy overhead (rho = 3)\n");
    println!(
        "{:<20} {:>10} {:>10} {:>8}   best pair",
        "configuration", "E/W (2)", "E/W (1)", "saving"
    );
    println!("{}", "-".repeat(66));
    for cfg in all_configurations() {
        let solver = cfg.solver().unwrap();
        let two = solver.solve(3.0).unwrap();
        let one = solver.solve_one_speed(3.0).unwrap();
        let saving = 100.0 * (1.0 - two.energy_overhead / one.energy_overhead);
        println!(
            "{:<20} {:>10.1} {:>10.1} {:>7.1}%   ({}, {})",
            cfg.name(),
            two.energy_overhead,
            one.energy_overhead,
            saving,
            two.sigma1,
            two.sigma2
        );
    }

    // At the default rho the one-speed plan often suffices; the savings
    // appear when a parameter stresses the trade-off. Scan every sweep of
    // every configuration for the largest observed saving, as the paper's
    // figures do.
    println!("\nLargest two-speed saving observed across the paper's sweeps:\n");
    println!(
        "{:<20} {:>8} {:>12} {:>10}",
        "configuration", "sweep", "max saving", "at x"
    );
    println!("{}", "-".repeat(56));
    let mut global: (f64, String, String, f64) = (0.0, String::new(), String::new(), 0.0);
    for cfg in all_configurations() {
        let mut best: (f64, SweepParam, f64) = (0.0, SweepParam::Checkpoint, 0.0);
        for param in SweepParam::ALL {
            let s = sweep_figure_paper_grid(&cfg, param, lambda_hi_for(&cfg));
            for p in &s.points {
                if let Some(sv) = p.saving() {
                    if sv > best.0 {
                        best = (sv, param, p.x);
                    }
                }
            }
        }
        println!(
            "{:<20} {:>8} {:>11.1}% {:>10.4}",
            cfg.name(),
            best.1.label(),
            100.0 * best.0,
            best.2
        );
        if best.0 > global.0 {
            global = (best.0, cfg.name(), best.1.label().to_string(), best.2);
        }
    }
    println!(
        "\nheadline: up to {:.1} % energy saving ({}, {} sweep at x = {:.4})",
        100.0 * global.0,
        global.1,
        global.2,
        global.3
    );
}
