//! The time/energy trade-off curve of BiCrit: sweep the performance bound
//! ρ and trace the Pareto frontier of (expected time per work unit,
//! expected energy per work unit).
//!
//! ```text
//! cargo run --example pareto_frontier
//! ```
//!
//! Shows how different speed pairs own different stretches of the curve —
//! the paper's §4.2 observation that almost any pair can be optimal for a
//! well-chosen ρ.

use rexec::prelude::*;

fn main() {
    for cfg in [
        configuration(ConfigId {
            platform: PlatformId::Hera,
            processor: ProcessorId::IntelXScale,
        }),
        configuration(ConfigId {
            platform: PlatformId::Atlas,
            processor: ProcessorId::TransmetaCrusoe,
        }),
    ] {
        let solver = cfg.solver().unwrap();
        let frontier = ParetoFrontier::compute(&solver, 10.0, 400);
        println!("=== {} ===", cfg.name());
        println!(
            "{} non-dominated points; smallest feasible T/W = {:.4}",
            frontier.len(),
            solver.min_feasible_rho()
        );
        println!(
            "{:>9} {:>12} {:>6} {:>6} {:>9}",
            "T/W", "E/W", "s1", "s2", "Wopt"
        );
        // Print each stretch where the optimal pair changes.
        let mut last_pair = None;
        for p in &frontier.points {
            let pair = (p.sigma1, p.sigma2);
            if last_pair != Some(pair) {
                println!(
                    "{:>9.4} {:>12.1} {:>6} {:>6} {:>9.0}   <- pair changes",
                    p.time_overhead, p.energy_overhead, p.sigma1, p.sigma2, p.w_opt
                );
                last_pair = Some(pair);
            }
        }
        let pairs = frontier.speed_pairs();
        println!("pairs along the frontier (fast -> energy-cheap): {pairs:?}\n");
    }
    println!(
        "Reading: going down a column trades time for energy. The fast end\n\
         runs everything near full speed; loosening the bound lets the\n\
         optimizer glide through intermediate pairs until it reaches the\n\
         unconstrained energy optimum."
    );
}
