//! Theorem 2: when re-execution is twice as fast, the optimal
//! checkpointing pattern scales as Θ(λ^{-2/3}) — not Young/Daly's
//! Θ(λ^{-1/2}).
//!
//! ```text
//! cargo run --example checkpoint_scaling
//! ```
//!
//! Prints Wopt(λ) under both laws, the fitted log-log slopes, and a
//! numeric cross-check of the closed form against the exact expected-time
//! minimizer of the mixed-error model.

use rexec::prelude::*;

fn main() {
    let c = 300.0; // checkpoint cost (s)
    let sigma = 0.5; // first-execution speed; re-execution at 2σ = 1.0

    println!(
        "Fail-stop errors only, sigma2 = 2*sigma1 = {}\n",
        2.0 * sigma
    );
    println!(
        "{:>10} {:>16} {:>16} {:>12}",
        "lambda", "Wopt (Thm 2)", "Wopt (YoungDaly)", "ratio"
    );
    println!("{}", "-".repeat(58));

    let pts = theorem2::wopt_samples(c, sigma, 1e-7, 1e-3, 13);
    for &(lambda, w_thm) in &pts {
        let w_yd = daly::young_daly_work(c, lambda, sigma);
        println!(
            "{:>10.1e} {:>16.0} {:>16.0} {:>12.2}",
            lambda,
            w_thm,
            w_yd,
            w_thm / w_yd
        );
    }

    let slope_thm = theorem2::loglog_slope(&pts);
    let yd: Vec<(f64, f64)> = pts
        .iter()
        .map(|&(l, _)| (l, daly::young_daly_work(c, l, sigma)))
        .collect();
    let slope_yd = theorem2::loglog_slope(&yd);
    println!("\nfitted slope, Theorem 2 law : {slope_thm:.4}  (predicted -2/3)");
    println!("fitted slope, Young/Daly law: {slope_yd:.4}  (predicted -1/2)");

    // Cross-check the closed form against the exact expected time
    // (recursion of §5.1) minimized numerically.
    println!("\nnumeric cross-check against the exact mixed-error model:");
    println!(
        "{:>10} {:>16} {:>18} {:>10}",
        "lambda", "Wopt (Thm 2)", "Wopt (exact num.)", "rel err"
    );
    for &lambda in &[1e-6, 1e-5, 1e-4] {
        let mm = MixedModel::new(
            ErrorRates::fail_stop_only(lambda).unwrap(),
            ResilienceCosts::new(c, 0.0, c).unwrap(),
            PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
        );
        let (w_num, _) = numeric::exact_time_minimizer_mixed(&mm, sigma, 2.0 * sigma);
        let w_thm = theorem2::optimal_work(c, lambda, sigma);
        println!(
            "{:>10.0e} {:>16.0} {:>18.0} {:>9.2}%",
            lambda,
            w_thm,
            w_num,
            100.0 * (w_num - w_thm).abs() / w_thm
        );
    }

    println!(
        "\nThe gap between the two laws widens as errors become rarer:\n\
         re-executing twice faster lets the application checkpoint far\n\
         less often than the classical analysis suggests."
    );
}
