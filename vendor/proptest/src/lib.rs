//! Offline drop-in subset of `proptest`.
//!
//! Covers the surface this workspace's property tests use: `Range<f64>`
//! and tuple strategies, `prop_map`, `any::<T>()`,
//! `proptest::collection::vec`, the `proptest!` declarative macro with
//! `#![proptest_config(..)]`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs' case number and seed instead of a minimized example), and the
//! per-test RNG seed is a deterministic hash of the test name, so failures
//! reproduce exactly across runs and machines.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let u = rng.unit_f64();
            let x = self.start + u * (self.end - self.start);
            // Guard against rounding up to the excluded endpoint.
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = self.end - self.start;
            if span == 0 {
                self.start
            } else {
                self.start + (rng.next_u64() % span as u64) as usize
            }
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            let span = self.end - self.start;
            if span == 0 {
                self.start
            } else {
                self.start + rng.next_u64() % span
            }
        }
    }

    impl Strategy for Range<u32> {
        type Value = u32;
        fn sample(&self, rng: &mut TestRng) -> u32 {
            let span = self.end - self.start;
            if span == 0 {
                self.start
            } else {
                self.start + (rng.next_u64() % span as u64) as u32
            }
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn sample(&self, rng: &mut TestRng) -> i32 {
            let span = (self.end as i64 - self.start as i64) as u64;
            if span == 0 {
                self.start
            } else {
                (self.start as i64 + (rng.next_u64() % span) as i64) as i32
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for i64 {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn generate(rng: &mut TestRng) -> Self {
            // Finite floats only, spanning many magnitudes.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.next_u64() % 61) as i32 - 30;
            mantissa * 10f64.powi(exp)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// Full-range strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a stable FNV-1a hash of the test name, so every run
        /// of a given test replays the same case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this case out; it does not count.
        Reject,
        /// `prop_assert!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration (`cases` = number of passing cases required).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Abort if rejects exceed this many (runaway `prop_assume!`).
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` passing inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (
        ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                case += 1;
                $(
                    let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name),
                                rejected
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failure reports the message and the
/// failing case instead of unwinding from deep in the property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if cond {} else { .. }` rather than `if !cond` so that a
        // partial-ord comparison in `$cond` is never negated (clippy's
        // `neg_cmp_op_on_partial_ord` fires at every expansion site).
        if $cond {
        } else {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// Filters out the current case without counting it as a pass or failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.0..2.0f64, n in 3..7usize) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn prop_map_applies(v in (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&v));
        }

        #[test]
        fn assume_filters(x in 0.0..1.0f64) {
            prop_assume!(x >= 0.5);
            prop_assert!(x >= 0.5);
        }

        #[test]
        fn vectors_have_sampled_len(v in crate::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn any_u64_generates(a in any::<u64>()) {
            // Every u64 is valid; this checks the generator plumbing.
            prop_assert!(a.wrapping_add(1).wrapping_sub(1) == a);
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
