//! Offline drop-in subset of `rayon` covering the one pattern this
//! workspace uses: `Vec::into_par_iter().map(f).reduce(identity, op)`.
//!
//! Work is split into contiguous chunks across OS threads (honouring
//! `RAYON_NUM_THREADS`), results are kept in input order, and `reduce`
//! folds them sequentially left-to-right. This is *stricter* than real
//! rayon: aggregation order is identical for every thread count, so any
//! reduction — associative or not — is reproducible.

use std::env;
use std::thread;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on `current_num_threads()` threads, preserving
/// input order in the output.
fn par_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut remaining = items;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    while !remaining.is_empty() {
        let take = chunk_len.min(remaining.len());
        chunks.push(remaining.drain(..take).collect());
    }
    let mut out: Vec<R> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon worker panicked"));
        }
    });
    out
}

/// Like [`par_map`], threading a per-worker scratch state created by
/// `init` through `f` — rayon's `map_init` contract: the state is
/// created at least once per worker thread and reused across that
/// worker's items, never shared between threads.
fn par_map_init<T, S, R, INIT, F>(items: Vec<T>, init: &INIT, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut remaining = items;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    while !remaining.is_empty() {
        let take = chunk_len.min(remaining.len());
        chunks.push(remaining.drain(..take).collect());
    }
    let mut out: Vec<R> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut state = init();
                    chunk
                        .into_iter()
                        .map(|x| f(&mut state, x))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon worker panicked"));
        }
    });
    out
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// The subset of rayon's `ParallelIterator` this workspace needs.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Drives the pipeline and returns items in input order.
    fn run_ordered(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        S: Send,
        R: Send,
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, Self::Item) -> R + Sync + Send,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.run_ordered().into_iter().fold(identity(), op)
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run_ordered().into_iter().collect()
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn run_ordered(self) -> Vec<T> {
        self.items
    }
}

/// Lazily mapped parallel iterator; the map executes on worker threads
/// when the pipeline is driven.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run_ordered(self) -> Vec<R> {
        par_map(self.base.run_ordered(), &self.f)
    }
}

/// Lazily mapped parallel iterator with per-worker scratch state.
pub struct MapInit<B, INIT, F> {
    base: B,
    init: INIT,
    f: F,
}

impl<B, S, R, INIT, F> ParallelIterator for MapInit<B, INIT, F>
where
    B: ParallelIterator,
    S: Send,
    R: Send,
    INIT: Fn() -> S + Sync + Send,
    F: Fn(&mut S, B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run_ordered(self) -> Vec<R> {
        par_map_init(self.base.run_ordered(), &self.init, &self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_folds_in_order() {
        // String concatenation is NOT associative-commutative, so this
        // pins the in-order guarantee.
        let v: Vec<u64> = (0..100).collect();
        let joined = v
            .into_par_iter()
            .map(|x| x.to_string())
            .reduce(String::new, |a, b| a + "," + &b);
        let expected = (0..100).fold(String::new(), |a, b| a + "," + &b.to_string());
        assert_eq!(joined, expected);
    }

    #[test]
    fn map_init_preserves_order_with_reused_state() {
        // The per-worker scratch is reused across that worker's items
        // and never observed by another worker; output order must match
        // input order regardless.
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v
            .clone()
            .into_par_iter()
            .map_init(Vec::new, |scratch: &mut Vec<u64>, x| {
                scratch.clear();
                scratch.push(x);
                scratch[0] * 2
            })
            .collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_identity() {
        let v: Vec<u64> = Vec::new();
        let sum = v.into_par_iter().map(|x| x).reduce(|| 7, |a, b| a + b);
        assert_eq!(sum, 7);
    }
}
