//! Offline drop-in subset of `criterion`.
//!
//! Keeps the macro and builder surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `sample_size`) and
//! measures wall-clock time with `std::time::Instant`. No statistical
//! analysis, plots, or baselines — each benchmark prints its mean and best
//! per-iteration time, plus throughput when configured.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work-rate annotation for a group, echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a closure over a fixed iteration count.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level driver; holds global defaults.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id();
        self.run(&label, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_benchmark_id();
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: find an iteration count that takes ≥ ~20 ms.
        let mut iterations: u64 = 1;
        let per_iter = loop {
            let mut b = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(20) || iterations >= 1 << 24 {
                break b.elapsed.as_secs_f64() / iterations as f64;
            }
            iterations = iterations.saturating_mul(4);
        };
        // Sample: aim for ~50 ms per sample, capped.
        let iters_per_sample = ((0.05 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);
        let mut times = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iterations: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let best = times.iter().copied().fold(f64::INFINITY, f64::min);
        let qualified = if label.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, label)
        };
        let mut line = format!(
            "  {qualified}: mean {} / best {} ({} samples x {iters_per_sample} iters)",
            fmt_time(mean),
            fmt_time(best),
            times.len(),
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            line.push_str(&format!(", {:.3e} elem/s", n as f64 / mean));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            line.push_str(&format!(", {:.3e} B/s", n as f64 / mean));
        }
        println!("{line}");
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Declares a group-runner function calling each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("add", |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }
}
