//! Offline drop-in subset of `serde`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small serialization surface it actually uses:
//! a JSON-shaped [`Value`] data model, [`Serialize`]/[`Deserialize`]
//! traits that convert to/from that model, and derive macros (re-exported
//! from `serde_derive`) covering named-field structs, unit/struct-variant
//! enums and single-field `#[serde(transparent)]` tuple structs — the
//! shapes this repository defines. `serde_json` (also vendored) renders
//! [`Value`] to JSON text and parses it back.
//!
//! The derive macros generate externally-tagged representations identical
//! to upstream serde_json's defaults, so swapping the real crates back in
//! would not change any persisted artifact.

use std::collections::BTreeMap;
use std::fmt;

pub use value::{Number, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// The JSON-shaped data model.
pub mod value {
    use super::*;

    /// A number: integer representations are kept exact.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Unsigned integer.
        U64(u64),
        /// Signed (negative) integer.
        I64(i64),
        /// Floating point.
        F64(f64),
    }

    impl Number {
        /// The value as `f64` (lossy for huge integers).
        pub fn as_f64(&self) -> f64 {
            match *self {
                Number::U64(n) => n as f64,
                Number::I64(n) => n as f64,
                Number::F64(n) => n,
            }
        }

        /// The value as `u64` if exactly representable.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Number::U64(n) => Some(n),
                Number::I64(n) => u64::try_from(n).ok(),
                Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                    Some(n as u64)
                }
                Number::F64(_) => None,
            }
        }

        /// The value as `i64` if exactly representable.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Number::U64(n) => i64::try_from(n).ok(),
                Number::I64(n) => Some(n),
                Number::F64(n)
                    if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 =>
                {
                    Some(n as i64)
                }
                Number::F64(_) => None,
            }
        }
    }

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number.
        Number(Number),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object (order-stable map for deterministic output).
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(m) => m.get(key),
                _ => None,
            }
        }
    }
}

/// Types that can be represented in the data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err(want: &str, got: &Value) -> Error {
    Error::msg(format!("expected {want}, got {got:?}"))
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Number(Number::F64(f))
                } else {
                    // Mirrors serde_json: non-finite floats serialize as null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => Err(type_err("number", v)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| type_err("unsigned integer", v)),
                    _ => Err(type_err("unsigned integer", v)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Number(Number::I64(n))
                } else {
                    Value::Number(Number::U64(n as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| type_err("integer", v)),
                    _ => Err(type_err("integer", v)),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(type_err("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(type_err("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(type_err("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(type_err("2-element array", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(type_err("3-element array", v)),
        }
    }
}

impl<K: ToString + std::str::FromStr + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| {
                    let key = k
                        .parse()
                        .map_err(|_| Error::msg(format!("bad map key: {k}")))?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            _ => Err(type_err("object", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Helpers used by the generated derive code (not public API).
#[doc(hidden)]
pub mod __private {
    use super::*;

    /// Looks up a struct field, treating a missing key as `Null` so that
    /// `Option` fields default to `None` like upstream serde.
    pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
        match v {
            Value::Object(m) => Ok(m.get(name).unwrap_or(&Value::Null)),
            _ => Err(Error::msg(format!(
                "expected object with field `{name}`, got {v:?}"
            ))),
        }
    }

    /// Builds an object value from (name, value) pairs.
    pub fn object(fields: Vec<(&'static str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The variant name of an externally-tagged enum value.
    pub fn variant_of(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::String(s) => Ok((s, None)),
            Value::Object(m) if m.len() == 1 => {
                let (k, inner) = m.iter().next().expect("len checked");
                Ok((k, Some(inner)))
            }
            _ => Err(Error::msg(format!(
                "expected enum representation, got {v:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<Vec<f64>> = Some(vec![1.5, 2.0]);
        let val = v.to_value();
        let back: Option<Vec<f64>> = Deserialize::from_value(&val).unwrap();
        assert_eq!(v, back);
        let n: Option<f64> = None;
        assert_eq!(n.to_value(), Value::Null);
    }

    #[test]
    fn u64_is_exact() {
        let big: u64 = u64::MAX;
        let back: u64 = Deserialize::from_value(&big.to_value()).unwrap();
        assert_eq!(big, back);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert_eq!(f64::NAN.to_value(), Value::Null);
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1.0f64, 2.0f64);
        let back: (f64, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }
}
