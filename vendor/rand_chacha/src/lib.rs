//! Offline drop-in subset of `rand_chacha`: a genuine ChaCha8 stream
//! cipher used as an RNG, with the 64-bit block counter and 64-bit stream
//! (nonce) split the same way as upstream, so `set_stream` gives
//! non-overlapping per-trial substreams.

// The lane-parallel block function walks fixed-width state arrays by
// index on purpose: identical index expressions across the parallel
// arrays are what the autovectorizer maps onto SIMD lanes.
#![allow(clippy::needless_range_loop)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BLOCK_WORDS: usize = 16;

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// 64-bit stream id (state words 14–15); selects an independent
    /// substream of the same key.
    stream: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Blocks generated per lane-parallel group by
/// [`ChaCha8Rng::fill_u64`]: the block function has no data flow between
/// blocks (each is keyed by its own counter), so sixteen run side by
/// side as lanes of `[u32; 16]` vectors — every statement in
/// [`quarter_round8`] is one whole-vector op for the autovectorizer
/// (one 512-bit op per statement on AVX-512, two 256-bit on AVX2),
/// against the scalar path's one-block-at-a-time serial dependency
/// chain.
const LANES: usize = 16;

/// `u64` draws per lane-parallel group (16 blocks × 8 draws).
const GROUP_U64: usize = LANES * BLOCK_WORDS / 2;

/// The ChaCha quarter-round of [`quarter_round`], applied lane-wise
/// across [`LANES`] independent blocks.
#[inline(always)]
fn quarter_round8(s: &mut [[u32; LANES]; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    for l in 0..LANES {
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
    }
    for l in 0..LANES {
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(16);
    }
    for l in 0..LANES {
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
    }
    for l in 0..LANES {
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(12);
    }
    for l in 0..LANES {
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
    }
    for l in 0..LANES {
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(8);
    }
    for l in 0..LANES {
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
    }
    for l in 0..LANES {
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(7);
    }
}

impl ChaCha8Rng {
    /// Selects substream `stream` and restarts it from block 0.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = BLOCK_WORDS;
    }

    /// Current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Generates the next [`LANES`] keystream blocks in one lane-parallel
    /// pass, writing them into `out` as the `u64` pairs
    /// [`next_u64`](Self::next_u64) would have produced. Requires an
    /// exhausted word buffer (the counter is the next block) and leaves
    /// it exhausted.
    fn blocks8(&mut self, out: &mut [u64]) {
        debug_assert_eq!(out.len(), GROUP_U64);
        let mut state = [[0u32; LANES]; BLOCK_WORDS];
        for (w, &c) in CONSTANTS.iter().enumerate() {
            state[w] = [c; LANES];
        }
        for (w, &k) in self.key.iter().enumerate() {
            state[4 + w] = [k; LANES];
        }
        state[14] = [self.stream as u32; LANES];
        state[15] = [(self.stream >> 32) as u32; LANES];
        for l in 0..LANES {
            let c = self.counter.wrapping_add(l as u64);
            state[12][l] = c as u32;
            state[13][l] = (c >> 32) as u32;
        }

        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round8(&mut working, 0, 4, 8, 12);
            quarter_round8(&mut working, 1, 5, 9, 13);
            quarter_round8(&mut working, 2, 6, 10, 14);
            quarter_round8(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round8(&mut working, 0, 5, 10, 15);
            quarter_round8(&mut working, 1, 6, 11, 12);
            quarter_round8(&mut working, 2, 7, 8, 13);
            quarter_round8(&mut working, 3, 4, 9, 14);
        }
        // Feed-forward and transpose back to per-block word order.
        for l in 0..LANES {
            for w in (0..BLOCK_WORDS).step_by(2) {
                let low = working[w][l].wrapping_add(state[w][l]) as u64;
                let high = working[w + 1][l].wrapping_add(state[w + 1][l]) as u64;
                out[l * (BLOCK_WORDS / 2) + w / 2] = low | (high << 32);
            }
        }
        self.counter = self.counter.wrapping_add(LANES as u64);
        self.index = BLOCK_WORDS;
    }

    /// Fills `out` with exactly the `u64` sequence repeated
    /// [`next_u64`](Self::next_u64) calls would produce, but generating
    /// whole keystream blocks [`LANES`] at a time so the block function
    /// runs lane-parallel (SIMD) instead of serially per block —
    /// bit-identical output, several times the throughput for bulk
    /// consumers like the simulator's buffered uniform streams.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let mut rest = &mut out[..];
        // Drain already-buffered words through the scalar path first.
        while !rest.is_empty() && self.index + 1 < BLOCK_WORDS {
            let (slot, tail) = rest.split_first_mut().expect("nonempty");
            *slot = self.next_u64();
            rest = tail;
        }
        // Whole groups straight off the block counter, lane-parallel.
        // (`next_u64` at a boundary discards any odd leftover word and
        // regenerates from the same counter, so starting the group here
        // matches the scalar sequence exactly.)
        while rest.len() >= GROUP_U64 {
            let (group, tail) = rest.split_at_mut(GROUP_U64);
            self.blocks8(group);
            rest = tail;
        }
        for slot in rest {
            *slot = self.next_u64();
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Consume two consecutive words, low half first; never straddles a
        // block boundary so u64 draws are self-aligned.
        if self.index + 1 >= BLOCK_WORDS {
            self.refill();
        }
        let low = self.buf[self.index] as u64;
        let high = self.buf[self.index + 1] as u64;
        self.index += 2;
        low | (high << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1 quarter-round test vector pins the core operation.
    #[test]
    fn quarter_round_matches_rfc8439() {
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_do_not_collide() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(1);
        b.set_stream(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn set_stream_restarts_the_substream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        a.set_stream(5);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        a.set_stream(5);
        let again: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn fill_u64_matches_sequential_draws_at_any_offset() {
        // Equivalence must hold from a fresh stream, mid-buffer, and for
        // lengths that exercise the drain, group, and tail paths.
        for drain in [0usize, 1, 2, 7] {
            for len in [0usize, 1, 7, 8, 63, 64, 65, 129, 200] {
                let mut bulk = ChaCha8Rng::seed_from_u64(99);
                let mut scalar = ChaCha8Rng::seed_from_u64(99);
                bulk.set_stream(13);
                scalar.set_stream(13);
                for _ in 0..drain {
                    assert_eq!(bulk.next_u64(), scalar.next_u64());
                }
                let mut out = vec![0u64; len];
                bulk.fill_u64(&mut out);
                for (i, &x) in out.iter().enumerate() {
                    assert_eq!(x, scalar.next_u64(), "drain {drain} len {len} draw {i}");
                }
                // The streams must stay aligned afterwards too.
                for i in 0..20 {
                    assert_eq!(bulk.next_u64(), scalar.next_u64(), "post-draw {i}");
                }
            }
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let many: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut sorted = many.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), many.len(), "64 draws should all differ");
    }
}
