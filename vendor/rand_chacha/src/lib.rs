//! Offline drop-in subset of `rand_chacha`: a genuine ChaCha8 stream
//! cipher used as an RNG, with the 64-bit block counter and 64-bit stream
//! (nonce) split the same way as upstream, so `set_stream` gives
//! non-overlapping per-trial substreams.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BLOCK_WORDS: usize = 16;

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// 64-bit stream id (state words 14–15); selects an independent
    /// substream of the same key.
    stream: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects substream `stream` and restarts it from block 0.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = BLOCK_WORDS;
    }

    /// Current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Consume two consecutive words, low half first; never straddles a
        // block boundary so u64 draws are self-aligned.
        if self.index + 1 >= BLOCK_WORDS {
            self.refill();
        }
        let low = self.buf[self.index] as u64;
        let high = self.buf[self.index + 1] as u64;
        self.index += 2;
        low | (high << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1 quarter-round test vector pins the core operation.
    #[test]
    fn quarter_round_matches_rfc8439() {
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_do_not_collide() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(1);
        b.set_stream(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn set_stream_restarts_the_substream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        a.set_stream(5);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        a.set_stream(5);
        let again: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let many: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut sorted = many.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), many.len(), "64 draws should all differ");
    }
}
