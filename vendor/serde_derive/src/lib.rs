//! Derive macros for the vendored `serde` subset.
//!
//! Supports exactly the shapes this workspace defines:
//! * structs with named fields,
//! * single-field tuple structs (`#[serde(transparent)]` or not — both
//!   serialize as the inner value, matching upstream `transparent`),
//! * enums with unit and/or struct variants (externally tagged, like
//!   upstream serde_json's default).
//!
//! Generics are not supported (none of the workspace types need them).
//! Parsing is done directly on `proc_macro::TokenStream` — no `syn` or
//! `quote`, since the build environment is offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: its name (None for tuple fields).
struct Field {
    name: String,
}

/// A parsed enum variant.
struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

/// A parsed type definition.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TransparentStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();

    // Skip outer attributes (doc comments, #[serde(...)], other derives).
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored subset): generic type `{name}` is not supported");
        }
    }

    match (kind.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            // Tuple struct: only the single-field (transparent) shape is
            // supported; count top-level commas to verify.
            let fields = count_tuple_fields(g.stream());
            if fields != 1 {
                panic!(
                    "serde derive (vendored subset): tuple struct `{name}` must have exactly \
                     one field, has {fields}"
                );
            }
            Item::TransparentStruct { name }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (k, t) => panic!("serde derive: unsupported item shape ({k}, {t:?})"),
    }
}

/// Counts top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                n += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    n + usize::from(saw_tokens)
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = it.next() else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
        });
        // Skip `:` then the type, up to a top-level comma.
        let mut angle = 0i32;
        for tt in it.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = it.next() else {
            break;
        };
        let name = id.to_string();
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                it.next();
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde derive (vendored subset): tuple enum variant `{name}` is not supported"
                );
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        // Skip to the next top-level comma.
        for tt in it.by_ref() {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\", ::serde::Serialize::to_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::__private::object(vec![{pairs}])
                    }}
                }}"
            )
        }
        Item::TransparentStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{
                fn to_value(&self) -> ::serde::Value {{
                    ::serde::Serialize::to_value(&self.0)
                }}
            }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds: String = fields.iter().map(|f| format!("{},", f.name)).collect();
                        let pairs: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{n}\", ::serde::Serialize::to_value({n})),", n = f.name)
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::__private::object(vec![
                                (\"{v}\", ::serde::__private::object(vec![{pairs}])),
                            ]),",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{n}: ::serde::Deserialize::from_value(
                            ::serde::__private::field(v, \"{n}\")?)?,",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value)
                        -> ::std::result::Result<Self, ::serde::Error> {{
                        ::std::result::Result::Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Item::TransparentStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{
                fn from_value(v: &::serde::Value)
                    -> ::std::result::Result<Self, ::serde::Error> {{
                    ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))
                }}
            }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "(\"{v}\", _) => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{n}: ::serde::Deserialize::from_value(
                                        ::serde::__private::field(inner, \"{n}\")?)?,",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "(\"{v}\", ::std::option::Option::Some(inner)) =>
                                ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value)
                        -> ::std::result::Result<Self, ::serde::Error> {{
                        match ::serde::__private::variant_of(v)? {{
                            {arms}
                            (other, _) => ::std::result::Result::Err(::serde::Error::msg(
                                format!(\"unknown variant `{{other}}` of {name}\"))),
                        }}
                    }}
                }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
