//! Offline drop-in subset of `serde_json`: renders the vendored
//! [`serde::Value`] model to JSON text and parses JSON text back.
//!
//! Output conventions match upstream `serde_json`: objects and arrays
//! without trailing separators, floats printed with Rust's shortest
//! round-trip formatting, non-finite floats as `null`, strings escaped per
//! RFC 8259.

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// `Result` alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Number::F64(x) => {
            if x.is_finite() {
                if x == x.trunc() && x.abs() < 1e15 {
                    // Match serde_json: whole floats keep a ".0".
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::msg(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // workspace's ASCII-safe escapes; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        let n = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::msg(format!("bad number `{text}`")))?,
                )
            }
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::msg(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("0.4").unwrap(), 0.4);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 2764.123456789, f64::MAX] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back, "via {s}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tend\\".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Option<Vec<f64>>> = vec![Some(vec![1.0, 2.5]), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.0,2.5],null]");
        let back: Vec<Option<Vec<f64>>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("0.4trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
