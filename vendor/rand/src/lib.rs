//! Offline drop-in subset of the `rand` crate: just the trait surface this
//! workspace uses (`RngCore`, `SeedableRng`, `Rng::random`).
//!
//! `seed_from_u64` reproduces upstream `rand_core`'s PCG32-based seed
//! expansion so that seeds derive the same key material as the real crate.

/// Core generator interface: raw 32/64-bit output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via PCG32, matching upstream
    /// `rand_core`'s default implementation byte for byte.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let block = pcg32(&mut state);
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible by `Rng::random` (the `StandardUniform` subset used
/// here: uniform floats in `[0, 1)` and raw integers).
pub trait Random: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1), as upstream.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for u64 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension over any `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);
    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            self.0
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Counting(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn max_u64_maps_below_one() {
        struct Max;
        impl RngCore for Max {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let x: f64 = Max.random();
        assert!(x < 1.0);
    }
}
