//! Acceptance tests for the fast-path engines: bit-identical summaries
//! across thread counts (chunked RNG streams + deterministic merge), and
//! statistical identity with both the per-attempt reference engine and
//! the analytic expectations — Propositions 2–3 for the silent-only
//! geometric fast path, Propositions 4–5 for the mixed fail-stop +
//! silent fast path.
//!
//! The thread-count sections live in a single `#[test]` because they
//! mutate process-global state (`RAYON_NUM_THREADS`), which must not
//! race with a concurrently running sibling test.

use rexec::prelude::*;

fn hera_model() -> SilentModel {
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
    .silent_model()
    .unwrap()
    .with_lambda(1e-4) // inflated λ so re-executions are actually hit
}

fn mixed_config() -> SimConfig {
    let m = hera_model();
    let mm = MixedModel::new(ErrorRates::new(8e-5, 5e-5).unwrap(), m.costs, m.power);
    SimConfig::from_mixed_model(&mm, 3000.0, 0.6, 1.0)
}

/// Two-sample z-test at z = 4 between two engines' summaries, plus a
/// count sanity check.
fn assert_statistically_identical(fast: &Summary, reference: &Summary, trials: u64, label: &str) {
    for (name, f, r) in [
        ("time", &fast.time, &reference.time),
        ("energy", &fast.energy, &reference.energy),
        ("attempts", &fast.attempts, &reference.attempts),
    ] {
        let se = (f.std_error().powi(2) + r.std_error().powi(2)).sqrt();
        let gap = (f.mean() - r.mean()).abs();
        assert!(
            gap <= 4.0 * se,
            "{label} {name}: fast-path mean {} vs reference mean {} (gap {gap:.3e} > 4·se {:.3e})",
            f.mean(),
            r.mean(),
            4.0 * se
        );
        assert_eq!(f.count(), trials);
        assert_eq!(r.count(), trials);
    }
}

#[test]
fn fast_path_is_bit_identical_and_statistically_exact() {
    let m = hera_model();
    let (w, s1, s2) = (2764.0, 0.4, 0.8);
    let cfg = SimConfig::from_silent_model(&m, w, s1, s2);

    // Bit-identity: one trial chunk = one RNG stream, and the vendored
    // rayon reduction preserves input order, so the parallel summary is
    // the sequential summary byte for byte at any worker count. The
    // mixed sampler consumes a variable number of draws per failed
    // trial, so it exercises the stream-replay discipline hardest.
    for (label, c, seed) in [("silent", cfg, 77u64), ("mixed", mixed_config(), 78)] {
        let mc = MonteCarlo::new(c, 20_000, seed).with_engine(Engine::FastPath);
        let baseline = mc.run_sequential().unwrap();
        for threads in ["1", "2", "4"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            assert_eq!(
                mc.run().unwrap(),
                baseline,
                "{label} parallel fast path diverged at {threads} threads"
            );
        }
    }

    // Statistical identity on 10⁵ trials: the fast path samples attempt
    // counts geometrically instead of replaying attempts, so its draws
    // differ from the reference engine's — but both must agree with
    // Propositions 2–3 within z = 4, and with each other within 4
    // combined standard errors (two-sample z-test).
    let trials = 100_000;
    let fast = MonteCarlo::new(cfg, trials, 31)
        .with_engine(Engine::FastPath)
        .run()
        .unwrap();
    let reference = MonteCarlo::new(cfg, trials, 32)
        .with_engine(Engine::Reference)
        .run()
        .unwrap();

    let (t_exp, e_exp) = (m.expected_time(w, s1, s2), m.expected_energy(w, s1, s2));
    assert!(
        fast.time.contains(t_exp, 4.0),
        "Prop 2: fast-path time {} vs analytic {t_exp}",
        fast.time.mean()
    );
    assert!(
        fast.energy.contains(e_exp, 4.0),
        "Prop 3: fast-path energy {} vs analytic {e_exp}",
        fast.energy.mean()
    );
    assert_statistically_identical(&fast, &reference, trials, "silent");
}

#[test]
fn mixed_fast_path_matches_reference_and_propositions_4_and_5() {
    // Same z = 4 discipline as the silent section, against the mixed
    // recursion closed forms (Propositions 4–5) and the per-attempt
    // reference engine on 10⁵ trials.
    let m = hera_model();
    let mm = MixedModel::new(ErrorRates::new(8e-5, 5e-5).unwrap(), m.costs, m.power);
    let (w, s1, s2) = (3000.0, 0.6, 1.0);
    let cfg = SimConfig::from_mixed_model(&mm, w, s1, s2);

    let trials = 100_000;
    let fast = MonteCarlo::new(cfg, trials, 31)
        .with_engine(Engine::FastPath)
        .run()
        .unwrap();
    let reference = MonteCarlo::new(cfg, trials, 32)
        .with_engine(Engine::Reference)
        .run()
        .unwrap();

    let (t_exp, e_exp) = (mm.expected_time(w, s1, s2), mm.expected_energy(w, s1, s2));
    assert!(
        fast.time.contains(t_exp, 4.0),
        "Prop 4: mixed fast-path time {} vs analytic {t_exp}",
        fast.time.mean()
    );
    assert!(
        fast.energy.contains(e_exp, 4.0),
        "Prop 5: mixed fast-path energy {} vs analytic {e_exp}",
        fast.energy.mean()
    );
    assert_statistically_identical(&fast, &reference, trials, "mixed");
}

#[test]
fn mixed_run_range_splits_glue_back_to_the_whole_run() {
    // The mixed sampler consumes a variable number of draws per failed
    // trial, so unaligned `run_range` splits only stay identical because
    // partial chunks replay their RNG stream prefix from the grid
    // origin.
    let mc = MonteCarlo::new(mixed_config(), 5_000, 909).with_engine(Engine::FastPath);
    let whole = mc.run().unwrap();
    for cut in [1u64, 255, 256, 1000, 4099] {
        let glued = mc
            .run_range(0, cut)
            .unwrap()
            .merge(mc.run_range(cut, 5_000).unwrap());
        assert_eq!(glued.time.count(), whole.time.count());
        assert_eq!(glued.time.min(), whole.time.min());
        assert_eq!(glued.time.max(), whole.time.max());
        assert_eq!(glued.attempts.min(), whole.attempts.min());
        assert_eq!(glued.attempts.max(), whole.attempts.max());
        assert!((glued.time.mean() - whole.time.mean()).abs() < 1e-9);
        assert!((glued.attempts.mean() - whole.attempts.mean()).abs() < 1e-12);
    }
}

#[test]
fn forced_fast_path_on_mixed_config_no_longer_panics() {
    // Regression: forcing Engine::FastPath on a mixed config used to
    // panic inside the rayon workers; it now runs the mixed sampler.
    let mc = MonteCarlo::new(mixed_config(), 500, 1).with_engine(Engine::FastPath);
    let summary = mc.run().unwrap();
    assert_eq!(summary.time.count(), 500);
}

#[test]
fn degenerate_config_returns_err_instead_of_panicking() {
    // A pattern that essentially never completes (hazard ≫ 1 at both
    // speeds) must be refused with a typed error from every entry point,
    // not detonate an assert mid-run.
    let m = hera_model();
    let bad = SimConfig {
        rates: ErrorRates::new(0.5, 0.5).unwrap(),
        ..SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8)
    };
    for engine in [Engine::Auto, Engine::FastPath, Engine::Reference] {
        let mc = MonteCarlo::new(bad, 100, 5).with_engine(engine);
        assert!(mc.run().is_err(), "{engine:?} accepted a degenerate config");
        assert!(mc.run_sequential().is_err());
        assert!(mc.run_range(0, 10).is_err());
    }
}
