//! Acceptance tests for the geometric fast-path engine: bit-identical
//! summaries across thread counts (chunked RNG streams + deterministic
//! merge), and statistical identity with both the per-attempt reference
//! engine and the analytic expectations (Propositions 2–3).
//!
//! Everything lives in a single `#[test]` because the thread-count
//! section mutates process-global state (`RAYON_NUM_THREADS`), which
//! must not race with a concurrently running sibling test.

use rexec::prelude::*;

#[test]
fn fast_path_is_bit_identical_and_statistically_exact() {
    let m = configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
    .silent_model()
    .unwrap()
    .with_lambda(1e-4); // inflated λ so re-executions are actually hit
    let (w, s1, s2) = (2764.0, 0.4, 0.8);
    let cfg = SimConfig::from_silent_model(&m, w, s1, s2);

    // Bit-identity: one trial chunk = one RNG stream, and the vendored
    // rayon reduction preserves input order, so the parallel summary is
    // the sequential summary byte for byte at any worker count.
    let mc = MonteCarlo::new(cfg, 20_000, 77).with_engine(Engine::FastPath);
    let baseline = mc.run_sequential();
    for threads in ["1", "2", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        assert_eq!(
            mc.run(),
            baseline,
            "parallel fast path diverged at {threads} threads"
        );
    }

    // Statistical identity on 10⁵ trials: the fast path samples attempt
    // counts geometrically instead of replaying attempts, so its draws
    // differ from the reference engine's — but both must agree with
    // Propositions 2–3 within z = 4, and with each other within 4
    // combined standard errors (two-sample z-test).
    let trials = 100_000;
    let fast = MonteCarlo::new(cfg, trials, 31)
        .with_engine(Engine::FastPath)
        .run();
    let reference = MonteCarlo::new(cfg, trials, 32)
        .with_engine(Engine::Reference)
        .run();

    let (t_exp, e_exp) = (m.expected_time(w, s1, s2), m.expected_energy(w, s1, s2));
    assert!(
        fast.time.contains(t_exp, 4.0),
        "Prop 2: fast-path time {} vs analytic {t_exp}",
        fast.time.mean()
    );
    assert!(
        fast.energy.contains(e_exp, 4.0),
        "Prop 3: fast-path energy {} vs analytic {e_exp}",
        fast.energy.mean()
    );

    for (name, f, r) in [
        ("time", &fast.time, &reference.time),
        ("energy", &fast.energy, &reference.energy),
        ("attempts", &fast.attempts, &reference.attempts),
    ] {
        let se = (f.std_error().powi(2) + r.std_error().powi(2)).sqrt();
        let gap = (f.mean() - r.mean()).abs();
        assert!(
            gap <= 4.0 * se,
            "{name}: fast-path mean {} vs reference mean {} (gap {gap:.3e} > 4·se {:.3e})",
            f.mean(),
            r.mean(),
            4.0 * se
        );
        assert_eq!(f.count(), trials);
        assert_eq!(r.count(), trials);
    }
}
