//! End-to-end tests through the umbrella `rexec` crate: plan with the
//! analytic solver, execute with the simulator, and confirm the plan's
//! predictions — the full workflow a downstream user would run.

use rexec::prelude::*;

#[test]
fn plan_then_simulate_every_configuration() {
    for cfg in all_configurations() {
        let solver = cfg.solver().unwrap();
        let m = solver.model();
        let best = solver
            .solve(Configuration::DEFAULT_RHO)
            .unwrap_or_else(|| panic!("{} infeasible at rho = 3", cfg.name()));

        // Simulate the planned pattern; the sampled mean must match the
        // exact expectation (errors are rare at real λ, so a moderate
        // trial count suffices for a 5σ envelope).
        let sim = SimConfig::from_silent_model(m, best.w_opt, best.sigma1, best.sigma2);
        let report = MonteCarlo::new(sim, 20_000, 7)
            .validate(
                m.expected_time(best.w_opt, best.sigma1, best.sigma2),
                m.expected_energy(best.w_opt, best.sigma1, best.sigma2),
                5.0,
            )
            .unwrap();
        assert!(
            report.ok(),
            "{}: plan ({}, {}, W = {:.0}) not confirmed by simulation \
             (time rel {:.5}, energy rel {:.5})",
            cfg.name(),
            best.sigma1,
            best.sigma2,
            best.w_opt,
            report.time_rel_error(),
            report.energy_rel_error()
        );
    }
}

#[test]
fn planned_energy_beats_naive_full_speed_plan() {
    // The BiCrit plan must consume less energy per unit of work than
    // running everything at full speed with a Young/Daly-style period —
    // that is the point of the paper.
    for cfg in all_configurations() {
        let solver = cfg.solver().unwrap();
        let m = solver.model();
        let best = solver.solve(3.0).unwrap();

        let naive_w =
            rexec::core::daly::silent_work(m.costs.checkpoint, m.costs.verification, m.lambda, 1.0);
        let naive_energy = m.energy_overhead(naive_w, 1.0, 1.0);
        let planned = best.exact_energy_overhead(m);
        assert!(
            planned < naive_energy,
            "{}: planned {planned} vs naive full-speed {naive_energy}",
            cfg.name()
        );
    }
}

#[test]
fn simulated_two_speed_plan_beats_simulated_one_speed_plan() {
    // Find a configuration/bound where the planner picks two distinct
    // speeds, and verify the saving *in simulation*, not just in the model.
    let cfg = configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    });
    let solver = cfg.solver().unwrap();
    let rho = 1.775;
    let two = solver.solve(rho).unwrap();
    let one = solver.solve_one_speed(rho).unwrap();
    assert_ne!(
        (two.sigma1, two.sigma2),
        (one.sigma1, one.sigma2),
        "expected distinct plans at rho = {rho}"
    );

    // Inflate λ so the difference is measurable within reasonable trials;
    // rescale each plan's W to its own optimum under the inflated rate.
    let m = solver.model().with_lambda(5e-5);
    let hot = BiCritSolver::new(m, solver.speeds().clone());
    let two = hot.solve(rho).unwrap();
    let one = hot.solve_one_speed(rho).unwrap();
    let trials = 30_000;
    let sim_two = MonteCarlo::new(
        SimConfig::from_silent_model(&m, two.w_opt, two.sigma1, two.sigma2),
        trials,
        11,
    )
    .run()
    .unwrap();
    let sim_one = MonteCarlo::new(
        SimConfig::from_silent_model(&m, one.w_opt, one.sigma1, one.sigma2),
        trials,
        12,
    )
    .run()
    .unwrap();
    let e_two = sim_two.energy.mean() / two.w_opt;
    let e_one = sim_one.energy.mean() / one.w_opt;
    assert!(
        e_two <= e_one,
        "simulated two-speed energy/W {e_two} vs one-speed {e_one}"
    );
}

#[test]
fn umbrella_prelude_exposes_the_full_workflow() {
    // Compile-time API check: everything needed for the README quickstart
    // is reachable from `rexec::prelude`.
    let model = SilentModel::new(
        3.38e-6,
        ResilienceCosts::symmetric(300.0, 15.4),
        PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
    )
    .unwrap();
    let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
    let solver = BiCritSolver::new(model, speeds);
    let best = solver.solve(3.0).unwrap();
    assert_eq!((best.sigma1, best.sigma2), (0.4, 0.4));

    // Baselines and extensions are reachable too.
    let _ = daly::young_daly_period(300.0, 3.38e-6);
    let _ = theorem2::optimal_work(300.0, 1e-5, 0.5);
    let _ = FirstOrder::validity_window(0.5);
    let (_w, _t) = numeric::golden_section_min(|x| (x - 2.0) * (x - 2.0), 0.1, 10.0);
}

#[test]
fn rho_table_and_sweep_are_consistent() {
    // The ρ sweep at x = 3 must agree with the ρ = 3 table's best row.
    use rexec::sweep::figure::{sweep_figure, SweepParam};
    use rexec::sweep::grid::Grid;
    use rexec::sweep::table_rho::rho_table;
    let cfg = configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    });
    let table = rho_table(&cfg, 3.0);
    let table_best = table.best().unwrap().best.unwrap();
    let sweep = sweep_figure(&cfg, SweepParam::Rho, &Grid::explicit(vec![3.0]));
    let sweep_best = sweep.points[0].two_speed.unwrap();
    assert_eq!(sweep_best.sigma1, table_best.sigma1);
    assert_eq!(sweep_best.sigma2, table_best.sigma2);
    assert!((sweep_best.w_opt - table_best.w_opt).abs() < 1e-9);
}
