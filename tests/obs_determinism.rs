//! Thread-count independence of the metrics aggregates: the same seed
//! must produce byte-identical counter and histogram sections of the
//! registry snapshot whatever `RAYON_NUM_THREADS` says, because workers
//! fill `Shard`s that merge deterministically (the `Stats::merge`
//! pattern).
//!
//! Everything lives in a single `#[test]` because the scenarios mutate
//! process-global state (the metrics registry and `RAYON_NUM_THREADS`),
//! which must not race with a concurrently running sibling test.

use rexec::obs::{self, Shard};
use rexec::sim::{MonteCarlo, SimConfig};
use rexec_cli::args::Args;
use rexec_cli::run::execute;

fn sim_config() -> SimConfig {
    use rexec::core::{ErrorRates, PowerModel, ResilienceCosts};
    SimConfig {
        w: 2764.0,
        sigma1: 0.4,
        sigma2: 0.8,
        rates: ErrorRates::new(1e-4, 5e-5).unwrap(),
        costs: ResilienceCosts::symmetric(300.0, 15.4),
        power: PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
    }
}

/// Runs `work` under the given thread count with a clean registry and
/// returns the deterministic (counters + histograms) snapshot JSON.
fn deterministic_snapshot(threads: &str, work: impl FnOnce()) -> String {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    obs::reset();
    work();
    serde_json::to_string_pretty(&obs::global().deterministic_value()).unwrap()
}

#[test]
fn aggregates_are_byte_identical_across_thread_counts() {
    // Monte Carlo runner: shards merge along the parallel reduction.
    let run_mc = || {
        let s = MonteCarlo::new(sim_config(), 4096, 42).run();
        assert_eq!(s.time.count(), 4096);
    };
    let one = deterministic_snapshot("1", run_mc);
    assert!(one.contains("runner.trials"));
    assert!(one.contains("runner.attempts_per_trial"));
    for threads in ["2", "4", "13"] {
        let n = deterministic_snapshot(threads, run_mc);
        assert_eq!(one, n, "MonteCarlo aggregates differ at {threads} threads");
    }

    // Full CLI path (solver + validation), as in the acceptance check:
    // `rexec-plan --config hera --processor xscale --metrics ...`.
    let run_cli = || {
        let args = Args::parse(
            [
                "--config",
                "hera",
                "--processor",
                "xscale",
                "--validate",
                "3000",
                "--metrics",
                "unused.json",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(execute(&args).unwrap().feasible);
    };
    let one = deterministic_snapshot("1", run_cli);
    assert!(one.contains("bicrit.pairs_evaluated"));
    for threads in ["4", "16"] {
        let n = deterministic_snapshot(threads, run_cli);
        assert_eq!(one, n, "CLI aggregates differ at {threads} threads");
    }

    // Progress-sliced runs absorb the same totals as plain runs.
    let run_progress = || {
        let mut ticks = 0;
        MonteCarlo::new(sim_config(), 4096, 42).run_with_progress(&mut |_, _| ticks += 1);
        assert!(ticks > 0);
    };
    let plain = deterministic_snapshot("4", run_mc);
    let sliced = deterministic_snapshot("4", run_progress);
    assert_eq!(
        plain, sliced,
        "run_with_progress must absorb identical aggregates"
    );

    // Hand-built shards: any partition merges to the same aggregate and
    // absorbs into a registry exactly once.
    let values: Vec<u64> = (1..=500).collect();
    let absorb_split = |parts: usize| {
        let chunk = values.len().div_ceil(parts);
        let merged = values
            .chunks(chunk)
            .map(|c| {
                let mut s = Shard::new();
                for &v in c {
                    s.incr("split.events", 1);
                    s.record("split.value", v as f64);
                }
                s
            })
            .fold(Shard::new(), Shard::merge);
        obs::global().absorb(&merged);
    };
    let shard_snapshots: Vec<String> = [1, 3, 8]
        .into_iter()
        .map(|parts| deterministic_snapshot("1", || absorb_split(parts)))
        .collect();
    assert!(shard_snapshots[0].contains("split.events"));
    assert_eq!(shard_snapshots[0], shard_snapshots[1]);
    assert_eq!(shard_snapshots[0], shard_snapshots[2]);
}
