//! Thread-count independence of the metrics aggregates: the same seed
//! must produce byte-identical counter and histogram sections of the
//! registry snapshot whatever `RAYON_NUM_THREADS` says, because workers
//! fill `Shard`s that merge deterministically (the `Stats::merge`
//! pattern).
//!
//! Everything lives in a single `#[test]` because the scenarios mutate
//! process-global state (the metrics registry and `RAYON_NUM_THREADS`),
//! which must not race with a concurrently running sibling test.

use rexec::obs::{self, Shard};
use rexec::sim::{Engine, MonteCarlo, SimConfig};
use rexec_cli::args::Args;
use rexec_cli::run::execute;

fn sim_config() -> SimConfig {
    use rexec::core::{ErrorRates, PowerModel, ResilienceCosts};
    SimConfig {
        w: 2764.0,
        sigma1: 0.4,
        sigma2: 0.8,
        rates: ErrorRates::new(1e-4, 5e-5).unwrap(),
        costs: ResilienceCosts::symmetric(300.0, 15.4),
        power: PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
    }
}

/// Runs `work` under the given thread count with a clean registry and
/// returns the deterministic (counters + histograms) snapshot JSON.
fn deterministic_snapshot(threads: &str, work: impl FnOnce()) -> String {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    obs::reset();
    work();
    serde_json::to_string_pretty(&obs::global().deterministic_value()).unwrap()
}

#[test]
fn aggregates_are_byte_identical_across_thread_counts() {
    // Monte Carlo runner: shards merge along the parallel reduction.
    let run_mc = || {
        let s = MonteCarlo::new(sim_config(), 4096, 42).run().unwrap();
        assert_eq!(s.time.count(), 4096);
    };
    let one = deterministic_snapshot("1", run_mc);
    assert!(one.contains("runner.trials"));
    assert!(one.contains("runner.attempts_per_trial"));
    for threads in ["2", "4", "13"] {
        let n = deterministic_snapshot(threads, run_mc);
        assert_eq!(one, n, "MonteCarlo aggregates differ at {threads} threads");
    }

    // Full CLI path (solver + validation), as in the acceptance check:
    // `rexec-plan --config hera --processor xscale --metrics ...`.
    let run_cli = || {
        let args = Args::parse(
            [
                "--config",
                "hera",
                "--processor",
                "xscale",
                "--validate",
                "3000",
                "--metrics",
                "unused.json",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(execute(&args).unwrap().feasible);
    };
    let one = deterministic_snapshot("1", run_cli);
    assert!(one.contains("bicrit.pairs_evaluated"));
    for threads in ["4", "16"] {
        let n = deterministic_snapshot(threads, run_cli);
        assert_eq!(one, n, "CLI aggregates differ at {threads} threads");
    }

    // Progress-sliced runs absorb the same totals as plain runs.
    let run_progress = || {
        let mut ticks = 0;
        MonteCarlo::new(sim_config(), 4096, 42)
            .run_with_progress(&mut |_, _| ticks += 1)
            .unwrap();
        assert!(ticks > 0);
    };
    let plain = deterministic_snapshot("4", run_mc);
    let sliced = deterministic_snapshot("4", run_progress);
    assert_eq!(
        plain, sliced,
        "run_with_progress must absorb identical aggregates"
    );

    // The runner now flushes the `sim.*` counters once per trial chunk
    // instead of the engine bumping them per pattern; the batched adds
    // must preserve the exact totals. Every attempt ends in success, a
    // detected silent error, or a fail-stop interrupt, so
    // `sim.attempts = sim.patterns + sim.silent_errors +
    // sim.fail_stop_errors` holds exactly, and `sim.patterns` counts
    // every trial.
    let sim_totals = |engine: Engine, cfg: SimConfig| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
        obs::reset();
        MonteCarlo::new(cfg, 4096, 42)
            .with_engine(engine)
            .run()
            .unwrap();
        let g = obs::global();
        (
            g.counter("sim.patterns").get(),
            g.counter("sim.attempts").get(),
            g.counter("sim.silent_errors").get(),
            g.counter("sim.fail_stop_errors").get(),
        )
    };
    let (patterns, attempts, silent, fail_stop) = sim_totals(Engine::Reference, sim_config());
    assert_eq!(patterns, 4096);
    assert!(silent > 0 && fail_stop > 0, "mixed config must hit errors");
    assert_eq!(
        attempts,
        patterns + silent + fail_stop,
        "batched counter flush lost attempts"
    );

    // Same invariant on the geometric fast path (silent-only config),
    // where it degenerates to attempts = patterns + silent errors.
    let silent_cfg = SimConfig {
        rates: rexec::core::ErrorRates::silent_only(1e-4).unwrap(),
        ..sim_config()
    };
    let (patterns, attempts, silent, fail_stop) = sim_totals(Engine::FastPath, silent_cfg);
    assert_eq!(patterns, 4096);
    assert_eq!(fail_stop, 0);
    assert!(silent > 0, "inflated λ must produce retries");
    assert_eq!(attempts, patterns + silent);

    // Hand-built shards: any partition merges to the same aggregate and
    // absorbs into a registry exactly once.
    let values: Vec<u64> = (1..=500).collect();
    let absorb_split = |parts: usize| {
        let chunk = values.len().div_ceil(parts);
        let merged = values
            .chunks(chunk)
            .map(|c| {
                let mut s = Shard::new();
                for &v in c {
                    s.incr("split.events", 1);
                    s.record("split.value", v as f64);
                }
                s
            })
            .fold(Shard::new(), Shard::merge);
        obs::global().absorb(&merged);
    };
    let shard_snapshots: Vec<String> = [1, 3, 8]
        .into_iter()
        .map(|parts| deterministic_snapshot("1", || absorb_split(parts)))
        .collect();
    assert!(shard_snapshots[0].contains("split.events"));
    assert_eq!(shard_snapshots[0], shard_snapshots[1]);
    assert_eq!(shard_snapshots[0], shard_snapshots[2]);
}
