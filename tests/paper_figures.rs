//! Integration tests for the qualitative *shape* claims of Figures 2–14
//! (§4.3 of the paper), checked on the real sweep drivers.

use rexec::prelude::*;
use rexec::sweep::figure::{lambda_hi_for, sweep_figure, sweep_figure_paper_grid, SweepParam};
use rexec::sweep::grid::Grid;

fn atlas_crusoe() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Atlas,
        processor: ProcessorId::TransmetaCrusoe,
    })
}

#[test]
fn fig2_checkpoint_sweep_follows_paper_narrative() {
    // §4.3.1: "the optimal speed pair starts at (0.45, 0.45) when C is
    // small and reaches (0.45, 0.8) when C is increased to 5000 seconds.
    // ... using two speeds achieves up to 35% improvement."
    let s = sweep_figure_paper_grid(&atlas_crusoe(), SweepParam::Checkpoint, 1e-2);
    let first = s.points[1].two_speed.unwrap(); // x = 100 (x = 0 also fine)
    assert_eq!((first.sigma1, first.sigma2), (0.45, 0.45));
    let last = s.points.last().unwrap().two_speed.unwrap();
    assert_eq!((last.sigma1, last.sigma2), (0.45, 0.8));
    let max = s.max_saving().unwrap();
    assert!(
        (0.25..=0.40).contains(&max),
        "paper reports up to 35% savings; got {:.1}%",
        100.0 * max
    );
}

#[test]
fn fig3_verification_sweep_stabilizes_as_paper_says() {
    // §4.3.1: "the optimal speed pair stabilizes at (0.6, 0.45) when V is
    // increased to 5000 seconds."
    let s = sweep_figure_paper_grid(&atlas_crusoe(), SweepParam::Verification, 1e-2);
    let last = s.points.last().unwrap().two_speed.unwrap();
    assert_eq!((last.sigma1, last.sigma2), (0.6, 0.45));
}

#[test]
fn fig4_lambda_sweep_shrinks_pattern_and_raises_speeds() {
    // §4.3.2: "the optimal pattern size W reduces with increasing λ while
    // the execution speeds increase."
    let s = sweep_figure_paper_grid(&atlas_crusoe(), SweepParam::Lambda, 1e-2);
    let sols: Vec<_> = s.points.iter().filter_map(|p| p.two_speed).collect();
    assert!(sols.len() >= 15);
    // Wopt decreases overall by more than 10x across the sweep.
    assert!(sols.last().unwrap().w_opt < sols[0].w_opt / 10.0);
    // σ1 is non-decreasing along the sweep.
    for w in sols.windows(2) {
        assert!(w[1].sigma1 >= w[0].sigma1 - 1e-12);
    }
}

#[test]
fn fig5_rho_sweep_monotone_speeds_and_saving_peaks_at_tight_bounds() {
    let s = sweep_figure_paper_grid(&atlas_crusoe(), SweepParam::Rho, 1e-2);
    let feasible: Vec<_> = s.points.iter().filter(|p| p.two_speed.is_some()).collect();
    // Feasibility begins strictly inside the sweep (ρ = 1 is impossible).
    assert!(feasible.len() < s.points.len());
    // At loose bounds the one-speed optimum matches the two-speed one.
    let last = feasible.last().unwrap();
    assert!(last.saving().unwrap() < 0.01);
    // Somewhere at a tight bound the two-speed plan wins substantially.
    let max = s.max_saving().unwrap();
    assert!(max > 0.2, "got {:.1}%", 100.0 * max);
}

#[test]
fn fig6_pidle_increases_speeds_but_not_two_speed_gap() {
    // §4.3.3: speeds increase with Pidle (σ1 first), and the optimal σ2
    // (almost always) equals σ1 — one speed suffices.
    let s = sweep_figure_paper_grid(&atlas_crusoe(), SweepParam::PIdle, 1e-2);
    let first = s.points.first().unwrap().two_speed.unwrap();
    let last = s.points.last().unwrap().two_speed.unwrap();
    assert!(last.sigma1 > first.sigma1);
    let max = s.max_saving().unwrap();
    assert!(max < 0.02, "Pidle sweep should show ~no two-speed gain");
}

#[test]
fn fig7_pio_does_not_affect_speeds() {
    // §4.3.3: "the execution speeds ... are not affected by Pio."
    let s = sweep_figure_paper_grid(&atlas_crusoe(), SweepParam::PIo, 1e-2);
    let speeds: std::collections::BTreeSet<(i64, i64)> = s
        .points
        .iter()
        .map(|p| {
            let t = p.two_speed.unwrap();
            ((t.sigma1 * 100.0) as i64, (t.sigma2 * 100.0) as i64)
        })
        .collect();
    assert_eq!(speeds.len(), 1, "speeds must be constant: {speeds:?}");
    // But Wopt and the energy overhead grow with Pio.
    let first = s.points.first().unwrap().two_speed.unwrap();
    let last = s.points.last().unwrap().two_speed.unwrap();
    assert!(last.w_opt > first.w_opt);
    assert!(last.energy_overhead > first.energy_overhead);
}

#[test]
fn crusoe_keeps_initial_pair_longer_on_low_error_platforms() {
    // §4.3.4: "the optimal speed pair (0.45, 0.45) remains unchanged as
    // the checkpointing cost increases up to 5000 seconds when the Crusoe
    // processor is coupled with platforms other than Atlas, which have
    // smaller error rates."
    for platform in [
        PlatformId::Hera,
        PlatformId::Coastal,
        PlatformId::CoastalSsd,
    ] {
        let cfg = configuration(ConfigId {
            platform,
            processor: ProcessorId::TransmetaCrusoe,
        });
        let s = sweep_figure(&cfg, SweepParam::Checkpoint, &Grid::linear(0.0, 5000.0, 26));
        for p in &s.points {
            let sol = p.two_speed.unwrap();
            assert_eq!(
                (sol.sigma1, sol.sigma2),
                (0.45, 0.45),
                "{}: C = {}",
                cfg.name(),
                p.x
            );
        }
    }
}

#[test]
fn coastal_ssd_xscale_pio_sweep_does_affect_pattern() {
    // §4.3.4: "increasing the dynamic I/O power does affect the optimal
    // speed pair (and the pattern size) on the Coastal SSD/XScale
    // configuration."
    let cfg = configuration(ConfigId {
        platform: PlatformId::CoastalSsd,
        processor: ProcessorId::IntelXScale,
    });
    let s = sweep_figure_paper_grid(&cfg, SweepParam::PIo, lambda_hi_for(&cfg));
    let pairs: std::collections::BTreeSet<(i64, i64)> = s
        .points
        .iter()
        .map(|p| {
            let t = p.two_speed.unwrap();
            ((t.sigma1 * 100.0) as i64, (t.sigma2 * 100.0) as i64)
        })
        .collect();
    assert!(
        pairs.len() > 1,
        "Pio must change the optimal pair on Coastal SSD/XScale: {pairs:?}"
    );
}

#[test]
fn every_figure_sweep_satisfies_global_invariants() {
    // Across ALL configurations and ALL sweeps: the solution respects the
    // bound, two-speed ≤ one-speed energy, feasibility is monotone in ρ.
    for cfg in all_configurations() {
        let lambda_hi = lambda_hi_for(&cfg);
        for param in SweepParam::ALL {
            let s = sweep_figure_paper_grid(&cfg, param, lambda_hi);
            for p in &s.points {
                let rho = if param == SweepParam::Rho {
                    p.x
                } else {
                    Configuration::DEFAULT_RHO
                };
                if let Some(two) = p.two_speed {
                    assert!(
                        two.time_overhead <= rho * (1.0 + 1e-9),
                        "{} {param} x={}: bound violated",
                        cfg.name(),
                        p.x
                    );
                    assert!(two.w_opt > 0.0);
                }
                if let Some(sv) = p.saving() {
                    assert!(sv >= -1e-9, "{} {param} x={}", cfg.name(), p.x);
                }
            }
            if param == SweepParam::Rho {
                // Once feasible, stays feasible as ρ grows.
                let mut seen = false;
                for p in &s.points {
                    if p.two_speed.is_some() {
                        seen = true;
                    } else {
                        assert!(!seen, "{}: feasibility must be monotone in ρ", cfg.name());
                    }
                }
            }
        }
    }
}
