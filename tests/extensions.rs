//! Integration tests locking in the EXPERIMENTS.md claims for the
//! additional studies (X-pairs, X-robust, X-pareto, X-multiverif,
//! X-continuous, X-heatmap) — so `cargo test` re-verifies the recorded
//! numbers, not just the paper's own artifacts.

use rexec::core::{continuous, multiverif};
use rexec::prelude::*;
use rexec::sweep::grid::Grid;
use rexec::sweep::heatmap::Heatmap;

fn hera_xscale() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
}

#[test]
fn x_robust_ten_fold_misestimate_costs_under_five_percent() {
    // EXPERIMENTS.md: "plans computed with λ wrong by 10× ... lose at most
    // 3.5 % energy"; assert a 5 % envelope.
    let cfg = hera_xscale();
    let truth = cfg.silent_model().unwrap();
    let speeds = cfg.speed_set().unwrap();
    let oracle = BiCritSolver::new(truth, speeds.clone()).solve(3.0).unwrap();
    let oracle_e = truth.energy_overhead(oracle.w_opt, oracle.sigma1, oracle.sigma2);
    for factor in [0.1, 0.3, 3.0, 10.0] {
        let wrong = truth.with_lambda(truth.lambda * factor);
        let plan = BiCritSolver::new(wrong, speeds.clone()).solve(3.0).unwrap();
        let e = truth.energy_overhead(plan.w_opt, plan.sigma1, plan.sigma2);
        let penalty = e / oracle_e - 1.0;
        assert!(
            (0.0..0.05).contains(&(penalty + 1e-12)),
            "factor {factor}: penalty {penalty}"
        );
        // The mis-planned execution must still satisfy a slightly relaxed
        // bound under the truth (the constraint was computed with wrong λ).
        let t = truth.time_overhead(plan.w_opt, plan.sigma1, plan.sigma2);
        assert!(t < 3.0 * 1.05, "factor {factor}: T/W = {t}");
    }
}

#[test]
fn x_multiverif_recorded_gains() {
    // EXPERIMENTS.md: optimal q = 2 on Hera/XScale across the λ scan, with
    // the gain over q = 1 growing to ≈ 8.6 % at 100× the base rate.
    let cfg = hera_xscale();
    let base = cfg.silent_model().unwrap();
    let speeds = cfg.speed_set().unwrap();
    let m = base.with_lambda(base.lambda * 100.0);
    let multi = multiverif::optimize(&m, &speeds, 3.0, 8).unwrap();
    assert_eq!(multi.q, 2);
    let single = rexec::core::numeric::exact_bicrit_solve(&m, &speeds, 3.0).unwrap();
    let gain = 1.0 - multi.energy_overhead / single.2.objective;
    assert!(
        (0.06..0.11).contains(&gain),
        "gain {gain} outside the recorded ~8.6 % band"
    );
}

#[test]
fn x_continuous_recorded_gaps() {
    // EXPERIMENTS.md: XScale configurations leave 2.3–7.8 % on the table;
    // Crusoe configurations have zero gap (boundary optimum at 0.45).
    for cfg in all_configurations() {
        let m = cfg.silent_model().unwrap();
        let speeds = cfg.speed_set().unwrap();
        let gap = continuous::discretization_gap(&m, &speeds, 3.0).unwrap();
        match cfg.processor.id {
            ProcessorId::IntelXScale => {
                assert!((0.01..0.10).contains(&gap), "{}: gap {gap}", cfg.name())
            }
            ProcessorId::TransmetaCrusoe => assert!(
                gap.abs() < 5e-3,
                "{}: Crusoe gap should be ~0, got {gap}",
                cfg.name()
            ),
        }
    }
}

#[test]
fn x_heatmap_structure() {
    // EXPERIMENTS.md: pair regions form monotone bands; two distinct
    // speeds win throughout the transition bands (~31 % of cells on the
    // recorded grid).
    let map = Heatmap::compute(
        &hera_xscale(),
        &Grid::log(1e-6, 2e-3, 16),
        &Grid::linear(1.1, 8.0, 40),
    );
    let frac = map.two_speed_fraction();
    assert!(
        (0.2..0.45).contains(&frac),
        "two-speed fraction {frac} outside the recorded ~31 % band"
    );
    assert!(map.winning_pairs().len() >= 12);
    // Feasibility frontier moves right as λ grows: the first feasible ρ
    // index is non-decreasing down the rows.
    let mut last_first = 0usize;
    for i in 0..map.lambdas.len() {
        let first = (0..map.rhos.len())
            .find(|&j| map.cell(i, j).solution.is_some())
            .expect("every row has feasible cells");
        assert!(
            first >= last_first,
            "feasibility frontier must be monotone in λ"
        );
        last_first = first;
    }
}

#[test]
fn x_pareto_frontier_extremes_match_solvers() {
    // The fast end of the frontier approaches the MinTime optimum; the
    // cheap end matches the unconstrained BiCrit optimum.
    let cfg = hera_xscale();
    let solver = cfg.solver().unwrap();
    let frontier = ParetoFrontier::compute(&solver, 20.0, 300);
    let fast = &frontier.points[0];
    let mintime = MinTimeSolver::new(*solver.model(), solver.speeds().clone())
        .solve()
        .unwrap();
    assert!(fast.time_overhead <= mintime.time_overhead * 1.05);
    let cheap = frontier.points.last().unwrap();
    let loose = solver.solve(20.0).unwrap();
    assert!((cheap.energy_overhead - loose.energy_overhead).abs() / loose.energy_overhead < 1e-6);
}

#[test]
fn segmented_simulator_agrees_with_multiverif_optimum() {
    // Simulate the q = 2 optimum from X-multiverif and verify the analytic
    // expectation within 4σ (fast variant of the example's check).
    let cfg = hera_xscale();
    let base = cfg.silent_model().unwrap();
    let speeds = cfg.speed_set().unwrap();
    let m = base.with_lambda(base.lambda * 30.0);
    let sol = multiverif::optimize(&m, &speeds, 3.0, 8).unwrap();
    let sim_cfg = SimConfig::from_silent_model(&m, sol.w_opt, sol.sigma1, sol.sigma2);
    let trials = 12_000u64;
    let mut time = Stats::new();
    for i in 0..trials {
        let mut rng = SimRng::for_trial(8088, i);
        time.push(simulate_pattern_segmented(&sim_cfg, sol.q, &mut rng).time);
    }
    let expect = multiverif::expected_time(&m, sol.w_opt, sol.q, sol.sigma1, sol.sigma2);
    assert!(
        time.contains(expect, 4.0),
        "sampled {} vs analytic {expect}",
        time.mean()
    );
}
