//! End-to-end Prometheus exposition: the text the real pipelines emit
//! (CLI `--metrics-prom`, experiments `--metrics-prom`) must pass the
//! strict in-repo format checker, carry the expected metric families,
//! and agree with the registry it was rendered from. Complements the
//! unit tests in `crates/obs/src/export.rs`, which pin the grammar on
//! hand-built registries.
//!
//! Everything that touches the process-global registry lives in one
//! `#[test]` so scenarios cannot race each other's metrics.

use rexec::obs::{self, check_prometheus_text, prometheus_text, snapshot_diff};
use rexec::sim::{MonteCarlo, SimConfig};
use rexec_cli::args::Args;
use rexec_cli::run::execute;
use rexec_harness::{FaultPlan, RetryPolicy};
use rexec_sweep::experiments::{quick_experiment_ids, DEFAULT_SEED};
use rexec_sweep::pipeline::{run, PipelineConfig};
use serde::Value;
use std::fs;

fn sim_config() -> SimConfig {
    use rexec::core::{ErrorRates, PowerModel, ResilienceCosts};
    SimConfig {
        w: 2764.0,
        sigma1: 0.4,
        sigma2: 0.8,
        rates: ErrorRates::new(1e-4, 5e-5).unwrap(),
        costs: ResilienceCosts::symmetric(300.0, 15.4),
        power: PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
    }
}

#[test]
fn real_pipelines_emit_checker_clean_expositions() {
    // --- CLI path: solve + validate, then render the global registry.
    obs::reset();
    let args = Args::parse(
        [
            "--config",
            "hera",
            "--processor",
            "xscale",
            "--validate",
            "2000",
            "--metrics-prom",
            "unused.prom",
        ]
        .map(String::from),
    )
    .unwrap();
    let outcome = execute(&args).unwrap();
    let text = outcome
        .metrics_prom
        .expect("--metrics-prom must produce an exposition");
    check_prometheus_text(&text).expect("CLI exposition must pass the strict checker");
    assert!(text.contains("# TYPE rexec_bicrit_pairs_evaluated_total counter"));
    assert!(text.contains("# TYPE rexec_runner_trials_total counter"));
    assert!(
        text.contains("rexec_runner_attempts_per_trial{quantile=\"0.5\"}"),
        "sketches must export as quantile summaries"
    );

    // The exposition must agree with the registry it was rendered from:
    // the trials counter line carries the exact trial count.
    let trials = obs::global().counter("runner.trials").get();
    assert_eq!(trials, 2000);
    assert!(
        text.contains(&format!("rexec_runner_trials_total {trials}")),
        "counter line must match the registry value"
    );

    // Re-rendering an unchanged registry is byte-stable.
    assert_eq!(
        prometheus_text(obs::global()),
        prometheus_text(obs::global())
    );

    // --- snapshot_diff isolates one phase of a run.
    let before = obs::global().snapshot_value();
    MonteCarlo::new(sim_config(), 1024, 7).run().unwrap();
    let after = obs::global().snapshot_value();
    let diff = snapshot_diff(&before, &after);
    let diff_trials = match diff.get("counters").and_then(|c| c.get("runner.trials")) {
        Some(Value::Number(n)) => n.as_u64(),
        _ => None,
    };
    assert_eq!(
        diff_trials,
        Some(1024),
        "diff must attribute exactly the second run's trials"
    );

    // --- experiments pipeline: the --metrics-prom artifact on disk.
    let dir = std::env::temp_dir().join(format!("rexec-prom-fmt-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let prom_path = dir.join("metrics.prom");
    let cfg = PipelineConfig {
        out_dir: dir.clone(),
        seed: DEFAULT_SEED,
        resume: false,
        ids: quick_experiment_ids(),
        fault: FaultPlan::default(),
        retry: RetryPolicy::immediate(3),
        metrics_prom: Some(prom_path.clone()),
        trace_chrome: None,
    };
    run(&cfg).expect("quick pipeline run");
    let written = fs::read_to_string(&prom_path).expect("exposition file written");
    check_prometheus_text(&written).expect("pipeline exposition must pass the strict checker");
    assert!(
        written.contains("rexec_sweep_points_total"),
        "sweep counters must be present in the pipeline exposition"
    );
    assert!(
        written.contains("_seconds_sum"),
        "span timings must export as *_seconds summaries"
    );
    let _ = fs::remove_dir_all(&dir);
}
