//! Statistical integration tests: the Monte Carlo simulator converges to
//! the analytic expectations (Propositions 1–5) across diverse regimes.

use rexec::prelude::*;

fn hera_xscale_model() -> SilentModel {
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
    .silent_model()
    .unwrap()
}

fn validate_silent(lambda: f64, w: f64, s1: f64, s2: f64, trials: u64, seed: u64) {
    let m = hera_xscale_model().with_lambda(lambda);
    let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
    let report = MonteCarlo::new(cfg, trials, seed)
        .validate(
            m.expected_time(w, s1, s2),
            m.expected_energy(w, s1, s2),
            4.0, // 4σ: false-failure probability ~6e-5 per check
        )
        .unwrap();
    assert!(
        report.ok(),
        "λ={lambda} W={w} σ=({s1},{s2}): time rel {:.5} energy rel {:.5}",
        report.time_rel_error(),
        report.energy_rel_error()
    );
}

#[test]
fn silent_low_error_rate() {
    // Errors are rare: ~1 pattern in 43 fails.
    validate_silent(3.38e-6, 2764.0, 0.4, 0.4, 30_000, 101);
}

#[test]
fn silent_high_error_rate_two_speeds() {
    // λW/σ1 ≈ 0.7: heavy re-execution at a faster speed.
    validate_silent(1e-4, 2764.0, 0.4, 0.8, 40_000, 102);
}

#[test]
fn silent_slow_reexecution() {
    // Re-executions *slower* than the first run (σ2 < σ1).
    validate_silent(5e-5, 3000.0, 1.0, 0.4, 40_000, 103);
}

#[test]
fn silent_equal_speeds_matches_proposition_1() {
    let m = hera_xscale_model().with_lambda(8e-5);
    let (w, s) = (4000.0, 0.6);
    let cfg = SimConfig::from_silent_model(&m, w, s, s);
    let summary = MonteCarlo::new(cfg, 40_000, 104).run().unwrap();
    let t1 = m.expected_time_single(w, s);
    assert!(
        summary.time.contains(t1, 4.0),
        "Prop 1: sampled {} vs analytic {t1}",
        summary.time.mean()
    );
}

#[test]
fn mixed_errors_converge_to_recursion_values() {
    let m = hera_xscale_model();
    let mm = MixedModel::new(ErrorRates::new(6e-5, 6e-5).unwrap(), m.costs, m.power);
    let (w, s1, s2) = (2500.0, 0.4, 1.0);
    let cfg = SimConfig::from_mixed_model(&mm, w, s1, s2);
    let report = MonteCarlo::new(cfg, 50_000, 105)
        .validate(
            mm.expected_time(w, s1, s2),
            mm.expected_energy(w, s1, s2),
            4.0,
        )
        .unwrap();
    assert!(
        report.ok(),
        "time rel {:.5} energy rel {:.5}",
        report.time_rel_error(),
        report.energy_rel_error()
    );
}

#[test]
fn fail_stop_only_converges() {
    let m = hera_xscale_model();
    let mm = MixedModel::new(ErrorRates::fail_stop_only(1e-4).unwrap(), m.costs, m.power);
    let (w, s1, s2) = (3000.0, 0.5, 1.0); // σ2 = 2σ1, the Theorem 2 line
    let cfg = SimConfig::from_mixed_model(&mm, w, s1, s2);
    let report = MonteCarlo::new(cfg, 50_000, 106)
        .validate(
            mm.expected_time(w, s1, s2),
            mm.expected_energy(w, s1, s2),
            4.0,
        )
        .unwrap();
    assert!(
        report.ok(),
        "time rel {:.5} energy rel {:.5}",
        report.time_rel_error(),
        report.energy_rel_error()
    );
}

#[test]
fn sampled_error_counts_match_model_probabilities() {
    // The fraction of first attempts hit by a silent error must equal
    // p = 1 − e^{−λW/σ1}.
    let m = hera_xscale_model().with_lambda(2e-4);
    let (w, s1, s2) = (2000.0, 0.4, 1.0);
    let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
    let trials = 60_000u64;
    let mut first_attempt_failures = 0u64;
    for i in 0..trials {
        let mut rng = SimRng::for_trial(777, i);
        let p = rexec::sim::simulate_pattern(&cfg, &mut rng);
        if p.attempts > 1 {
            first_attempt_failures += 1;
        }
    }
    let observed = first_attempt_failures as f64 / trials as f64;
    let expected = m.p_error(w, s1);
    let stderr = (expected * (1.0 - expected) / trials as f64).sqrt();
    assert!(
        (observed - expected).abs() < 4.0 * stderr,
        "observed {observed} vs p = {expected} (4σ = {})",
        4.0 * stderr
    );
}

#[test]
fn application_overhead_converges_to_pattern_overhead() {
    // A long application's makespan/Wbase must approach T(W)/W.
    let m = hera_xscale_model().with_lambda(1e-4);
    let (w, s1, s2) = (2764.0, 0.4, 0.8);
    let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
    // Per-pattern outcomes have heavy relative variance at λW/σ ≈ 0.7
    // (roughly half the patterns re-execute), so use a long application
    // and a 5 % envelope (≈ 3σ of the 2000-pattern mean).
    let w_base = 2000.0 * w;
    let mut rng = SimRng::new(2025);
    let app = rexec::sim::simulate_application(&cfg, w_base, &mut rng);
    let analytic = m.time_overhead(w, s1, s2);
    let got = app.time_overhead(w_base);
    assert!(
        (got - analytic).abs() / analytic < 0.05,
        "application overhead {got} vs pattern model {analytic}"
    );
    let analytic_e = m.energy_overhead(w, s1, s2);
    let got_e = app.energy_overhead(w_base);
    assert!(
        (got_e - analytic_e).abs() / analytic_e < 0.05,
        "energy overhead {got_e} vs {analytic_e}"
    );
}

#[test]
fn expected_executions_matches_over_many_rates() {
    for (i, &lambda) in [1e-5, 5e-5, 2e-4].iter().enumerate() {
        let m = hera_xscale_model().with_lambda(lambda);
        let (w, s1, s2) = (2764.0, 0.4, 0.6);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let summary = MonteCarlo::new(cfg, 30_000, 900 + i as u64).run().unwrap();
        let expected = m.expected_executions(w, s1, s2);
        assert!(
            summary.attempts.contains(expected, 4.0),
            "λ={lambda}: sampled {} vs analytic {expected}",
            summary.attempts.mean()
        );
    }
}
