//! Pins every [`HarnessError`] variant to its documented process exit
//! code (EXPERIMENTS.md): `2` for usage errors, `137` for the fault
//! plan's injected kill, `1` for runtime failures. The match below is
//! exhaustive on purpose — adding a variant without deciding its exit
//! code fails compilation here, not in production.

use rexec_harness::HarnessError;

fn every_variant() -> Vec<HarnessError> {
    vec![
        HarnessError::Io {
            action: "write artifact".into(),
            path: "results/f.csv".into(),
            source: "disk full".into(),
        },
        HarnessError::InvalidArg {
            what: "--fault-plan".into(),
            reason: "duplicate key `seed`".into(),
        },
        HarnessError::UnknownExperiment("F99".into()),
        HarnessError::Manifest("truncated".into()),
        HarnessError::ResumeMismatch {
            field: "seed".into(),
            recorded: "7".into(),
            current: "8".into(),
        },
        HarnessError::KilledByFaultPlan { after_unit: 2 },
    ]
}

/// The documented exit code per variant, written as an exhaustive match
/// (no `_` arm) so the contract must be revisited whenever the error
/// surface grows.
fn documented_exit_code(err: &HarnessError) -> i32 {
    match err {
        HarnessError::InvalidArg { .. } => 2,
        HarnessError::UnknownExperiment(_) => 2,
        HarnessError::KilledByFaultPlan { .. } => 137,
        HarnessError::Io { .. } => 1,
        HarnessError::Manifest(_) => 1,
        HarnessError::ResumeMismatch { .. } => 1,
    }
}

#[test]
fn every_variant_maps_to_its_documented_exit_code() {
    let variants = every_variant();
    assert_eq!(
        variants.len(),
        6,
        "update every_variant() alongside the enum"
    );
    for err in &variants {
        assert_eq!(
            err.exit_code(),
            documented_exit_code(err),
            "exit code drifted for {err:?}"
        );
    }
}

#[test]
fn exit_codes_are_valid_and_distinguish_failure_classes() {
    for err in &every_variant() {
        let code = err.exit_code();
        // Non-zero (it is an error), within the 8-bit exit range, and
        // never colliding with success.
        assert!((1..=255).contains(&code), "{err:?} -> {code}");
    }
    // The three classes stay distinguishable to scripts and CI.
    assert_ne!(
        HarnessError::UnknownExperiment("x".into()).exit_code(),
        HarnessError::Manifest("x".into()).exit_code()
    );
    assert_ne!(
        HarnessError::KilledByFaultPlan { after_unit: 1 }.exit_code(),
        HarnessError::Manifest("x".into()).exit_code()
    );
}

/// The kill exit code mirrors SIGKILL (128 + 9) so the CI fault-smoke
/// job can treat an injected kill exactly like a real one.
#[test]
fn injected_kill_mirrors_sigkill() {
    assert_eq!(
        HarnessError::KilledByFaultPlan { after_unit: 1 }.exit_code(),
        128 + 9
    );
}
