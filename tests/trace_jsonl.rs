//! JSONL serialization of simulation traces: golden snapshot and
//! round-trip guarantees (satellite of the observability PR).

use rexec::core::{ErrorRates, PowerModel, ResilienceCosts};
use rexec::sim::engine::simulate_pattern_traced;
use rexec::sim::{events_from_jsonl, render_timeline, SimConfig, SimRng, TraceRecorder};

fn cfg(rates: ErrorRates) -> SimConfig {
    SimConfig {
        w: 1000.0,
        sigma1: 0.5,
        sigma2: 1.0,
        rates,
        costs: ResilienceCosts::symmetric(100.0, 10.0),
        power: PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
    }
}

/// The error-free pattern takes a single deterministic path (no RNG
/// draw affects the timeline), so its JSONL export is a stable golden:
/// any change to the event vocabulary, field names or number formatting
/// shows up as a diff here.
#[test]
fn error_free_trace_matches_golden_jsonl() {
    let mut tr = TraceRecorder::new(64);
    simulate_pattern_traced(
        &cfg(ErrorRates::new(0.0, 0.0).unwrap()),
        &mut SimRng::new(1),
        Some(&mut tr),
    );
    let golden = "\
{\"kind\":{\"WorkStart\":{\"speed\":0.5}},\"time\":0.0}\n\
{\"kind\":{\"VerificationStart\":{\"speed\":0.5}},\"time\":2000.0}\n\
{\"kind\":\"VerificationOk\",\"time\":2020.0}\n\
{\"kind\":\"CheckpointStart\",\"time\":2020.0}\n\
{\"kind\":\"CheckpointDone\",\"time\":2120.0}\n";
    assert_eq!(tr.to_jsonl(), golden);
    assert_eq!(render_timeline(tr.events()), "[W σ=0.5 |V v+ |C ]");
}

/// For a fixed seed the export is identical run to run, and parsing it
/// back yields exactly the recorded events — including error and
/// recovery events, whose timestamps come from the RNG.
#[test]
fn seeded_traces_round_trip_exactly() {
    let c = cfg(ErrorRates::new(3e-4, 1e-4).unwrap());
    for seed in 0..32 {
        let mut tr = TraceRecorder::new(512);
        simulate_pattern_traced(&c, &mut SimRng::new(seed), Some(&mut tr));
        let jsonl = tr.to_jsonl();

        let mut again = TraceRecorder::new(512);
        simulate_pattern_traced(&c, &mut SimRng::new(seed), Some(&mut again));
        assert_eq!(
            again.to_jsonl(),
            jsonl,
            "seed {seed}: export must be deterministic"
        );

        let parsed = events_from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, tr.events(), "seed {seed}: JSONL must round-trip");
    }
}

#[test]
fn blank_lines_are_skipped_and_garbage_is_rejected() {
    let ok = events_from_jsonl("\n{\"kind\":\"CheckpointDone\",\"time\":1.0}\n\n").unwrap();
    assert_eq!(ok.len(), 1);
    assert!(events_from_jsonl("{\"kind\":\"NoSuchEvent\",\"time\":1.0}").is_err());
    assert!(events_from_jsonl("not json at all").is_err());
}
