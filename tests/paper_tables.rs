//! Golden integration tests: the four §4.2 tables of the paper,
//! transcribed verbatim and checked cell by cell against the solver.

use rexec::prelude::*;
use rexec::sweep::table_rho::rho_table;

/// One expected row: σ1, and (best σ2, Wopt, E/W) if feasible.
type Row = (f64, Option<(f64, f64, f64)>);

fn hera_xscale() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
}

fn check_table(rho: f64, expected: &[Row]) {
    let table = rho_table(&hera_xscale(), rho);
    assert_eq!(table.rows.len(), expected.len());
    for (got, want) in table.rows.iter().zip(expected) {
        assert_eq!(got.sigma1, want.0, "rho={rho}: row order");
        match (got.best, want.1) {
            (None, None) => {}
            (Some(sol), Some((s2, w, e))) => {
                assert_eq!(sol.sigma2, s2, "rho={rho} σ1={}: best σ2", want.0);
                // The paper truncates its printed values.
                assert_eq!(
                    sol.w_opt.trunc(),
                    w,
                    "rho={rho} σ1={}: Wopt (exact {:.3})",
                    want.0,
                    sol.w_opt
                );
                assert_eq!(
                    sol.energy_overhead.trunc(),
                    e,
                    "rho={rho} σ1={}: E/W (exact {:.3})",
                    want.0,
                    sol.energy_overhead
                );
            }
            (got, want) => panic!("rho={rho}: {got:?} vs paper {want:?}"),
        }
    }
}

#[test]
fn paper_table_rho_8() {
    check_table(
        8.0,
        &[
            (0.15, Some((0.4, 1711.0, 466.0))),
            (0.4, Some((0.4, 2764.0, 416.0))),
            (0.6, Some((0.4, 3639.0, 674.0))),
            (0.8, Some((0.4, 4627.0, 1082.0))),
            (1.0, Some((0.4, 5742.0, 1625.0))),
        ],
    );
}

#[test]
fn paper_table_rho_3() {
    check_table(
        3.0,
        &[
            (0.15, None),
            (0.4, Some((0.4, 2764.0, 416.0))),
            (0.6, Some((0.4, 3639.0, 674.0))),
            (0.8, Some((0.4, 4627.0, 1082.0))),
            (1.0, Some((0.4, 5742.0, 1625.0))),
        ],
    );
}

#[test]
fn paper_table_rho_1_775() {
    check_table(
        1.775,
        &[
            (0.15, None),
            (0.4, None),
            (0.6, Some((0.8, 4251.0, 690.0))),
            (0.8, Some((0.4, 4627.0, 1082.0))),
            (1.0, Some((0.4, 5742.0, 1625.0))),
        ],
    );
}

#[test]
fn paper_table_rho_1_4() {
    check_table(
        1.4,
        &[
            (0.15, None),
            (0.4, None),
            (0.6, None),
            (0.8, Some((0.4, 4627.0, 1082.0))),
            (1.0, Some((0.4, 5742.0, 1625.0))),
        ],
    );
}

#[test]
fn overall_best_rows_match_paper_bold_entries() {
    // The paper highlights the overall best pair in bold:
    // ρ = 8 → (0.4, 0.4); ρ = 3 → (0.4, 0.4); ρ = 1.775 → (0.6, 0.8);
    // ρ = 1.4 → (0.8, 0.4).
    let cfg = hera_xscale();
    for (rho, s1, s2) in [
        (8.0, 0.4, 0.4),
        (3.0, 0.4, 0.4),
        (1.775, 0.6, 0.8),
        (1.4, 0.8, 0.4),
    ] {
        let best = cfg.solver().unwrap().solve(rho).unwrap();
        assert_eq!(
            (best.sigma1, best.sigma2),
            (s1, s2),
            "overall best at rho = {rho}"
        );
    }
}

#[test]
fn feasibility_pattern_follows_rho_min_per_sigma1() {
    // A row is dashed exactly when min over σ2 of ρ_{1,j} exceeds ρ.
    let cfg = hera_xscale();
    let solver = cfg.solver().unwrap();
    let m = solver.model();
    for rho in [8.0, 3.0, 1.775, 1.4] {
        for row in solver.per_sigma1(rho) {
            let min_rho = solver
                .speeds()
                .iter()
                .map(|s2| rexec::core::theorem1::rho_min(m, row.sigma1, s2))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(
                row.best.is_some(),
                min_rho <= rho,
                "rho={rho} σ1={}: ρ_min = {min_rho}",
                row.sigma1
            );
        }
    }
}

#[test]
fn paper_claim_any_pair_can_be_optimal_except_slowest() {
    // §4.2: "all speed pairs except the ones containing 0.15 can be the
    // optimal solution, depending on the value of ρ". Scan ρ finely and
    // collect the set of winners.
    let cfg = hera_xscale();
    let solver = cfg.solver().unwrap();
    let mut winners = std::collections::BTreeSet::new();
    let mut rho = solver.min_feasible_rho() * 1.0001;
    while rho < 12.0 {
        if let Some(best) = solver.solve(rho) {
            winners.insert(((best.sigma1 * 100.0) as i64, (best.sigma2 * 100.0) as i64));
        }
        rho *= 1.002;
    }
    // No winner involves σ1 = 0.15 (and the slowest pair never wins).
    for &(s1, _s2) in &winners {
        assert_ne!(s1, 15, "σ1 = 0.15 must never win: {winners:?}");
    }
    // Many distinct pairs win across the ρ range.
    assert!(
        winners.len() >= 6,
        "expected a rich set of optimal pairs, got {winners:?}"
    );
}
