//! Property-based tests (proptest) of the core invariants, across random
//! model parameters — not just the paper's published configurations.

use proptest::prelude::*;
use rexec::core::approx::FirstOrder;
use rexec::core::numeric;
use rexec::core::theorem1;
use rexec::prelude::*;

/// Random but physically sensible model parameters.
fn arb_model() -> impl Strategy<Value = SilentModel> {
    (
        1e-7..1e-4f64,    // lambda
        1.0..3000.0f64,   // C (= R)
        0.0..500.0f64,    // V
        100.0..6000.0f64, // kappa
        0.0..500.0f64,    // p_idle
        0.0..500.0f64,    // p_io
    )
        .prop_map(|(lambda, c, v, kappa, p_idle, p_io)| {
            SilentModel::new(
                lambda,
                ResilienceCosts::symmetric(c, v),
                PowerModel::new(kappa, p_idle, p_io).unwrap(),
            )
            .unwrap()
        })
}

fn arb_speed() -> impl Strategy<Value = f64> {
    0.1..1.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1's Wopt always satisfies the first-order constraint and is
    /// never beaten by nearby feasible pattern sizes.
    #[test]
    fn theorem1_is_feasible_and_locally_optimal(
        m in arb_model(),
        s1 in arb_speed(),
        s2 in arb_speed(),
        slack in 1.01..4.0f64,
    ) {
        let rho = theorem1::rho_min(&m, s1, s2) * slack;
        let sol = theorem1::optimal_pattern(&m, s1, s2, rho).unwrap();
        let t = FirstOrder::time_overhead(&m, sol.w_opt, s1, s2);
        prop_assert!(t <= rho * (1.0 + 1e-9));
        // Local optimality among feasible perturbations.
        let co = FirstOrder::energy_coefficients(&m, s1, s2);
        for factor in [0.97, 0.99, 1.01, 1.03] {
            let w = sol.w_opt * factor;
            if FirstOrder::time_overhead(&m, w, s1, s2) <= rho {
                prop_assert!(
                    co.eval(sol.w_opt) <= co.eval(w) + 1e-9 * co.eval(w),
                    "W = {} beats Wopt = {}", w, sol.w_opt
                );
            }
        }
    }

    /// The closed form agrees with the exact numeric optimizer whenever
    /// λ·Wopt is small (the regime the paper's approximation targets) —
    /// so λ is drawn low here: Wopt ~ √(C/λ) makes λ·Wopt ~ √(λC).
    #[test]
    fn theorem1_matches_exact_numeric_in_small_lambda_regime(
        m in arb_model(),
        lambda in 1e-9..2e-7f64,
        s1 in arb_speed(),
        s2 in arb_speed(),
    ) {
        let m = m.with_lambda(lambda);
        let rho = theorem1::rho_min(&m, s1, s2) * 2.0;
        let fo = theorem1::optimal_pattern(&m, s1, s2, rho).unwrap();
        prop_assume!(m.lambda * fo.w_opt / s2.min(s1) < 0.05);
        let ex = numeric::exact_pair_optimum(&m, s1, s2, rho).unwrap();
        let fo_e = FirstOrder::energy_overhead(&m, fo.w_opt, s1, s2);
        prop_assert!(
            (ex.objective - fo_e).abs() / ex.objective < 0.05,
            "exact {} vs first-order {}", ex.objective, fo_e
        );
    }

    /// ρ_min is exactly the infimum of feasible bounds.
    #[test]
    fn rho_min_is_a_sharp_threshold(
        m in arb_model(),
        s1 in arb_speed(),
        s2 in arb_speed(),
    ) {
        let rho = theorem1::rho_min(&m, s1, s2);
        prop_assert!(theorem1::optimal_pattern(&m, s1, s2, rho * 1.001).is_ok());
        prop_assert!(theorem1::optimal_pattern(&m, s1, s2, rho * 0.999).is_err());
    }

    /// The BiCrit solver never returns an infeasible or dominated answer,
    /// and relaxing ρ never increases the optimal energy.
    #[test]
    fn bicrit_energy_is_monotone_in_rho(
        m in arb_model(),
        rho_lo in 1.5..4.0f64,
        bump in 1.05..2.0f64,
    ) {
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let solver = BiCritSolver::new(m, speeds);
        let a = solver.solve(rho_lo);
        let b = solver.solve(rho_lo * bump);
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!(b.energy_overhead <= a.energy_overhead * (1.0 + 1e-12));
        }
        if a.is_some() {
            prop_assert!(b.is_some(), "feasibility must be monotone in rho");
        }
    }

    /// Two-speed optimum never loses to the one-speed optimum.
    #[test]
    fn two_speeds_dominate_one(
        m in arb_model(),
        rho in 1.5..6.0f64,
    ) {
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let solver = BiCritSolver::new(m, speeds);
        if let (Some(two), Some(one)) = (solver.solve(rho), solver.solve_one_speed(rho)) {
            prop_assert!(two.energy_overhead <= one.energy_overhead * (1.0 + 1e-12));
        }
    }

    /// Exact expectations are monotone in λ and reduce to the error-free
    /// values at λ = 0.
    #[test]
    fn exact_expectations_monotone_in_lambda(
        m in arb_model(),
        s1 in arb_speed(),
        s2 in arb_speed(),
        w in 100.0..20_000.0f64,
    ) {
        let t0 = m.with_lambda(0.0).expected_time(w, s1, s2);
        let t1 = m.expected_time(w, s1, s2);
        let t2 = m.with_lambda(m.lambda * 10.0).expected_time(w, s1, s2);
        prop_assert!(t0 <= t1 && t1 <= t2);
        let base = m.costs.checkpoint + (w + m.costs.verification) / s1;
        prop_assert!((t0 - base).abs() < 1e-9 * base);
        let e0 = m.with_lambda(0.0).expected_energy(w, s1, s2);
        let e1 = m.expected_energy(w, s1, s2);
        prop_assert!(e0 <= e1 * (1.0 + 1e-12));
    }

    /// The mixed model with a zero fail-stop rate equals the silent model,
    /// for arbitrary parameters.
    #[test]
    fn mixed_reduces_to_silent(
        m in arb_model(),
        s1 in arb_speed(),
        s2 in arb_speed(),
        w in 100.0..20_000.0f64,
    ) {
        let mm = MixedModel::new(
            ErrorRates::silent_only(m.lambda).unwrap(),
            m.costs,
            m.power,
        );
        let ts = m.expected_time(w, s1, s2);
        let tm = mm.expected_time(w, s1, s2);
        prop_assert!((ts - tm).abs() <= 1e-9 * ts);
        let es = m.expected_energy(w, s1, s2);
        let em = mm.expected_energy(w, s1, s2);
        prop_assert!((es - em).abs() <= 1e-9 * es);
    }

    /// Energy decomposition: expected energy is bounded below by the
    /// error-free energy and above by (attempts × single-attempt energy +
    /// recovery/checkpoint terms) — a sanity envelope.
    #[test]
    fn energy_envelope(
        m in arb_model(),
        s1 in arb_speed(),
        s2 in arb_speed(),
        w in 100.0..20_000.0f64,
    ) {
        let e = m.expected_energy(w, s1, s2);
        let error_free = m.costs.checkpoint * m.power.io_power()
            + (w + m.costs.verification) / s1 * m.power.compute_power(s1);
        prop_assert!(e >= error_free * (1.0 - 1e-12));
    }

    /// Simulator determinism: same seed, same outcome — across random
    /// configurations.
    #[test]
    fn simulator_is_deterministic(
        m in arb_model(),
        s1 in arb_speed(),
        s2 in arb_speed(),
        seed in any::<u64>(),
    ) {
        // Keep λW/σ2 bounded so patterns complete quickly.
        let w = (0.5 * s2 / m.lambda).clamp(10.0, 20_000.0);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let a = rexec::sim::simulate_pattern(&cfg, &mut SimRng::new(seed));
        let b = rexec::sim::simulate_pattern(&cfg, &mut SimRng::new(seed));
        prop_assert_eq!(a, b);
        prop_assert!(a.time > 0.0 && a.energy >= 0.0 && a.attempts >= 1);
    }

    /// Multi-verification patterns: q = 1 equals Propositions 2–3 for any
    /// parameters, and the optimal-q solution never loses to q = 1.
    #[test]
    fn multiverif_q1_identity_and_dominance(
        m in arb_model(),
        s1 in arb_speed(),
        s2 in arb_speed(),
        w in 100.0..20_000.0f64,
    ) {
        use rexec::core::multiverif;
        let t1 = multiverif::expected_time(&m, w, 1, s1, s2);
        let tp = m.expected_time(w, s1, s2);
        prop_assert!((t1 - tp).abs() <= 1e-9 * tp);
        let e1 = multiverif::expected_energy(&m, w, 1, s1, s2);
        let ep = m.expected_energy(w, s1, s2);
        prop_assert!((e1 - ep).abs() <= 1e-9 * ep);
        let rho = rexec::core::theorem1::rho_min(&m, s1, s2) * 2.0;
        if let Some(best) = multiverif::optimize_pair(&m, s1, s2, rho, 4) {
            prop_assert!(best.time_overhead <= rho * (1.0 + 1e-9));
            if let Some(q1) = rexec::core::numeric::minimize_with_bound(
                |w| multiverif::energy_overhead(&m, w, 1, s1, s2),
                |w| multiverif::time_overhead(&m, w, 1, s1, s2),
                rho,
                rexec::core::numeric::W_MIN,
                rexec::core::numeric::W_MAX,
            ) {
                prop_assert!(best.energy_overhead <= q1.objective * (1.0 + 1e-9));
            }
        }
    }

    /// The Pareto frontier is non-dominated and brackets the solver's
    /// answer for any bound inside its range.
    #[test]
    fn pareto_frontier_is_consistent_with_solver(
        m in arb_model(),
        rho_probe in 2.0..6.0f64,
    ) {
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let solver = BiCritSolver::new(m, speeds);
        let frontier = ParetoFrontier::compute(&solver, 10.0, 60);
        prop_assert!(frontier.is_non_dominated());
        if let Some(sol) = solver.solve(rho_probe) {
            // The frontier's best energy at time ≤ ρ matches the solver
            // within the sweep resolution.
            let best_on_frontier = frontier
                .points
                .iter()
                .filter(|p| p.time_overhead <= rho_probe)
                .map(|p| p.energy_overhead)
                .fold(f64::INFINITY, f64::min);
            if best_on_frontier.is_finite() {
                prop_assert!(
                    sol.energy_overhead <= best_on_frontier * (1.0 + 1e-9),
                    "solver {} vs frontier {}", sol.energy_overhead, best_on_frontier
                );
            }
        }
    }

    /// Execution plans scale linearly in Wbase and report consistent
    /// derived quantities, for any feasible random model.
    #[test]
    fn execution_plan_invariants(
        m in arb_model(),
        w_base in 1e5..1e9f64,
    ) {
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        let solver = BiCritSolver::new(m, speeds);
        if let Some(plan) = ExecutionPlan::solve(&solver, 4.0, w_base) {
            prop_assert!(plan.expected_makespan > 0.0);
            prop_assert!(plan.expected_energy > 0.0);
            prop_assert!(plan.slowdown() >= 1.0 / 1.0001);
            prop_assert!(plan.average_power() >= m.power.p_idle * 0.999);
            let double = ExecutionPlan::solve(&solver, 4.0, 2.0 * w_base).unwrap();
            prop_assert!((double.expected_energy / plan.expected_energy - 2.0).abs() < 1e-9);
        }
    }

    /// Histogram quantiles are monotone and bracketed by the extremes.
    #[test]
    fn histogram_quantiles_are_monotone(
        values in proptest::collection::vec(1e-2..1e6f64, 10..500),
    ) {
        use rexec::sim::Histogram;
        let mut h = Histogram::with_default_resolution();
        for &v in &values {
            h.record(v);
        }
        let mut last = h.quantile(0.0).unwrap();
        for i in 1..=20 {
            let q = h.quantile(i as f64 / 20.0).unwrap();
            prop_assert!(q >= last - 1e-12, "quantiles must be monotone");
            last = q;
        }
        prop_assert_eq!(h.quantile(0.0).unwrap(), h.min());
        prop_assert_eq!(h.quantile(1.0).unwrap(), h.max());
    }
}
