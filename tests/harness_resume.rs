//! Crash-recovery guarantees of the experiments pipeline: an injected
//! kill followed by `--resume` must reproduce the uninterrupted run
//! byte-for-byte, a silently corrupted sealed artifact must be detected
//! by digest re-verification and recomputed (and only it), and
//! transient write failures must be absorbed by the retry policy.

use rexec_harness::{FaultPlan, HarnessError, RetryPolicy};
use rexec_sweep::experiments::{quick_experiment_ids, DEFAULT_SEED};
use rexec_sweep::pipeline::{run, PipelineConfig, UnitOutcome};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rexec-resume-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick_config(out_dir: PathBuf) -> PipelineConfig {
    PipelineConfig {
        out_dir,
        seed: DEFAULT_SEED,
        resume: false,
        ids: quick_experiment_ids(),
        fault: FaultPlan::default(),
        retry: RetryPolicy::immediate(3),
        ..PipelineConfig::default()
    }
}

/// Every deterministic artifact (CSV datasets + rendered reports) in
/// `dir`, by file name. `manifest.json` and `metrics.json` are excluded:
/// they carry wall-clock timings.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read artifact dir") {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if name.ends_with(".csv") || name.ends_with(".txt") {
            out.insert(name, fs::read(entry.path()).unwrap());
        }
    }
    out
}

fn assert_identical_artifacts(a: &Path, b: &Path) {
    let (fa, fb) = (artifacts(a), artifacts(b));
    assert!(!fa.is_empty(), "baseline run produced no artifacts");
    assert_eq!(
        fa.keys().collect::<Vec<_>>(),
        fb.keys().collect::<Vec<_>>(),
        "artifact sets differ"
    );
    for (name, bytes) in &fa {
        assert_eq!(
            bytes, &fb[name],
            "artifact {name} differs between the two runs"
        );
    }
}

#[test]
fn kill_then_resume_matches_uninterrupted_run() {
    let clean = fresh_dir("kill-clean");
    let faulty = fresh_dir("kill-faulty");
    run(&quick_config(clean.clone())).expect("uninterrupted run");

    // Killed after the 2nd unit: typed error, exit code 137, and a
    // manifest that seals exactly the completed prefix.
    let mut cfg = quick_config(faulty.clone());
    cfg.fault = FaultPlan::parse("kill-after-unit=2").unwrap();
    let err = run(&cfg).expect_err("fault plan must kill the run");
    assert!(
        matches!(err, HarnessError::KilledByFaultPlan { after_unit: 2 }),
        "unexpected error: {err:?}"
    );
    assert_eq!(err.exit_code(), 137);
    assert!(faulty.join("manifest.json").exists());
    assert!(
        !faulty.join("metrics.json").exists(),
        "a killed run must not claim completion"
    );

    // Resume: the sealed prefix is re-verified and skipped, the rest is
    // recomputed, and the result is byte-identical to the clean run.
    cfg.fault = FaultPlan::default();
    cfg.resume = true;
    let summary = run(&cfg).expect("resumed run");
    let outcomes: Vec<&UnitOutcome> = summary.units.iter().map(|(_, o)| o).collect();
    assert_eq!(outcomes[0], &UnitOutcome::SkippedVerified);
    assert_eq!(outcomes[1], &UnitOutcome::SkippedVerified);
    for o in &outcomes[2..] {
        assert!(
            matches!(o, UnitOutcome::Recomputed(r) if r.contains("not previously sealed")),
            "units after the kill point must be recomputed, got {o:?}"
        );
    }
    assert!(faulty.join("metrics.json").exists());
    assert_identical_artifacts(&clean, &faulty);

    let _ = fs::remove_dir_all(&clean);
    let _ = fs::remove_dir_all(&faulty);
}

#[test]
fn corrupted_sealed_artifact_is_flagged_and_recomputed() {
    let clean = fresh_dir("corrupt-clean");
    let faulty = fresh_dir("corrupt-faulty");
    run(&quick_config(clean.clone())).expect("uninterrupted run");

    // In the quick set the 4th sealed artifact is F4's CSV dataset
    // (artifacts 1-3 are the T-rho8 / T-rho3 / X-validity reports).
    // The injector flips one byte on disk; the manifest keeps the
    // intended digest, so this models silent corruption.
    let mut cfg = quick_config(faulty.clone());
    cfg.fault = FaultPlan::parse("corrupt-artifact=4,seed=11").unwrap();
    run(&cfg).expect("corrupting run still completes");

    let f4_key = "F4";
    let corrupted: Vec<String> = artifacts(&faulty)
        .into_iter()
        .filter(|(name, bytes)| artifacts(&clean).get(name) != Some(bytes))
        .map(|(name, _)| name)
        .collect();
    assert_eq!(corrupted.len(), 1, "exactly one artifact must be corrupt");
    assert!(
        corrupted[0].starts_with("fig4_") && corrupted[0].ends_with(".csv"),
        "expected F4's CSV to be the corrupted artifact, got {corrupted:?}"
    );

    // Resume re-verifies every digest: only F4 fails and is recomputed.
    cfg.fault = FaultPlan::default();
    cfg.resume = true;
    let summary = run(&cfg).expect("resumed run");
    for (id, outcome) in &summary.units {
        if id == f4_key {
            assert!(
                matches!(outcome, UnitOutcome::Recomputed(r) if r.contains("digest mismatch")),
                "corrupt unit must be flagged by digest, got {outcome:?}"
            );
        } else {
            assert_eq!(
                outcome,
                &UnitOutcome::SkippedVerified,
                "intact unit {id} must be skipped"
            );
        }
    }
    assert_identical_artifacts(&clean, &faulty);

    let _ = fs::remove_dir_all(&clean);
    let _ = fs::remove_dir_all(&faulty);
}

#[test]
fn transient_write_failure_is_retried_to_success() {
    let clean = fresh_dir("retry-clean");
    let flaky = fresh_dir("retry-flaky");
    run(&quick_config(clean.clone())).expect("uninterrupted run");

    // The 2nd write attempt fails once; the retry policy re-issues it
    // and the run completes with identical outputs.
    let mut cfg = quick_config(flaky.clone());
    cfg.fault = FaultPlan::parse("fail-write=2").unwrap();
    run(&cfg).expect("retries must absorb a single transient failure");
    assert_identical_artifacts(&clean, &flaky);

    let _ = fs::remove_dir_all(&clean);
    let _ = fs::remove_dir_all(&flaky);
}
