//! Byte-identity of every figure/heatmap/table artifact between serial
//! (`RAYON_NUM_THREADS=1`) and parallel evaluation: the sweep engine
//! parallelizes across grid points and heatmap rows but collects in index
//! order, so rendered CSVs and tables must not change by a single byte
//! when the thread count does.
//!
//! Everything lives in a single `#[test]` because the scenarios mutate
//! the process-global `RAYON_NUM_THREADS`, which must not race with a
//! concurrently running sibling test (mirrors `tests/obs_determinism.rs`).

use rexec::sweep::figure::{lambda_hi_for, sweep_figure, SweepParam};
use rexec::sweep::series::to_csv;
use rexec::sweep::table_rho::{rho_table, PAPER_RHOS};
use rexec::sweep::{Grid, Heatmap};
use rexec_platforms::{all_configurations, Configuration};

/// Renders every sweep artifact under the given thread count.
fn artifacts(threads: &str) -> Vec<(String, String)> {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let mut out: Vec<(String, String)> = vec![];

    // Every figure sweep: 8 configurations × 6 parameters (small grids so
    // the suite stays fast; the chunking logic is identical at any size).
    for cfg in all_configurations() {
        let lambda_hi = lambda_hi_for(&cfg);
        for param in SweepParam::ALL {
            let grid = match param {
                SweepParam::Lambda => Grid::log(1e-6, lambda_hi, 9),
                SweepParam::Rho => Grid::linear(1.0, 3.5, 9),
                _ => Grid::linear(0.0, 5000.0, 9),
            };
            let series = sweep_figure(&cfg, param, &grid);
            out.push((format!("figure {} {param}", cfg.name()), to_csv(&series)));
        }
    }

    // A λ × ρ heatmap.
    let hera = hera_xscale();
    let map = Heatmap::compute(
        &hera,
        &Grid::log(1e-6, 2e-3, 11),
        &Grid::linear(1.1, 8.0, 13),
    );
    out.push(("heatmap Hera/XScale".to_string(), map.to_csv()));
    out.push(("heatmap pair map".to_string(), map.render_pair_map()));

    // The §4.2 tables at every paper bound.
    for rho in PAPER_RHOS {
        out.push((format!("table rho={rho}"), rho_table(&hera, rho).render()));
    }

    out
}

fn hera_xscale() -> Configuration {
    use rexec_platforms::{configuration, ConfigId, PlatformId, ProcessorId};
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
}

#[test]
fn sweep_artifacts_are_byte_identical_across_thread_counts() {
    let serial = artifacts("1");
    assert!(serial.len() > 50, "expected the full artifact set");
    for threads in ["2", "4", "13"] {
        let parallel = artifacts(threads);
        assert_eq!(serial.len(), parallel.len());
        for ((name_s, bytes_s), (name_p, bytes_p)) in serial.iter().zip(&parallel) {
            assert_eq!(name_s, name_p);
            assert_eq!(
                bytes_s, bytes_p,
                "{name_s}: output differs between 1 and {threads} threads"
            );
        }
    }
}
