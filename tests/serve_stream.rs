//! End-to-end pins for the planning service (`rexec-serve`):
//!
//! * **stream determinism** — a fixed single-connection query stream
//!   must produce a byte-identical response stream regardless of the
//!   batch window, batch size, worker-thread count, plan-cache state
//!   (cold, warm, or disabled) — answers are pure functions of the
//!   query, never of batch shape or cache residency;
//! * **graceful shutdown** — requests accepted before and during the
//!   drain are all answered, and the listener refuses new connections
//!   once the server has exited;
//! * **typed wire errors** — malformed or invalid requests come back as
//!   `{"err": ...}` responses with stable kinds, and the connection
//!   stays fully usable afterwards;
//! * **cache transparency** — a proptest that a cache-enabled service
//!   and a cache-disabled service render identical response lines for
//!   random valid query streams.

use proptest::prelude::*;
use rexec_serve::{PlanService, ServeOptions, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Starts an in-process server on an ephemeral port.
fn start(batch_window_us: u64, batch_max: usize, workers: usize, cache: usize) -> Server {
    Server::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers,
        batch_max,
        batch_window_us,
        service: ServiceConfig {
            plan_cache_capacity: cache,
            ..ServiceConfig::default()
        },
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port")
}

/// Sends `lines` over one connection, half-closes, and returns the raw
/// response bytes until EOF.
fn roundtrip(server: &Server, lines: &str) -> Vec<u8> {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).ok();
    let mut read_half = stream.try_clone().expect("clone stream");
    let mut write_half = stream;
    write_half.write_all(lines.as_bytes()).expect("send");
    write_half
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = Vec::new();
    read_half
        .read_to_end(&mut response)
        .expect("read responses");
    response
}

/// xorshift64* — the loadgen's deterministic stream generator.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// A mixed query stream: hot ρ pool plus fresh ρ values over the paper
/// tables, a custom-parameter table, and a sprinkling of invalid
/// requests (whose error responses are part of the determinism pin).
fn fixed_stream(n: u64) -> String {
    const PLATFORMS: [&str; 4] = ["hera", "atlas", "coastal", "coastal-ssd"];
    const PROCESSORS: [&str; 2] = ["xscale", "crusoe"];
    let mut rng = 0xDEC0DE_u64;
    let mut out = String::new();
    for id in 0..n {
        let r = next_rand(&mut rng);
        match r % 20 {
            // Occasional invalid requests: the error lines must be as
            // deterministic as the plans.
            17 => out.push_str(&format!("{{\"id\":{id},\"lambda\":-1}}\n")),
            18 => out.push_str(&format!("{{\"id\":{id},\"platform\":\"nonesuch\"}}\n")),
            19 => out.push_str(&format!("{{\"id\":{id},\"rho\":2.5}}\n")),
            // A custom table with an explicit speed ladder.
            16 => out.push_str(&format!(
                "{{\"id\":{id},\"lambda\":1e-5,\"checkpoint\":600,\"verification\":30,\
                 \"kappa\":2000,\"pidle\":50,\"speeds\":[0.25,0.5,0.75,1.0],\"rho\":{}}}\n",
                2.0 + (r >> 16) as f64 % 4.0
            )),
            table => {
                let platform = PLATFORMS[(table % 4) as usize];
                let processor = PROCESSORS[(table / 8) as usize];
                let rho = if (r >> 8) % 10 < 9 {
                    1.5 + 0.125 * ((r >> 16) % 16) as f64
                } else {
                    4.0 + id as f64 * 1e-4
                };
                out.push_str(&format!(
                    "{{\"id\":{id},\"platform\":\"{platform}\",\
                     \"processor\":\"{processor}\",\"rho\":{rho}}}\n"
                ));
            }
        }
    }
    out
}

#[test]
fn response_stream_is_byte_identical_across_server_shapes() {
    let stream = fixed_stream(1500);

    // Reference shape: no batching at all, one worker, cold cache.
    let server = start(0, 1, 1, 65536);
    let reference = roundtrip(&server, &stream);
    server.shutdown();
    server.join();
    assert_eq!(
        reference.iter().filter(|&&b| b == b'\n').count(),
        1500,
        "every request line gets exactly one response line"
    );

    // Wide batches, many workers; plus cache disabled; plus a tiny
    // cache under eviction pressure. All must match byte for byte.
    for (window, batch_max, workers, cache) in
        [(5000, 512, 4, 65536), (200, 128, 2, 0), (1000, 64, 3, 8)]
    {
        let server = start(window, batch_max, workers, cache);
        let got = roundtrip(&server, &stream);
        let report = {
            server.shutdown();
            server.join()
        };
        assert_eq!(
            got, reference,
            "stream diverged at window={window}us batch={batch_max} \
             workers={workers} cache={cache}"
        );
        assert_eq!(report.requests, 1500);
        assert_eq!(report.responses, 1500);
    }

    // Warm cache: the same server answering the stream twice must give
    // the same bytes both times (hits replay the solved plan exactly).
    let server = start(200, 128, 2, 65536);
    let cold = roundtrip(&server, &stream);
    let warm = roundtrip(&server, &stream);
    let report = {
        server.shutdown();
        server.join()
    };
    assert_eq!(cold, reference);
    assert_eq!(warm, reference, "warm-cache stream diverged from cold");
    assert!(
        report.cache.hits > 1000,
        "second pass should be answered mostly from cache (hits = {})",
        report.cache.hits
    );
}

#[test]
fn graceful_shutdown_answers_everything_then_refuses_connections() {
    let server = start(200, 128, 2, 65536);
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut read_half = stream.try_clone().expect("clone stream");
    let mut write_half = stream;
    let request = |id: usize| {
        format!("{{\"id\":{id},\"platform\":\"hera\",\"processor\":\"xscale\",\"rho\":3}}\n")
    };

    // Prove the connection has been accepted (first answer arrives)
    // before requesting shutdown — otherwise the drain could race the
    // accept loop and legitimately never see this socket.
    write_half.write_all(request(0).as_bytes()).expect("send");
    write_half.flush().expect("flush");
    let mut reader = BufReader::new(&mut read_half);
    let mut first = String::new();
    reader.read_line(&mut first).expect("first response");
    assert!(first.starts_with("{\"id\":0,"), "unexpected: {first}");

    // Half the remaining queries land before the shutdown request, half
    // after: the drain must answer both (the connection was accepted,
    // so every line read off it gets a response until EOF).
    for id in 1..400 {
        write_half.write_all(request(id).as_bytes()).expect("send");
    }
    write_half.flush().expect("flush");
    server.shutdown();
    for id in 400..800 {
        write_half.write_all(request(id).as_bytes()).expect("send");
    }
    write_half
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    let mut responses = Vec::new();
    reader.read_to_end(&mut responses).expect("drain");
    assert_eq!(
        responses.iter().filter(|&&b| b == b'\n').count(),
        799,
        "every in-flight request must be answered during the drain"
    );
    // Responses arrive in request order: ids echo back 1..800.
    for (k, line) in responses.split(|&b| b == b'\n').take(799).enumerate() {
        let prefix = format!("{{\"id\":{},", k + 1);
        assert!(
            line.starts_with(prefix.as_bytes()),
            "response {} out of order: {}",
            k + 1,
            String::from_utf8_lossy(line)
        );
    }

    let report = server.join();
    assert_eq!(report.requests, 800);
    assert_eq!(report.responses, 800);
    assert_eq!(report.errors, 0);
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after join()"
    );
}

#[test]
fn typed_errors_keep_the_connection_usable() {
    let server = start(200, 128, 2, 65536);
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut write_half = stream;
    let mut ask = |line: &str| -> String {
        write_half.write_all(line.as_bytes()).expect("send");
        write_half.write_all(b"\n").expect("send newline");
        write_half.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("one response line");
        response
    };

    // Each bad request gets a typed error naming the failure...
    for (request, kind) in [
        ("{\"id\":1,\"platform\":\"hera\",", "parse"),
        ("[1,2,3]", "bad_request"),
        ("{\"id\":2,\"bogus\":1}", "unknown_field"),
        ("{\"id\":3,\"lambda\":-4}", "invalid_value"),
        ("{\"id\":4,\"platform\":\"nonesuch\"}", "unknown_name"),
        ("{\"id\":5,\"lambda\":1e-5}", "underspecified"),
    ] {
        let response = ask(request);
        assert!(
            response.contains(&format!("\"err\":{{\"kind\":\"{kind}\"")),
            "expected `{kind}` error for {request}, got: {response}"
        );
    }

    // ...and the connection still answers real queries afterwards.
    let response = ask("{\"id\":6,\"platform\":\"hera\",\"processor\":\"xscale\",\"rho\":3}");
    assert!(
        response.starts_with("{\"id\":6,\"digest\":\"fnv1a:") && response.contains("\"wopt\":"),
        "connection unusable after errors: {response}"
    );

    write_half
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    server.shutdown();
    let report = server.join();
    assert_eq!(report.responses, 7);
    assert_eq!(report.errors, 6);
}

/// Renders a full answer stream through the transport-free service.
fn answer_lines(service: &PlanService, queries: &[(usize, f64)]) -> Vec<String> {
    const PLATFORMS: [&str; 4] = ["hera", "atlas", "coastal", "coastal-ssd"];
    const PROCESSORS: [&str; 2] = ["xscale", "crusoe"];
    queries
        .iter()
        .enumerate()
        .map(|(id, &(table, rho))| {
            let spec = rexec_serve::PlanSpec {
                platform: Some(PLATFORMS[table % 4].to_string()),
                processor: Some(PROCESSORS[table / 4].to_string()),
                rho: Some(rho),
                ..rexec_serve::PlanSpec::default()
            };
            let mut line = String::new();
            match service.plan_spec(&spec) {
                Ok(answer) => {
                    rexec_serve::render_answer(&mut line, Some(id as u64), &answer);
                }
                Err(e) => rexec_serve::render_error(
                    &mut line,
                    Some(id as u64),
                    &rexec_serve::wire::wire_error_from_spec(&e),
                ),
            }
            line
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The plan cache is semantically invisible: for any valid query
    /// stream (repeated ρ values included, so hits actually occur), a
    /// cache-enabled service and a cache-disabled one render identical
    /// response lines — even with a tiny cache forcing evictions.
    #[test]
    fn cache_on_and_cache_off_render_identical_streams(
        queries in proptest::collection::vec(
            (0usize..8, 0u32..100, 11u32..80, 1.05f64..12.0).prop_map(
                // 60% from a coarse ρ grid (collides across the stream:
                // cache hits), the rest from a continuous range (mostly
                // fresh: cache misses).
                |(table, pick, grid, fresh)| {
                    let rho = if pick < 60 { f64::from(grid) / 10.0 } else { fresh };
                    (table, rho)
                },
            ),
            1..120,
        )
    ) {
        let cached = PlanService::new(ServiceConfig::default());
        let tiny = PlanService::new(ServiceConfig {
            plan_cache_capacity: 4,
            plan_cache_shards: 1,
            ..ServiceConfig::default()
        });
        let uncached = PlanService::new(ServiceConfig {
            plan_cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let reference = answer_lines(&uncached, &queries);
        prop_assert_eq!(&answer_lines(&cached, &queries), &reference);
        prop_assert_eq!(&answer_lines(&tiny, &queries), &reference);
        // Replaying the same stream against the now-warm cache must
        // still give the same bytes.
        prop_assert_eq!(&answer_lines(&cached, &queries), &reference);
    }
}
