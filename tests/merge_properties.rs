//! Property tests of the shard-merge algebra behind the parallel sweep
//! and Monte Carlo reductions: merging per-shard `Stats` / `Histogram`
//! aggregates must equal a single pass over the concatenated data, for
//! *any* partition. This is the invariant that makes the parallel
//! reductions thread-count independent.

use proptest::prelude::*;
use rexec::obs::Shard;
use rexec::sim::{Histogram, Stats};

/// Positive, finite sample values in a range the default histogram
/// resolution covers comfortably.
fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-3..1e6f64, 1..300)
}

/// Splits `values` at `cut` (scaled into range) into two shards.
fn split(values: &[f64], cut: usize) -> (&[f64], &[f64]) {
    values.split_at(cut % (values.len() + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Stats::merge` of two shards equals one pass over the
    /// concatenation: counts and extremes exactly, moments to float
    /// tolerance (Chan et al.'s pairwise update reorders the additions).
    #[test]
    fn stats_merge_of_shards_equals_single_pass(
        values in arb_values(),
        cut in 0usize..301,
    ) {
        let (left, right) = split(&values, cut);
        let mut a = Stats::new();
        left.iter().for_each(|&v| a.push(v));
        let mut b = Stats::new();
        right.iter().for_each(|&v| b.push(v));
        a.merge(&b);

        let mut all = Stats::new();
        values.iter().for_each(|&v| all.push(v));

        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
        let mean_tol = 1e-12 * all.mean().abs().max(1.0);
        prop_assert!(
            (a.mean() - all.mean()).abs() <= mean_tol,
            "mean {} vs {}", a.mean(), all.mean()
        );
        if all.count() >= 2 {
            let var_tol = 1e-9 * all.variance().abs().max(1e-12);
            prop_assert!(
                (a.variance() - all.variance()).abs() <= var_tol,
                "variance {} vs {}", a.variance(), all.variance()
            );
        }
    }

    /// Merging any k-shard partition in order equals the single pass —
    /// the shape of the reduction tree must not matter for counts.
    #[test]
    fn stats_merge_is_partition_independent(
        values in arb_values(),
        shards in 1usize..8,
    ) {
        let chunk = values.len().div_ceil(shards);
        let mut merged = Stats::new();
        for c in values.chunks(chunk) {
            let mut s = Stats::new();
            c.iter().for_each(|&v| s.push(v));
            merged.merge(&s);
        }
        let mut all = Stats::new();
        values.iter().for_each(|&v| all.push(v));
        prop_assert_eq!(merged.count(), all.count());
        prop_assert_eq!(merged.min(), all.min());
        prop_assert_eq!(merged.max(), all.max());
        prop_assert!((merged.mean() - all.mean()).abs() <= 1e-12 * all.mean().abs().max(1.0));
    }

    /// `Histogram::merge` is *exact*: bucket counts are integers, so a
    /// merge of shards equals single-pass recording bit-for-bit — counts,
    /// extremes and every quantile.
    #[test]
    fn histogram_merge_of_shards_equals_single_pass(
        values in arb_values(),
        cut in 0usize..301,
    ) {
        let (left, right) = split(&values, cut);
        let mut a = Histogram::with_default_resolution();
        left.iter().for_each(|&v| a.record(v));
        let mut b = Histogram::with_default_resolution();
        right.iter().for_each(|&v| b.record(v));
        a.merge(&b);

        let mut all = Histogram::with_default_resolution();
        values.iter().for_each(|&v| all.record(v));

        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), all.quantile(q), "q = {}", q);
        }
    }
}

/// Builds an obs `Shard` from (counter-increment, sketch-sample) events.
/// Uses a handful of metric names so merges exercise both the
/// same-key-addition path and the disjoint-key-insertion path.
fn shard_from(events: &[(u32, f64)]) -> Shard {
    let mut s = Shard::new();
    for &(tag, v) in events {
        match tag % 4 {
            0 => s.incr("events.a", 1),
            1 => s.incr("events.b", (tag as u64) + 1),
            2 => s.record("lat.a", v),
            _ => s.record("lat.b", v),
        }
    }
    s
}

fn arb_events() -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((any::<u32>(), 1e-3..1e6f64), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Shard::merge` is commutative: counters are u64 addition over
    /// ordered maps and sketch buckets are exact integer counts, so
    /// `a ∪ b == b ∪ a` bit-for-bit — including every sketch quantile
    /// and the serialized JSON.
    #[test]
    fn shard_merge_is_commutative(
        xs in arb_events(),
        ys in arb_events(),
    ) {
        let ab = shard_from(&xs).merge(shard_from(&ys));
        let ba = shard_from(&ys).merge(shard_from(&xs));
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(
            serde_json::to_string(&ab).unwrap(),
            serde_json::to_string(&ba).unwrap()
        );
        for name in ["lat.a", "lat.b"] {
            match (ab.sketch(name), ba.sketch(name)) {
                (Some(l), Some(r)) => {
                    for q in [0.0, 0.5, 0.99, 1.0] {
                        prop_assert_eq!(l.quantile(q), r.quantile(q), "{} q={}", name, q);
                    }
                }
                (None, None) => {}
                _ => prop_assert!(false, "sketch {} present on one side only", name),
            }
        }
    }

    /// `Shard::merge` is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`, so
    /// the shape of a parallel reduction tree cannot change the
    /// aggregate.
    #[test]
    fn shard_merge_is_associative(
        xs in arb_events(),
        ys in arb_events(),
        zs in arb_events(),
    ) {
        let (a, b, c) = (shard_from(&xs), shard_from(&ys), shard_from(&zs));
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(
            serde_json::to_string(&left).unwrap(),
            serde_json::to_string(&right).unwrap()
        );
    }

    /// The empty shard is the merge identity on both sides.
    #[test]
    fn shard_merge_empty_identity(xs in arb_events()) {
        let s = shard_from(&xs);
        prop_assert_eq!(&s.clone().merge(Shard::new()), &s);
        prop_assert_eq!(&Shard::new().merge(s.clone()), &s);
    }
}
