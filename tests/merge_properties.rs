//! Property tests of the shard-merge algebra behind the parallel sweep
//! and Monte Carlo reductions: merging per-shard `Stats` / `Histogram`
//! aggregates must equal a single pass over the concatenated data, for
//! *any* partition. This is the invariant that makes the parallel
//! reductions thread-count independent.

use proptest::prelude::*;
use rexec::sim::{Histogram, Stats};

/// Positive, finite sample values in a range the default histogram
/// resolution covers comfortably.
fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-3..1e6f64, 1..300)
}

/// Splits `values` at `cut` (scaled into range) into two shards.
fn split(values: &[f64], cut: usize) -> (&[f64], &[f64]) {
    values.split_at(cut % (values.len() + 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Stats::merge` of two shards equals one pass over the
    /// concatenation: counts and extremes exactly, moments to float
    /// tolerance (Chan et al.'s pairwise update reorders the additions).
    #[test]
    fn stats_merge_of_shards_equals_single_pass(
        values in arb_values(),
        cut in 0usize..301,
    ) {
        let (left, right) = split(&values, cut);
        let mut a = Stats::new();
        left.iter().for_each(|&v| a.push(v));
        let mut b = Stats::new();
        right.iter().for_each(|&v| b.push(v));
        a.merge(&b);

        let mut all = Stats::new();
        values.iter().for_each(|&v| all.push(v));

        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
        let mean_tol = 1e-12 * all.mean().abs().max(1.0);
        prop_assert!(
            (a.mean() - all.mean()).abs() <= mean_tol,
            "mean {} vs {}", a.mean(), all.mean()
        );
        if all.count() >= 2 {
            let var_tol = 1e-9 * all.variance().abs().max(1e-12);
            prop_assert!(
                (a.variance() - all.variance()).abs() <= var_tol,
                "variance {} vs {}", a.variance(), all.variance()
            );
        }
    }

    /// Merging any k-shard partition in order equals the single pass —
    /// the shape of the reduction tree must not matter for counts.
    #[test]
    fn stats_merge_is_partition_independent(
        values in arb_values(),
        shards in 1usize..8,
    ) {
        let chunk = values.len().div_ceil(shards);
        let mut merged = Stats::new();
        for c in values.chunks(chunk) {
            let mut s = Stats::new();
            c.iter().for_each(|&v| s.push(v));
            merged.merge(&s);
        }
        let mut all = Stats::new();
        values.iter().for_each(|&v| all.push(v));
        prop_assert_eq!(merged.count(), all.count());
        prop_assert_eq!(merged.min(), all.min());
        prop_assert_eq!(merged.max(), all.max());
        prop_assert!((merged.mean() - all.mean()).abs() <= 1e-12 * all.mean().abs().max(1.0));
    }

    /// `Histogram::merge` is *exact*: bucket counts are integers, so a
    /// merge of shards equals single-pass recording bit-for-bit — counts,
    /// extremes and every quantile.
    #[test]
    fn histogram_merge_of_shards_equals_single_pass(
        values in arb_values(),
        cut in 0usize..301,
    ) {
        let (left, right) = split(&values, cut);
        let mut a = Histogram::with_default_resolution();
        left.iter().for_each(|&v| a.record(v));
        let mut b = Histogram::with_default_resolution();
        right.iter().for_each(|&v| b.record(v));
        a.merge(&b);

        let mut all = Histogram::with_default_resolution();
        values.iter().for_each(|&v| all.record(v));

        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), all.quantile(q), "q = {}", q);
        }
    }
}
