//! Integration tests for the `rexec-check` crash-consistency model
//! checker (DESIGN.md §10): the exhaustive exploration is green on the
//! current writer, and the power-loss model demonstrably catches the
//! historical missing-parent-dir-fsync bug when the fix is disabled.

use rexec_check::{explore, CheckConfig};
use rexec_harness::CrashMode;

/// The ISSUE's headline acceptance: for a 4-unit run, every crash prefix
/// in both modes and every single-byte corruption of every sealed
/// artifact resumes to a byte-identical tree with no sealed work lost —
/// hundreds of explored states, all consistent.
#[test]
fn four_unit_exhaustive_exploration_is_green() {
    let report = explore(&CheckConfig::default());
    assert_eq!(report.units, 4);
    assert!(
        report.states_explored() >= 400,
        "expected hundreds of states, explored {}",
        report.states_explored()
    );
    assert!(report.crash_states >= 100);
    assert!(report.corruption_states >= 300);
    assert!(
        report.ok(),
        "crash-consistency violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Regression probe for the durability fix: with the parent-directory
/// fsync removed (the pre-fix writer), power loss rolls back the rename
/// of sealed artifacts and manifests, so checkpointed units come back as
/// recomputed — the model checker must catch that as lost sealed work.
#[test]
fn power_loss_without_dir_fsync_is_caught() {
    let report = explore(&CheckConfig {
        units: 4,
        dir_sync: false,
        modes: vec![CrashMode::PowerLoss],
        corruption: false,
    });
    assert!(
        !report.ok(),
        "removing the dir fsync must violate the durability invariant"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.detail.contains("lost sealed work")),
        "violations must name the lost sealed work: {:?}",
        report.violations.first()
    );
    // Process kill alone cannot catch it: the page cache survives, so
    // the gap is invisible without the power-loss model.
    let kill_only = explore(&CheckConfig {
        units: 4,
        dir_sync: false,
        modes: vec![CrashMode::ProcessKill],
        corruption: false,
    });
    assert!(kill_only.ok(), "{:?}", kill_only.violations.first());
}

/// Every single-byte corruption of a sealed artifact must surface as a
/// digest mismatch and a recompute — spot-checked here on a small
/// fixture with the crash phase disabled (the full sweep runs in
/// `four_unit_exhaustive_exploration_is_green`).
#[test]
fn corruption_sweep_detects_every_flip() {
    let report = explore(&CheckConfig {
        units: 2,
        dir_sync: true,
        modes: vec![],
        corruption: true,
    });
    assert_eq!(report.crash_states, 0);
    assert!(report.corruption_states > 150);
    assert!(report.ok(), "{:?}", report.violations.first());
}
