//! Chrome trace-event export: a golden test pinning the exact bytes the
//! pure renderer produces for a hand-built timeline, and an end-to-end
//! run of the experiments pipeline with `--trace-chrome` whose exported
//! trace must pass the strict structural validator.
//!
//! The golden bytes are part of the exporter's contract: Perfetto and
//! `chrome://tracing` consume this format as-is, and downstream diffing
//! of traces relies on the serialization being byte-stable. Wall-clock
//! timestamps are obviously run-dependent, so the golden test feeds the
//! renderer a fixed event list; the pipeline test checks structure only.

use rexec::obs::{chrome_trace_from_events, validate_chrome_trace, TimelineEvent};
use rexec_harness::{FaultPlan, RetryPolicy};
use rexec_sweep::experiments::{quick_experiment_ids, DEFAULT_SEED};
use rexec_sweep::pipeline::{run, PipelineConfig};
use std::fs;

fn ev(name: &str, tid: u64, id: u64, parent: Option<u64>, range: (u64, u64)) -> TimelineEvent {
    TimelineEvent {
        name: name.to_string(),
        tid,
        id,
        parent,
        begin_ns: range.0,
        end_ns: range.1,
        seq: id,
    }
}

#[test]
fn golden_chrome_trace_bytes() {
    let events = vec![
        ev("pipeline.run", 0, 0, None, (0, 10_000)),
        ev("experiment.F4", 0, 1, Some(0), (1_000, 4_500)),
        ev("solver.solve", 1, 2, None, (2_000, 2_750)),
    ];
    let json = chrome_trace_from_events(&events, 3);

    let expected = r#"{
  "displayTimeUnit": "ms",
  "otherData": {
    "dropped_events": 3,
    "tool": "rexec-obs"
  },
  "traceEvents": [
    {
      "args": {
        "id": 0,
        "seq": 0
      },
      "cat": "span",
      "dur": 10,
      "name": "pipeline.run",
      "ph": "X",
      "pid": 1,
      "tid": 0,
      "ts": 0
    },
    {
      "args": {
        "id": 1,
        "parent": 0,
        "seq": 1
      },
      "cat": "span",
      "dur": 3.5,
      "name": "experiment.F4",
      "ph": "X",
      "pid": 1,
      "tid": 0,
      "ts": 1
    },
    {
      "args": {
        "id": 2,
        "seq": 2
      },
      "cat": "span",
      "dur": 0.75,
      "name": "solver.solve",
      "ph": "X",
      "pid": 1,
      "tid": 1,
      "ts": 2
    }
  ]
}"#;
    assert_eq!(
        json, expected,
        "chrome_trace_from_events must be byte-stable; \
         an intentional format change must update this golden"
    );
    assert_eq!(validate_chrome_trace(&json).unwrap(), 3);
}

#[test]
fn sub_microsecond_durations_keep_the_nanosecond_grid() {
    let json = chrome_trace_from_events(&[ev("tiny", 0, 0, None, (1, 1235))], 0);
    // 1 ns begin → ts 0.001 us; 1234 ns duration → 1.234 us.
    assert!(json.contains("\"ts\": 0.001"), "{json}");
    assert!(json.contains("\"dur\": 1.234"), "{json}");
    assert_eq!(validate_chrome_trace(&json).unwrap(), 1);
}

/// A full (quick) experiments-pipeline run with `trace_chrome` set must
/// write a trace that parses, validates structurally — every event a
/// well-formed "X" slice, parents on the same thread with containing
/// intervals — and covers the pipeline's own spans.
#[test]
fn experiments_pipeline_trace_validates() {
    let dir = std::env::temp_dir().join(format!("rexec-chrome-trace-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let trace_path = dir.join("trace.json");
    let cfg = PipelineConfig {
        out_dir: dir.clone(),
        seed: DEFAULT_SEED,
        resume: false,
        ids: quick_experiment_ids(),
        fault: FaultPlan::default(),
        retry: RetryPolicy::immediate(3),
        metrics_prom: None,
        trace_chrome: Some(trace_path.clone()),
    };
    run(&cfg).expect("quick pipeline run");

    let json = fs::read_to_string(&trace_path).expect("trace file written");
    let n = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(n > 0, "a pipeline run must record timeline events");
    assert!(
        json.contains("experiment."),
        "per-experiment spans should appear on the timeline"
    );

    let _ = fs::remove_dir_all(&dir);
}
