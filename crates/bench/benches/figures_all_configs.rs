//! Bench target for Figures 8–14: all six parameter sweeps for each of the
//! remaining seven platform/processor configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rexec_platforms::all_configurations;
use rexec_sweep::figure::{lambda_hi_for, sweep_figure_paper_grid, SweepParam};
use std::hint::black_box;

fn sweep_all_params(cfg: &rexec_platforms::Configuration) -> usize {
    let lambda_hi = lambda_hi_for(cfg);
    SweepParam::ALL
        .iter()
        .map(|&p| {
            let s = sweep_figure_paper_grid(cfg, p, lambda_hi);
            assert!(
                s.feasible_points() > 0,
                "{} {p}: no feasible point",
                cfg.name()
            );
            s.points.len()
        })
        .sum()
}

fn bench_all_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_8_to_14");
    group.sample_size(10);
    // Skip index 0 (Atlas/Crusoe), covered by the figures_atlas_crusoe bench.
    for (i, cfg) in all_configurations().into_iter().enumerate().skip(1) {
        let fig = 7 + i; // configs 1..=7 anchor Figures 8..=14
        group.bench_with_input(
            BenchmarkId::new(format!("figure_{fig}"), cfg.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| black_box(sweep_all_params(black_box(cfg))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_all_configs);
criterion_main!(benches);
