//! Bench target for Figures 2–7: the six Atlas/Crusoe parameter sweeps
//! (C, V, λ, ρ, Pidle, Pio) on the paper's grids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rexec_bench::atlas_crusoe;
use rexec_sweep::figure::{lambda_hi_for, sweep_figure_paper_grid, SweepParam};
use std::hint::black_box;

fn assert_figure_shapes() {
    let cfg = atlas_crusoe();
    // Figure 2 (C sweep): two speeds never lose to one, saving reaches >25 %.
    let s = sweep_figure_paper_grid(&cfg, SweepParam::Checkpoint, lambda_hi_for(&cfg));
    assert!(s.max_saving().unwrap() > 0.25, "Figure 2 headline saving");
    // Figure 5 (ρ sweep): infeasible at ρ = 1, feasible at 3.5.
    let s5 = sweep_figure_paper_grid(&cfg, SweepParam::Rho, lambda_hi_for(&cfg));
    assert!(s5.points.first().unwrap().two_speed.is_none());
    assert!(s5.points.last().unwrap().two_speed.is_some());
}

fn bench_figures(c: &mut Criterion) {
    assert_figure_shapes();
    let cfg = atlas_crusoe();
    let lambda_hi = lambda_hi_for(&cfg);
    let mut group = c.benchmark_group("figures_2_to_7_atlas_crusoe");
    for (fig, param) in (2u8..=7).zip(SweepParam::ALL) {
        group.bench_with_input(
            BenchmarkId::new(format!("figure_{fig}"), param.label()),
            &param,
            |b, &param| {
                b.iter(|| black_box(sweep_figure_paper_grid(black_box(&cfg), param, lambda_hi)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
