//! Bench target for the §4.2 tables (Hera/XScale at ρ = 8, 3, 1.775, 1.4).
//!
//! Regenerates each table and asserts the paper's values before timing, so
//! the bench fails loudly if the reproduction drifts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rexec_bench::hera_xscale;
use rexec_sweep::table_rho::{rho_table, PAPER_RHOS};
use std::hint::black_box;

fn assert_paper_values() {
    let cfg = hera_xscale();
    // ρ = 3: best is (0.4, 0.4), Wopt = 2764, E/W = 416.
    let t3 = rho_table(&cfg, 3.0);
    let best = t3.best().expect("rho = 3 feasible");
    let sol = best.best.unwrap();
    assert_eq!((best.sigma1, sol.sigma2), (0.4, 0.4));
    assert!((sol.w_opt - 2764.0).abs() < 1.0);
    assert!((sol.energy_overhead - 416.0).abs() < 1.0);
    // ρ = 1.775: best is (0.6, 0.8), Wopt = 4251, E/W = 690.
    let t = rho_table(&cfg, 1.775);
    let best = t.best().unwrap();
    let sol = best.best.unwrap();
    assert_eq!((best.sigma1, sol.sigma2), (0.6, 0.8));
    assert!((sol.w_opt - 4251.0).abs() < 1.0);
    assert!((sol.energy_overhead - 690.0).abs() < 1.0);
}

fn bench_tables(c: &mut Criterion) {
    assert_paper_values();
    let cfg = hera_xscale();
    let mut group = c.benchmark_group("tables_section_4_2");
    for rho in PAPER_RHOS {
        group.bench_with_input(BenchmarkId::new("rho_table", rho), &rho, |b, &rho| {
            b.iter(|| black_box(rho_table(black_box(&cfg), rho)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
