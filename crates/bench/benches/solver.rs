//! Solver micro-benchmarks: the O(K²) BiCrit procedure, Theorem 1 for a
//! single pair, and the exact numeric cross-check. Verifies the paper's
//! constant-time claim by scaling the synthetic speed-set size K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rexec_bench::{hera_xscale, synthetic_solver};
use rexec_core::{multiverif, numeric, theorem1, ExecutionPlan, ParetoFrontier};
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let cfg = hera_xscale();
    let solver = cfg.solver().unwrap();
    let model = *solver.model();

    let mut group = c.benchmark_group("solver");

    group.bench_function("theorem1_single_pair", |b| {
        b.iter(|| black_box(theorem1::optimal_pattern(black_box(&model), 0.4, 0.8, 3.0)));
    });

    group.bench_function("rho_min_single_pair", |b| {
        b.iter(|| black_box(theorem1::rho_min(black_box(&model), 0.4, 0.8)));
    });

    group.bench_function("bicrit_solve_paper_k5", |b| {
        b.iter(|| black_box(solver.solve(black_box(3.0))));
    });

    group.bench_function("bicrit_one_speed_baseline", |b| {
        b.iter(|| black_box(solver.solve_one_speed(black_box(3.0))));
    });

    group.bench_function("bicrit_per_sigma1_table", |b| {
        b.iter(|| black_box(solver.per_sigma1(black_box(3.0))));
    });

    // O(K²) scaling.
    for k in [5usize, 10, 20, 40, 80] {
        let s = synthetic_solver(k).unwrap();
        group.bench_with_input(BenchmarkId::new("bicrit_solve_scaling", k), &s, |b, s| {
            b.iter(|| black_box(s.solve(black_box(3.0))));
        });
    }

    // Exact numeric solve (golden section on Propositions 2–3) for one pair
    // and for the full K = 5 set.
    group.bench_function("exact_pair_optimum", |b| {
        b.iter(|| {
            black_box(numeric::exact_pair_optimum(
                black_box(&model),
                0.4,
                0.8,
                3.0,
            ))
        });
    });
    let speeds = solver.speeds().clone();
    group.bench_function("exact_bicrit_solve_k5", |b| {
        b.iter(|| black_box(numeric::exact_bicrit_solve(black_box(&model), &speeds, 3.0)));
    });

    // Application-level planning and the Pareto frontier.
    group.bench_function("execution_plan", |b| {
        b.iter(|| black_box(ExecutionPlan::solve(black_box(&solver), 3.0, 1e8)));
    });
    group.bench_function("pareto_frontier_100", |b| {
        b.iter(|| black_box(ParetoFrontier::compute(black_box(&solver), 10.0, 100)));
    });

    // Multi-verification extension (numeric inner optimization, q ≤ 4).
    group.bench_function("multiverif_optimize_pair_qmax4", |b| {
        b.iter(|| {
            black_box(multiverif::optimize_pair(
                black_box(&model),
                0.4,
                0.4,
                3.0,
                4,
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
