//! Solver micro-benchmarks: the O(K²) BiCrit procedure, Theorem 1 for a
//! single pair, and the exact numeric cross-check. Verifies the paper's
//! constant-time claim by scaling the synthetic speed-set size K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rexec_bench::{hera_xscale, synthetic_solver};
use rexec_core::{multiverif, numeric, theorem1, ExecutionPlan, ParetoFrontier};
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let cfg = hera_xscale();
    let solver = cfg.solver().unwrap();
    let model = *solver.model();

    let mut group = c.benchmark_group("solver");

    group.bench_function("theorem1_single_pair", |b| {
        b.iter(|| black_box(theorem1::optimal_pattern(black_box(&model), 0.4, 0.8, 3.0)));
    });

    group.bench_function("rho_min_single_pair", |b| {
        b.iter(|| black_box(theorem1::rho_min(black_box(&model), 0.4, 0.8)));
    });

    group.bench_function("bicrit_solve_paper_k5", |b| {
        b.iter(|| black_box(solver.solve(black_box(3.0))));
    });

    group.bench_function("bicrit_one_speed_baseline", |b| {
        b.iter(|| black_box(solver.solve_one_speed(black_box(3.0))));
    });

    group.bench_function("bicrit_per_sigma1_table", |b| {
        b.iter(|| black_box(solver.per_sigma1(black_box(3.0))));
    });

    // Per-point vs batched over the paper's ρ sweep grid (51 points in
    // [1.0, 3.5]): `solve_many` must beat a loop of `solve` calls by
    // amortizing the span and counter bookkeeping across the batch.
    let rhos: Vec<f64> = (0..51).map(|i| 1.0 + 2.5 * i as f64 / 50.0).collect();
    group.bench_function("bicrit_solve_per_point_p51", |b| {
        b.iter(|| {
            let feasible = rhos
                .iter()
                .filter(|&&rho| solver.solve(black_box(rho)).is_some())
                .count();
            black_box(feasible)
        });
    });
    group.bench_function("bicrit_solve_many_p51", |b| {
        b.iter(|| black_box(solver.solve_many(black_box(&rhos))));
    });
    group.bench_function("bicrit_solve_one_speed_many_p51", |b| {
        b.iter(|| black_box(solver.solve_one_speed_many(black_box(&rhos))));
    });

    // Candidate-table construction (paid once per solver, amortized over
    // every subsequent solve).
    group.bench_function("bicrit_table_build_k5", |b| {
        let speeds = solver.speeds().clone();
        b.iter(|| {
            black_box(rexec_core::BiCritSolver::new(
                black_box(model),
                speeds.clone(),
            ))
        });
    });

    // O(K²) scaling.
    for k in [5usize, 10, 20, 40, 80] {
        let s = synthetic_solver(k).unwrap();
        group.bench_with_input(BenchmarkId::new("bicrit_solve_scaling", k), &s, |b, s| {
            b.iter(|| black_box(s.solve(black_box(3.0))));
        });
    }

    // Exact numeric solve (golden section on Propositions 2–3) for one pair
    // and for the full K = 5 set.
    group.bench_function("exact_pair_optimum", |b| {
        b.iter(|| {
            black_box(numeric::exact_pair_optimum(
                black_box(&model),
                0.4,
                0.8,
                3.0,
            ))
        });
    });
    let speeds = solver.speeds().clone();
    group.bench_function("exact_bicrit_solve_k5", |b| {
        b.iter(|| black_box(numeric::exact_bicrit_solve(black_box(&model), &speeds, 3.0)));
    });

    // Application-level planning and the Pareto frontier.
    group.bench_function("execution_plan", |b| {
        b.iter(|| black_box(ExecutionPlan::solve(black_box(&solver), 3.0, 1e8)));
    });
    group.bench_function("pareto_frontier_100", |b| {
        b.iter(|| black_box(ParetoFrontier::compute(black_box(&solver), 10.0, 100)));
    });

    // Multi-verification extension (numeric inner optimization, q ≤ 4).
    group.bench_function("multiverif_optimize_pair_qmax4", |b| {
        b.iter(|| {
            black_box(multiverif::optimize_pair(
                black_box(&model),
                0.4,
                0.4,
                3.0,
                4,
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
