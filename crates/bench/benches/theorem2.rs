//! Bench target for the §5 extension experiments: Theorem 2's Θ(λ^{-2/3})
//! law (X-thm2) and the first-order validity window (X-validity).

use criterion::{criterion_group, criterion_main, Criterion};
use rexec_core::prelude::*;
use std::hint::black_box;

fn assert_theorem2_shape() {
    let pts = theorem2::wopt_samples(300.0, 0.5, 1e-7, 1e-3, 25);
    let slope = theorem2::loglog_slope(&pts);
    assert!((slope + 2.0 / 3.0).abs() < 1e-6, "slope {slope}");
    // Numeric cross-check at λ = 1e-5.
    let mm = MixedModel::new(
        ErrorRates::fail_stop_only(1e-5).unwrap(),
        ResilienceCosts::new(300.0, 0.0, 300.0).unwrap(),
        PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
    );
    let (w_num, _) = numeric::exact_time_minimizer_mixed(&mm, 0.5, 1.0);
    let w_thm = theorem2::optimal_work(300.0, 1e-5, 0.5);
    assert!((w_num - w_thm).abs() / w_thm < 0.05);
}

fn bench_theorem2(c: &mut Criterion) {
    assert_theorem2_shape();
    let mut group = c.benchmark_group("section_5_extensions");

    group.bench_function("thm2_wopt_samples_and_slope", |b| {
        b.iter(|| {
            let pts = theorem2::wopt_samples(black_box(300.0), black_box(0.5), 1e-7, 1e-3, 25);
            black_box(theorem2::loglog_slope(&pts))
        });
    });

    let mm = MixedModel::new(
        ErrorRates::fail_stop_only(1e-5).unwrap(),
        ResilienceCosts::new(300.0, 0.0, 300.0).unwrap(),
        PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
    );
    group.bench_function("thm2_exact_numeric_minimizer", |b| {
        b.iter(|| {
            black_box(numeric::exact_time_minimizer_mixed(
                black_box(&mm),
                0.5,
                1.0,
            ))
        });
    });

    group.bench_function("validity_window_scan", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=100 {
                let f = i as f64 / 100.0;
                let (lo, hi) = FirstOrder::validity_window(black_box(f));
                acc += hi - lo;
            }
            black_box(acc)
        });
    });

    // Mixed-model exact BiCrit (no closed form exists in §5): the numeric
    // fallback a user would run.
    let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
    let mixed = MixedModel::new(
        ErrorRates::from_total(1e-5, 0.5).unwrap(),
        ResilienceCosts::symmetric(300.0, 15.4),
        PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
    );
    group.bench_function("mixed_exact_bicrit_solve", |b| {
        b.iter(|| {
            black_box(numeric::exact_bicrit_solve_mixed(
                black_box(&mixed),
                &speeds,
                3.0,
            ))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_theorem2);
criterion_main!(benches);
