//! Bench target for the Monte Carlo engine: single patterns, whole
//! applications, parallel replication throughput, and the Figure 1 trace
//! rendering (X-mc / F1 in the experiment index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rexec_bench::hera_xscale;
use rexec_core::ErrorRates;
use rexec_sim::{
    engine::simulate_pattern_traced, render_timeline, simulate_application, simulate_pattern,
    MonteCarlo, SimConfig, SimRng, TraceRecorder,
};
use std::hint::black_box;

fn base_config(lambda: f64) -> SimConfig {
    let m = hera_xscale().silent_model().unwrap().with_lambda(lambda);
    SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");

    for lambda in [1e-6, 1e-4, 1e-3] {
        let cfg = base_config(lambda);
        group.bench_with_input(
            BenchmarkId::new("simulate_pattern", format!("{lambda:.0e}")),
            &cfg,
            |b, cfg| {
                let mut rng = SimRng::new(1);
                b.iter(|| black_box(simulate_pattern(black_box(cfg), &mut rng)));
            },
        );
    }

    let cfg = base_config(1e-4);
    group.bench_function("simulate_application_100_patterns", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            black_box(simulate_application(
                black_box(&cfg),
                100.0 * cfg.w,
                &mut rng,
            ))
        });
    });

    let trials = 10_000u64;
    group.throughput(Throughput::Elements(trials));
    group.bench_function("monte_carlo_parallel_10k", |b| {
        let mc = MonteCarlo::new(cfg, trials, 7);
        b.iter(|| black_box(mc.run().unwrap()));
    });

    group.bench_function("monte_carlo_mixed_parallel_10k", |b| {
        let m = hera_xscale().silent_model().unwrap();
        let mm =
            rexec_core::MixedModel::new(ErrorRates::new(8e-5, 5e-5).unwrap(), m.costs, m.power);
        let mc = MonteCarlo::new(
            SimConfig::from_mixed_model(&mm, 3000.0, 0.6, 1.0),
            trials,
            7,
        );
        b.iter(|| black_box(mc.run().unwrap()));
    });

    group.bench_function("segmented_pattern_q4", |b| {
        let cfg = base_config(1e-4);
        let mut rng = SimRng::new(5);
        b.iter(|| {
            black_box(rexec_sim::segmented::simulate_pattern_segmented(
                black_box(&cfg),
                4,
                &mut rng,
            ))
        });
    });

    group.bench_function("monte_carlo_with_histograms_5k", |b| {
        let mc = MonteCarlo::new(base_config(1e-4), 5_000, 9);
        b.iter(|| black_box(mc.run_with_histograms().unwrap()));
    });

    group.bench_function("figure1_trace_and_render", |b| {
        let mut traced_cfg = base_config(1e-4);
        traced_cfg.rates = ErrorRates::new(1e-4, 5e-5).unwrap();
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut tr = TraceRecorder::new(256);
            let p = simulate_pattern_traced(black_box(&traced_cfg), &mut rng, Some(&mut tr));
            black_box((p, render_timeline(tr.events())))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
