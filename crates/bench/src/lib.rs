//! # rexec-bench
//!
//! Criterion benchmark harness: **one bench target per paper artifact**
//! (see DESIGN.md §5 for the experiment index):
//!
//! | bench target            | paper artifact                              |
//! |-------------------------|---------------------------------------------|
//! | `tables`                | §4.2 tables (ρ = 8, 3, 1.775, 1.4)          |
//! | `figures_atlas_crusoe`  | Figures 2–7 (Atlas/Crusoe sweeps)           |
//! | `figures_all_configs`   | Figures 8–14 (seven per-config panels)      |
//! | `theorem2`              | §5.3 Theorem 2 + §5.2 validity window       |
//! | `solver`                | O(K²) solver micro-benchmarks               |
//! | `simulator`             | Monte Carlo engine + Figure 1 traces        |
//!
//! Each bench regenerates its artifact (with correctness assertions, so a
//! regression in the reproduction fails the bench run) and reports the
//! time to do so.
//!
//! This library exposes the shared fixtures.

#![warn(missing_docs)]
use rexec_core::{BiCritSolver, ModelError, SilentModel, SpeedSet};
use rexec_platforms::{configuration, ConfigId, Configuration, PlatformId, ProcessorId};

/// The Hera/XScale configuration (the §4.2 tables).
pub fn hera_xscale() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
}

/// The Atlas/Crusoe configuration (Figures 2–7).
pub fn atlas_crusoe() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Atlas,
        processor: ProcessorId::TransmetaCrusoe,
    })
}

/// A solver with a synthetic `K`-speed set (for scaling benchmarks):
/// speeds spread uniformly over `[0.2, 1.0]`.
pub fn synthetic_solver(k: usize) -> Result<BiCritSolver, ModelError> {
    let model: SilentModel = hera_xscale().silent_model()?;
    let speeds: Vec<f64> = (0..k)
        .map(|i| 0.2 + 0.8 * i as f64 / (k.max(2) - 1) as f64)
        .collect();
    Ok(BiCritSolver::new(model, SpeedSet::new(speeds)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(hera_xscale().name(), "Hera/XScale");
        assert_eq!(atlas_crusoe().name(), "Atlas/Crusoe");
        let s = synthetic_solver(10).unwrap();
        assert_eq!(s.speeds().len(), 10);
        assert!(s.solve(3.0).is_some());
    }
}
