//! # rexec-bench
//!
//! Criterion benchmark harness: **one bench target per paper artifact**
//! (see DESIGN.md §5 for the experiment index):
//!
//! | bench target            | paper artifact                              |
//! |-------------------------|---------------------------------------------|
//! | `tables`                | §4.2 tables (ρ = 8, 3, 1.775, 1.4)          |
//! | `figures_atlas_crusoe`  | Figures 2–7 (Atlas/Crusoe sweeps)           |
//! | `figures_all_configs`   | Figures 8–14 (seven per-config panels)      |
//! | `theorem2`              | §5.3 Theorem 2 + §5.2 validity window       |
//! | `solver`                | O(K²) solver micro-benchmarks               |
//! | `simulator`             | Monte Carlo engine + Figure 1 traces        |
//!
//! Each bench regenerates its artifact (with correctness assertions, so a
//! regression in the reproduction fails the bench run) and reports the
//! time to do so.
//!
//! This library exposes the shared fixtures.

#![warn(missing_docs)]
use rexec_core::{BiCritSolver, ModelError, SilentModel, SpeedSet};
use rexec_platforms::{configuration, ConfigId, Configuration, PlatformId, ProcessorId};

/// The Hera/XScale configuration (the §4.2 tables).
pub fn hera_xscale() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
}

/// The Atlas/Crusoe configuration (Figures 2–7).
pub fn atlas_crusoe() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Atlas,
        processor: ProcessorId::TransmetaCrusoe,
    })
}

/// A solver with a synthetic `K`-speed set (for scaling benchmarks):
/// speeds spread uniformly over `[0.2, 1.0]`.
pub fn synthetic_solver(k: usize) -> Result<BiCritSolver, ModelError> {
    let model: SilentModel = hera_xscale().silent_model()?;
    let speeds: Vec<f64> = (0..k)
        .map(|i| 0.2 + 0.8 * i as f64 / (k.max(2) - 1) as f64)
        .collect();
    Ok(BiCritSolver::new(model, SpeedSet::new(speeds)?))
}

pub mod stats {
    //! Robust summaries for tracked benchmark runs.
    //!
    //! `rexec-bench --repeat N` reruns the whole suite N times and
    //! reports the per-stage **median** with the interquartile range,
    //! the Touati-style alternative to best-of-N: the median is a
    //! consistent location estimator under asymmetric OS noise, and the
    //! IQR gives `compare` a per-stage noise band so a regression has
    //! to clear the observed run-to-run spread, not an arbitrary
    //! percentage, before CI flags it.

    /// `xs` sorted ascending (NaNs sort last; the bench never emits
    /// them, but a corrupted report must not panic the comparator).
    pub fn sorted(mut xs: Vec<f64>) -> Vec<f64> {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        xs
    }

    /// Linear-interpolation quantile (R type 7) of an ascending slice.
    /// Panics on an empty slice.
    pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
        assert!(!sorted.is_empty(), "quantile of an empty sample");
        let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }

    /// Median of an ascending slice.
    pub fn median_sorted(sorted: &[f64]) -> f64 {
        quantile_sorted(sorted, 0.5)
    }

    /// `(q1, median, q3)` of an ascending slice.
    pub fn quartiles_sorted(sorted: &[f64]) -> (f64, f64, f64) {
        (
            quantile_sorted(sorted, 0.25),
            quantile_sorted(sorted, 0.5),
            quantile_sorted(sorted, 0.75),
        )
    }

    /// One stage's robust timing summary, as stored in the report.
    #[derive(Debug, Clone, PartialEq)]
    pub struct StageSample {
        /// `"stage/name"` key, unique per report.
        pub key: String,
        /// Median wall seconds across the repeats.
        pub median_secs: f64,
        /// Interquartile range of the wall seconds (0 for a single run).
        pub iqr_secs: f64,
    }

    /// A stage whose current median fell outside the noise band.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// `"stage/name"` key.
        pub key: String,
        /// Baseline median seconds.
        pub base_secs: f64,
        /// Current median seconds.
        pub cur_secs: f64,
        /// Slowdown in percent of the baseline median.
        pub pct: f64,
        /// The noise band the slowdown had to clear (seconds).
        pub band_secs: f64,
    }

    /// Flags every stage present in both reports whose current median
    /// exceeds the baseline median by more than `iqr_band ×` the wider
    /// of the two IQRs **and** by more than `min_pct` percent. The IQR
    /// term absorbs run-to-run noise measured on this machine; the
    /// percentage floor keeps micro-stages (where the IQR itself is
    /// sub-microsecond) from flagging on timer granularity. Stages
    /// missing from either side are skipped — `compare` is for
    /// same-suite runs.
    pub fn regressions(
        base: &[StageSample],
        cur: &[StageSample],
        iqr_band: f64,
        min_pct: f64,
    ) -> Vec<Regression> {
        let mut out = vec![];
        for c in cur {
            let Some(b) = base.iter().find(|b| b.key == c.key) else {
                continue;
            };
            if !(b.median_secs > 0.0 && c.median_secs.is_finite()) {
                continue;
            }
            let delta = c.median_secs - b.median_secs;
            let band = iqr_band * b.iqr_secs.max(c.iqr_secs);
            let pct = delta / b.median_secs * 100.0;
            if delta > band && pct > min_pct {
                out.push(Regression {
                    key: c.key.clone(),
                    base_secs: b.median_secs,
                    cur_secs: c.median_secs,
                    pct,
                    band_secs: band,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::stats::*;
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(hera_xscale().name(), "Hera/XScale");
        assert_eq!(atlas_crusoe().name(), "Atlas/Crusoe");
        let s = synthetic_solver(10).unwrap();
        assert_eq!(s.speeds().len(), 10);
        assert!(s.solve(3.0).is_some());
    }

    #[test]
    fn quartiles_interpolate_linearly() {
        let s = sorted(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s, vec![1.0, 2.0, 3.0, 4.0]);
        let (q1, med, q3) = quartiles_sorted(&s);
        assert_eq!(med, 2.5);
        assert_eq!(q1, 1.75);
        assert_eq!(q3, 3.25);
        // Odd length: the median is the middle element exactly.
        assert_eq!(median_sorted(&[1.0, 2.0, 9.0]), 2.0);
        // Single sample: every quantile is that sample.
        assert_eq!(quartiles_sorted(&[7.0]), (7.0, 7.0, 7.0));
    }

    #[test]
    fn regressions_respect_iqr_band_and_pct_floor() {
        let base = vec![
            StageSample {
                key: "solver/paper_k5".into(),
                median_secs: 1.0,
                iqr_secs: 0.05,
            },
            StageSample {
                key: "sim/fast".into(),
                median_secs: 0.010,
                iqr_secs: 0.004,
            },
        ];
        // 30% slower and far outside 3×IQR: flagged.
        let cur = vec![StageSample {
            key: "solver/paper_k5".into(),
            median_secs: 1.3,
            iqr_secs: 0.05,
        }];
        let r = regressions(&base, &cur, 3.0, 5.0);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].key, "solver/paper_k5");
        assert!((r[0].pct - 30.0).abs() < 1e-9);

        // 20% slower but inside 3× the (noisy) IQR: not flagged.
        let cur = vec![StageSample {
            key: "sim/fast".into(),
            median_secs: 0.012,
            iqr_secs: 0.004,
        }];
        assert!(regressions(&base, &cur, 3.0, 5.0).is_empty());

        // Outside the IQR band but under the pct floor: not flagged.
        let cur = vec![StageSample {
            key: "solver/paper_k5".into(),
            median_secs: 1.04,
            iqr_secs: 0.001,
        }];
        assert!(regressions(&base, &cur, 3.0, 5.0).is_empty());

        // Stages only on one side are skipped, not errors.
        let cur = vec![StageSample {
            key: "new/stage".into(),
            median_secs: 9.0,
            iqr_secs: 0.0,
        }];
        assert!(regressions(&base, &cur, 3.0, 5.0).is_empty());
    }
}
