//! Tracked benchmark runner: measures the solver, sweep and simulator
//! stages end-to-end and emits a machine-readable `BENCH_sweeps.json`,
//! so every PR records the perf trajectory alongside the paper artifacts.
//!
//! ```text
//! rexec-bench [--quick] [--repeat N] [--out PATH] [--no-history]
//! rexec-bench compare BASELINE CURRENT [--iqr-band K] [--min-pct P]
//!
//!   --quick       CI-sized workloads (seconds, not minutes)
//!   --repeat N    run the whole suite N times; report per-stage
//!                 median wall time with the interquartile range
//!                 (default 1: a single pass, IQR 0)
//!   --out         output path (default: BENCH_sweeps.json)
//!   --no-history  skip appending this run to BENCH_history.jsonl
//!
//!   compare       read two reports and flag stages whose current
//!                 median is more than K× the wider IQR *and* more
//!                 than P% above the baseline median (defaults K = 3,
//!                 P = 5); exits 1 when any stage regressed
//! ```
//!
//! Stages:
//!
//! * **solver** — candidate-table build time, per-point `solve` vs the
//!   batched `solve_many` over a ρ grid (paper K = 5 and synthetic
//!   K = 20), reported as solves/sec with the batched speedup;
//! * **sweep** — the six Atlas/Crusoe paper-grid figure sweeps and the
//!   §4.2 ρ-tables, reported as points/sec;
//! * **heatmap** — a λ × ρ map, reported as cells/sec;
//! * **simulator** — Monte Carlo pattern replication, reported as
//!   patterns/sec in three sub-stages: `sim_reference` (single-thread
//!   per-attempt loop), `sim_fastpath` (single-thread geometric
//!   sampling, with its speedup over the reference), and
//!   `sim_fastpath_parallel` (rayon fast path, asserted bit-identical
//!   to the sequential fast path); the same trio runs again on a mixed
//!   fail-stop + silent config as `sim_mixed_reference`,
//!   `sim_mixed_fastpath` and `sim_mixed_fastpath_parallel`;
//! * **serve** — the planning-service core on a deterministic mixed
//!   hit/miss query stream over paper and synthetic K = 20 tables:
//!   `serve_unbatched` (plan cache off, one scalar solve per query —
//!   the one-query-per-solve baseline) and `serve_batched` (plan cache
//!   on, `plan_batch` over the zero-allocation SoA kernel), reported as
//!   queries/sec with `speedup_vs_unbatched` and the observed
//!   `hit_rate`; CI's full mode gates `serve_batched` at ≥ 1M
//!   queries/sec and ≥ 3× the unbatched baseline;
//! * **obs** — `obs_overhead`: the `sim_fastpath` workload with span
//!   timing *and* the span timeline fully enabled vs fully disabled;
//!   its `overhead_pct` extra records the observability tax on the
//!   hottest loop (CI asserts it stays under 2%).
//!
//! Within one suite pass every stage still repeats its workload a few
//! times and keeps the *best* wall time (least-noise estimator for a
//! single pass); `--repeat` then takes the median of those best times
//! across passes, which is what `compare` and `BENCH_history.jsonl`
//! track.

use rexec_bench::stats::{median_sorted, quartiles_sorted, regressions, sorted, StageSample};
use rexec_bench::{atlas_crusoe, hera_xscale, synthetic_solver};
use rexec_sim::{Engine, MonteCarlo, SimConfig, Summary};
use rexec_sweep::figure::{lambda_hi_for, sweep_figure_paper_grid, SweepParam};
use rexec_sweep::{rho_table, Grid, Heatmap};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One measured stage: robust wall-time summary plus throughput.
struct StageResult {
    stage: &'static str,
    name: &'static str,
    /// Median (across `--repeat` passes) of the best wall time per pass
    /// (seconds). For a single pass this is just the best wall time.
    wall_secs: f64,
    /// First quartile of the per-pass wall times.
    q1_secs: f64,
    /// Third quartile of the per-pass wall times.
    q3_secs: f64,
    /// How many suite passes the summary aggregates.
    repeats: u64,
    /// Work items processed per repetition (points, cells, solves...).
    items: u64,
    /// What `items` counts.
    unit: &'static str,
    /// Stage-specific extras (e.g. the batched-vs-per-point speedup).
    extra: BTreeMap<String, Value>,
}

impl StageResult {
    /// A single-pass result: quartiles degenerate to the measured time.
    fn single(
        stage: &'static str,
        name: &'static str,
        wall_secs: f64,
        items: u64,
        unit: &'static str,
        extra: BTreeMap<String, Value>,
    ) -> StageResult {
        StageResult {
            stage,
            name,
            wall_secs,
            q1_secs: wall_secs,
            q3_secs: wall_secs,
            repeats: 1,
            items,
            unit,
            extra,
        }
    }

    /// Items per second from the median wall time; 0 for a zero-duration
    /// stage so the JSON report never contains `inf`/NaN (which
    /// downstream parsers misread).
    fn per_sec(&self) -> f64 {
        finite_ratio(self.items as f64, self.wall_secs)
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("stage".to_string(), self.stage.to_value());
        m.insert("name".to_string(), self.name.to_value());
        m.insert("wall_secs".to_string(), self.wall_secs.to_value());
        m.insert("wall_q1_secs".to_string(), self.q1_secs.to_value());
        m.insert("wall_q3_secs".to_string(), self.q3_secs.to_value());
        m.insert(
            "wall_iqr_secs".to_string(),
            (self.q3_secs - self.q1_secs).to_value(),
        );
        m.insert("repeats".to_string(), self.repeats.to_value());
        m.insert("items".to_string(), self.items.to_value());
        m.insert("unit".to_string(), self.unit.to_value());
        m.insert(format!("{}_per_sec", self.unit), self.per_sec().to_value());
        for (k, v) in &self.extra {
            m.insert(k.clone(), v.clone());
        }
        Value::Object(m)
    }
}

/// `num / den` kept finite: any combination whose quotient is not a
/// finite number (zero/NaN denominator on a coarse clock, a subnormal
/// denominator overflowing the divide to `inf`, non-finite numerator)
/// yields 0.0 instead of leaking `inf`/NaN into `BENCH_sweeps.json`.
/// The guard is on the *computed ratio*, not just the inputs: finite
/// operands can still overflow, and a NaN input compares false against
/// every threshold so input-side checks alone cannot reject it.
fn finite_ratio(num: f64, den: f64) -> f64 {
    let ratio = num / den;
    if den > 0.0 && ratio.is_finite() {
        ratio
    } else {
        0.0
    }
}

/// Runs `work` `reps` times and returns the best wall time in seconds.
fn best_of<R>(reps: usize, mut work: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = work();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);
    }
    best
}

fn solver_stages(quick: bool, out: &mut Vec<StageResult>) {
    let reps = if quick { 5 } else { 30 };
    // The paper's ρ sweep grid: 51 points over [1.0, 3.5].
    let rho_grid = Grid::linear(1.0, 3.5, 51);
    let rhos = rho_grid.values().to_vec();

    for (name, k) in [("paper_k5", 5usize), ("synthetic_k20", 20)] {
        let solver = if k == 5 {
            hera_xscale().solver().expect("valid configuration")
        } else {
            synthetic_solver(k).expect("valid synthetic model")
        };

        let model = *solver.model();
        let speeds = solver.speeds().clone();
        let build_secs = best_of(reps, || {
            rexec_core::BiCritSolver::new(model, speeds.clone())
        });

        let per_point_secs = best_of(reps, || {
            rhos.iter()
                .map(|&rho| solver.solve(rho))
                .filter(Option::is_some)
                .count()
        });
        let batched_secs = best_of(reps, || solver.solve_many(&rhos));

        let mut extra = BTreeMap::new();
        extra.insert("table_build_secs".to_string(), build_secs.to_value());
        extra.insert("per_point_wall_secs".to_string(), per_point_secs.to_value());
        extra.insert(
            "batched_speedup".to_string(),
            finite_ratio(per_point_secs, batched_secs).to_value(),
        );
        out.push(StageResult::single(
            "solver",
            name,
            batched_secs,
            rhos.len() as u64,
            "solves",
            extra,
        ));
    }
}

fn sweep_stages(quick: bool, out: &mut Vec<StageResult>) {
    let reps = if quick { 2 } else { 10 };
    let cfg = atlas_crusoe();
    let lambda_hi = lambda_hi_for(&cfg);

    let mut points = 0u64;
    let figure_secs = best_of(reps, || {
        points = 0;
        for param in SweepParam::ALL {
            let s = sweep_figure_paper_grid(&cfg, param, lambda_hi);
            points += s.points.len() as u64;
        }
    });
    out.push(StageResult::single(
        "sweep",
        "figures_atlas_crusoe",
        figure_secs,
        points,
        "points",
        BTreeMap::new(),
    ));

    let hera = hera_xscale();
    let mut rows = 0u64;
    let table_secs = best_of(reps, || {
        rows = 0;
        for rho in rexec_sweep::table_rho::PAPER_RHOS {
            rows += rho_table(&hera, rho).rows.len() as u64;
        }
    });
    out.push(StageResult::single(
        "sweep",
        "tables_rho",
        table_secs,
        rows,
        "rows",
        BTreeMap::new(),
    ));

    let (nl, nr) = if quick { (8, 20) } else { (16, 40) };
    let lambdas = Grid::log(1e-6, 2e-3, nl);
    let rhos = Grid::linear(1.1, 8.0, nr);
    let heatmap_secs = best_of(reps, || Heatmap::compute(&hera, &lambdas, &rhos));
    out.push(StageResult::single(
        "heatmap",
        "hera_xscale_lambda_rho",
        heatmap_secs,
        (nl * nr) as u64,
        "cells",
        BTreeMap::new(),
    ));
}

/// Benches one config through the reference engine, the sequential fast
/// path and the parallel fast path (asserted bit-identical to the
/// sequential one), pushing the three named stages.
fn simulator_trio(
    quick: bool,
    out: &mut Vec<StageResult>,
    cfg: SimConfig,
    names: [&'static str; 3],
) {
    let reps = if quick { 2 } else { 5 };
    let trials: u64 = if quick { 4_000 } else { 40_000 };

    // Single-thread reference engine: the bit-reproducible per-attempt
    // loop, the baseline the fast path's speedup is measured against.
    let reference = MonteCarlo::new(cfg, trials, 2024).with_engine(Engine::Reference);
    let ref_secs = best_of(reps, || {
        reference
            .run_sequential()
            .expect("benchmark config is valid")
    });
    out.push(StageResult::single(
        "simulator",
        names[0],
        ref_secs,
        trials,
        "patterns",
        BTreeMap::new(),
    ));

    // Single-thread closed-form fast path over the same config and seed.
    let fast = MonteCarlo::new(cfg, trials, 2024).with_engine(Engine::FastPath);
    let fast_secs = best_of(reps, || {
        fast.run_sequential().expect("benchmark config is valid")
    });
    let mut extra = BTreeMap::new();
    extra.insert(
        "speedup_vs_reference".to_string(),
        finite_ratio(ref_secs, fast_secs).to_value(),
    );
    out.push(StageResult::single(
        "simulator",
        names[1],
        fast_secs,
        trials,
        "patterns",
        extra,
    ));

    // Multi-thread fast path; its Summary must stay bit-identical to the
    // sequential run (chunked RNG streams + order-preserving reduction).
    let seq_summary = fast.run_sequential().expect("benchmark config is valid");
    let before = rexec_obs::global().counter("sim.patterns").get();
    let mut par_summary = Summary::default();
    let par_secs = best_of(reps, || {
        par_summary = fast.run().expect("benchmark config is valid");
    });
    let patterns = rexec_obs::global().counter("sim.patterns").get() - before;
    assert_eq!(
        par_summary, seq_summary,
        "parallel fast path diverged from the sequential fast path"
    );
    let mut extra = BTreeMap::new();
    extra.insert("patterns_total".to_string(), patterns.to_value());
    extra.insert(
        "speedup_vs_reference".to_string(),
        finite_ratio(ref_secs, par_secs).to_value(),
    );
    out.push(StageResult::single(
        "simulator",
        names[2],
        par_secs,
        trials,
        "patterns",
        extra,
    ));
}

fn simulator_stage(quick: bool, out: &mut Vec<StageResult>) {
    let model = hera_xscale().silent_model().expect("valid configuration");
    // The ρ = 3 optimum (σ1 = σ2 = 0.4, Wopt ≈ 2764) with a fast
    // re-execution speed, so the two-speed path is exercised.
    let silent_cfg = SimConfig::from_silent_model(&model, 2764.0, 0.4, 0.8);
    simulator_trio(
        quick,
        out,
        silent_cfg,
        ["sim_reference", "sim_fastpath", "sim_fastpath_parallel"],
    );

    // Mixed fail-stop + silent errors at §5 rates: exercises the
    // three-way categorical fast path instead of the geometric one.
    let mm = rexec_core::MixedModel::new(
        rexec_core::ErrorRates::new(8e-5, 5e-5).expect("valid rates"),
        model.costs,
        model.power,
    );
    let mixed_cfg = SimConfig::from_mixed_model(&mm, 3000.0, 0.6, 1.0);
    simulator_trio(
        quick,
        out,
        mixed_cfg,
        [
            "sim_mixed_reference",
            "sim_mixed_fastpath",
            "sim_mixed_fastpath_parallel",
        ],
    );

    // Non-memoryless law through the per-attempt scenario engine: the
    // reference-path cost of Weibull inter-error draws (inverse-survival
    // powf per attempt instead of one exp log), tracked from day one so
    // law-scenario regressions show up in BENCH_history.jsonl.
    let reps = if quick { 2 } else { 5 };
    let trials: u64 = if quick { 4_000 } else { 40_000 };
    let weibull = MonteCarlo::new(silent_cfg, trials, 2024)
        .with_law(rexec_core::ErrorLaw::Weibull { shape: 0.7 });
    let weibull_secs = best_of(reps, || {
        weibull.run_sequential().expect("benchmark config is valid")
    });
    out.push(StageResult::single(
        "simulator",
        "sim_weibull_reference",
        weibull_secs,
        trials,
        "patterns",
        BTreeMap::new(),
    ));
}

/// xorshift64* — the same deterministic stream generator `rexec-loadgen`
/// uses, so the in-process bench and the TCP smoke exercise the same
/// query distribution.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// The serve-bench table pool: the paper's 8 platform tables plus 8
/// synthetic K = 20 tables (distinct λ variants of Hera/XScale with a
/// 20-speed DVFS ladder), so half the stream hits the expensive
/// candidate tables the batched kernel is built for.
fn serve_tables() -> Vec<rexec_cli::PlanSpec> {
    use rexec_cli::PlanSpec;
    let mut tables = Vec::new();
    for platform in ["hera", "atlas", "coastal", "coastal-ssd"] {
        for processor in ["xscale", "crusoe"] {
            tables.push(PlanSpec {
                platform: Some(platform.to_string()),
                processor: Some(processor.to_string()),
                ..PlanSpec::default()
            });
        }
    }
    let solver = synthetic_solver(20).expect("valid synthetic model");
    let model = *solver.model();
    let speeds: Vec<f64> = solver.speeds().values().to_vec();
    for i in 0..8u32 {
        tables.push(PlanSpec {
            lambda: Some(model.lambda * (1.0 + 0.1 * f64::from(i))),
            checkpoint: Some(model.costs.checkpoint),
            verification: Some(model.costs.verification),
            recovery: Some(model.costs.recovery),
            kappa: Some(model.power.kappa),
            pidle: Some(model.power.p_idle),
            pio: Some(model.power.p_io),
            speeds: Some(speeds.clone()),
            ..PlanSpec::default()
        });
    }
    tables
}

/// One deterministic pass of the serve query stream: 90% of queries draw
/// ρ from a 16-value hot pool per table, the rest carry a ρ unique to
/// this `pass` (offset far beyond the quantization step), so every
/// measured pass re-exercises the miss path at the same 10% rate.
fn serve_stream(tables: &[rexec_cli::PlanSpec], n: u64, pass: u64) -> Vec<rexec_cli::PlanSpec> {
    let mut rng = 0x5EED_5EED_5EED_5EEDu64;
    let mut fresh = pass * n;
    (0..n)
        .map(|_| {
            let r = next_rand(&mut rng);
            let mut spec = tables[(r % tables.len() as u64) as usize].clone();
            spec.rho = Some(if (r >> 8) % 100 < 90 {
                1.5 + 0.125 * ((r >> 16) % 16) as f64
            } else {
                fresh += 1;
                4.0 + fresh as f64 * 1e-4
            });
            spec
        })
        .collect()
}

/// The planning-service core: `serve_unbatched` (plan cache off, scalar
/// solve per query) vs `serve_batched` (plan cache on, `plan_batch` in
/// 512-query batches). Both paths resolve specs inside the timed region
/// — "queries/sec" means what the daemon's workers do per request, not
/// just the solve. The batched stage measures steady state: the hot
/// pool is warmed once, then every pass streams fresh miss ρ values so
/// the ~10% miss path stays in the measurement.
fn serve_stages(quick: bool, out: &mut Vec<StageResult>) {
    use rexec_serve::{PlanService, ServiceConfig};

    let reps = if quick { 3 } else { 5 };
    let n: u64 = if quick { 50_000 } else { 200_000 };
    let tables = serve_tables();

    // Baseline: no plan cache (capacity 0), one scalar solve per query.
    // The solver cache stays on in both paths — candidate-table reuse is
    // not what this stage isolates.
    let baseline = PlanService::new(ServiceConfig {
        plan_cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let mut pass = 0u64;
    let unbatched_secs = best_of(reps, || {
        pass += 1;
        let specs = serve_stream(&tables, n, pass);
        let mut answered = 0u64;
        for spec in &specs {
            let query = baseline.resolve(spec).expect("bench stream is valid");
            std::hint::black_box(baseline.plan(&query));
            answered += 1;
        }
        answered
    });
    out.push(StageResult::single(
        "serve",
        "serve_unbatched",
        unbatched_secs,
        n,
        "queries",
        BTreeMap::new(),
    ));

    // Cached + batched: warm the hot pool once, then measure steady
    // state (hits answered from the sharded cache, misses grouped per
    // table and solved through `solve_many_into`).
    let service = PlanService::new(ServiceConfig::default());
    for spec in &serve_stream(&tables, n, 0) {
        service.plan_spec(spec).expect("bench stream is valid");
    }
    let stats_before = service.cache_stats();
    let mut queries = Vec::with_capacity(512);
    let mut answers = Vec::with_capacity(512);
    let batched_secs = best_of(reps, || {
        pass += 1;
        let specs = serve_stream(&tables, n, pass);
        let mut answered = 0u64;
        for chunk in specs.chunks(512) {
            queries.clear();
            queries.extend(
                chunk
                    .iter()
                    .map(|s| service.resolve(s).expect("bench stream is valid")),
            );
            service.plan_batch(&queries, &mut answers);
            answered += answers.len() as u64;
            std::hint::black_box(&answers);
        }
        answered
    });
    let stats = service.cache_stats();
    let lookups = (stats.hits - stats_before.hits) + (stats.misses - stats_before.misses);
    let hit_rate = finite_ratio((stats.hits - stats_before.hits) as f64, lookups as f64);

    let mut extra = BTreeMap::new();
    extra.insert("batch_size".to_string(), 512u64.to_value());
    extra.insert("hit_rate".to_string(), hit_rate.to_value());
    extra.insert("unbatched_wall_secs".to_string(), unbatched_secs.to_value());
    extra.insert(
        "speedup_vs_unbatched".to_string(),
        finite_ratio(unbatched_secs, batched_secs).to_value(),
    );
    out.push(StageResult::single(
        "serve",
        "serve_batched",
        batched_secs,
        n,
        "queries",
        extra,
    ));
}

/// Observability self-overhead: the `sim_fastpath` workload with span
/// timing *and* the span timeline enabled, against the same workload
/// with both disabled. The hot loop batches its metrics into per-chunk
/// integer accumulators, so the toggles should only gate the per-run
/// `runner.run` span — `overhead_pct` records how true that stays.
fn obs_overhead_stage(quick: bool, out: &mut Vec<StageResult>) {
    let model = hera_xscale().silent_model().expect("valid configuration");
    let cfg = SimConfig::from_silent_model(&model, 2764.0, 0.4, 0.8);
    // Even in --quick this stage uses a sizeable workload: the overhead
    // ratio of two ~microsecond runs would be pure timer noise.
    let trials: u64 = if quick { 100_000 } else { 400_000 };
    let reps = if quick { 5 } else { 7 };
    let mc = MonteCarlo::new(cfg, trials, 2024).with_engine(Engine::FastPath);

    rexec_obs::set_spans_enabled(false);
    rexec_obs::set_timeline_enabled(false);
    let off_secs = best_of(reps, || mc.run().expect("benchmark config is valid"));

    rexec_obs::set_spans_enabled(true);
    rexec_obs::set_timeline_enabled(true);
    let on_secs = best_of(reps, || mc.run().expect("benchmark config is valid"));
    rexec_obs::set_spans_enabled(false);
    rexec_obs::set_timeline_enabled(false);
    // Free the timeline events the enabled runs accumulated.
    drop(rexec_obs::timeline_drain());

    // Best-of-N noise can make the instrumented run *faster*; clamp at
    // zero so the tracked number is the observability tax, not jitter.
    let overhead_pct = (finite_ratio(on_secs, off_secs) - 1.0).max(0.0) * 100.0;
    let mut extra = BTreeMap::new();
    extra.insert("baseline_wall_secs".to_string(), off_secs.to_value());
    extra.insert("overhead_pct".to_string(), overhead_pct.to_value());
    out.push(StageResult::single(
        "obs",
        "obs_overhead",
        on_secs,
        trials,
        "patterns",
        extra,
    ));
}

/// Crash-consistency model check as a benchmark stage: one exhaustive
/// exploration of every crash prefix (both modes) and every single-byte
/// corruption of the fixture run, on the in-memory storage model.
/// `items` is the number of states explored, so the tracked throughput
/// is states/sec; any invariant violation fails the bench outright — a
/// perf report over a crash-unsafe lifecycle would be meaningless.
fn model_check_stage(quick: bool, out: &mut Vec<StageResult>) {
    let cfg = rexec_check::CheckConfig {
        units: if quick { 3 } else { 4 },
        ..rexec_check::CheckConfig::default()
    };
    let t = Instant::now();
    let report = rexec_check::explore(&cfg);
    let wall_secs = t.elapsed().as_secs_f64();
    assert!(
        report.ok(),
        "model check found {} crash-consistency violation(s); first: {}",
        report.violations.len(),
        report.violations[0]
    );
    let mut extra = BTreeMap::new();
    extra.insert("fixture_units".to_string(), (cfg.units as u64).to_value());
    extra.insert("storage_ops".to_string(), (report.ops as u64).to_value());
    extra.insert(
        "crash_states".to_string(),
        (report.crash_states as u64).to_value(),
    );
    extra.insert(
        "corruption_states".to_string(),
        (report.corruption_states as u64).to_value(),
    );
    extra.insert("violations".to_string(), 0u64.to_value());
    out.push(StageResult::single(
        "check",
        "model_check",
        wall_secs,
        report.states_explored() as u64,
        "states",
        extra,
    ));
}

/// One full pass over every stage, in report order.
fn run_suite(quick: bool) -> Vec<StageResult> {
    let mut stages: Vec<StageResult> = vec![];
    solver_stages(quick, &mut stages);
    sweep_stages(quick, &mut stages);
    serve_stages(quick, &mut stages);
    simulator_stage(quick, &mut stages);
    obs_overhead_stage(quick, &mut stages);
    model_check_stage(quick, &mut stages);
    stages
}

/// Folds `--repeat` suite passes into one row per stage: median and
/// quartiles of the per-pass wall times, median of numeric extras
/// (exactly-equal integer extras stay integers).
fn aggregate(mut passes: Vec<Vec<StageResult>>) -> Vec<StageResult> {
    if passes.len() == 1 {
        return passes.pop().expect("non-empty");
    }
    let n = passes.len() as u64;
    let mut out = vec![];
    for i in 0..passes[0].len() {
        let walls = sorted(passes.iter().map(|p| p[i].wall_secs).collect());
        let (q1, med, q3) = quartiles_sorted(&walls);
        let proto = &passes[0][i];
        debug_assert!(passes
            .iter()
            .all(|p| p[i].stage == proto.stage && p[i].name == proto.name));
        let mut extra = BTreeMap::new();
        for key in proto.extra.keys() {
            let vals: Vec<&Value> = passes.iter().filter_map(|p| p[i].extra.get(key)).collect();
            let ints: Vec<u64> = vals
                .iter()
                .filter_map(|v| match v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                })
                .collect();
            let merged = if ints.len() == vals.len() && ints.windows(2).all(|w| w[0] == w[1]) {
                ints[0].to_value()
            } else {
                let nums = sorted(
                    vals.iter()
                        .filter_map(|v| match v {
                            Value::Number(n) => Some(n.as_f64()),
                            _ => None,
                        })
                        .collect(),
                );
                if nums.is_empty() {
                    (*vals[0]).clone()
                } else {
                    median_sorted(&nums).to_value()
                }
            };
            extra.insert(key.clone(), merged);
        }
        out.push(StageResult {
            stage: proto.stage,
            name: proto.name,
            wall_secs: med,
            q1_secs: q1,
            q3_secs: q3,
            repeats: n,
            items: proto.items,
            unit: proto.unit,
            extra,
        });
    }
    out
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Extracts `"stage/name" → (median, IQR)` samples from a report file
/// (both the current quartile schema and the older best-of schema, which
/// has no IQR fields and gets a zero-width band).
fn load_samples(path: &Path) -> Vec<StageSample> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
    let doc: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| die(&format!("{} is not valid JSON: {e}", path.display())));
    let Some(Value::Array(stages)) = doc.get("stages") else {
        die(&format!("{}: no `stages` array", path.display()));
    };
    let num = |v: Option<&Value>| match v {
        Some(Value::Number(n)) => Some(n.as_f64()),
        _ => None,
    };
    let text_of = |v: Option<&Value>| match v {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    };
    stages
        .iter()
        .filter_map(|s| {
            let key = format!("{}/{}", text_of(s.get("stage"))?, text_of(s.get("name"))?);
            Some(StageSample {
                key,
                median_secs: num(s.get("wall_secs"))?,
                iqr_secs: num(s.get("wall_iqr_secs")).unwrap_or(0.0),
            })
        })
        .collect()
}

/// `rexec-bench compare BASELINE CURRENT [--iqr-band K] [--min-pct P]`.
fn run_compare(args: &[String]) -> ! {
    let mut paths: Vec<PathBuf> = vec![];
    let mut iqr_band = 3.0;
    let mut min_pct = 5.0;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iqr-band" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => iqr_band = k,
                None => die("--iqr-band needs a number"),
            },
            "--min-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(p) => min_pct = p,
                None => die("--min-pct needs a number"),
            },
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => die(&format!("unknown compare argument: {other}")),
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        die("compare needs exactly BASELINE and CURRENT report paths");
    };
    let base = load_samples(base_path);
    let cur = load_samples(cur_path);
    let shared = cur.iter().filter(|c| base.iter().any(|b| b.key == c.key));
    for c in shared.clone() {
        let b = base.iter().find(|b| b.key == c.key).expect("filtered");
        println!(
            "{:<40} {:>12.3} ms -> {:>12.3} ms  ({:+.1}%)",
            c.key,
            b.median_secs * 1e3,
            c.median_secs * 1e3,
            finite_ratio(c.median_secs - b.median_secs, b.median_secs) * 100.0,
        );
    }
    if shared.count() == 0 {
        die("the two reports share no stages");
    }
    let regs = regressions(&base, &cur, iqr_band, min_pct);
    if regs.is_empty() {
        println!("no regressions beyond the noise band (>{iqr_band}x IQR and >{min_pct}%)");
        std::process::exit(0);
    }
    for r in &regs {
        eprintln!(
            "REGRESSION {:<34} {:>10.3} ms -> {:>10.3} ms  (+{:.1}%, band {:.3} ms)",
            r.key,
            r.base_secs * 1e3,
            r.cur_secs * 1e3,
            r.pct,
            r.band_secs * 1e3
        );
    }
    std::process::exit(1);
}

/// Appends the run's compact JSON to `BENCH_history.jsonl` next to the
/// report, one line per run — the longitudinal record `compare` and the
/// perf trend lines read.
fn append_history(out_path: &Path, doc: &Value) {
    let history = out_path.with_file_name("BENCH_history.jsonl");
    let line = serde_json::to_string(doc).expect("benchmark report serializes infallibly");
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history)
        .and_then(|mut f| writeln!(f, "{line}"));
    match result {
        Ok(()) => println!("history appended: {}", history.display()),
        Err(e) => eprintln!("warning: cannot append {}: {e}", history.display()),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("compare") {
        run_compare(&argv[1..]);
    }

    let mut quick = false;
    let mut repeat = 1usize;
    let mut history = true;
    let mut out_path = PathBuf::from("BENCH_sweeps.json");
    let mut args = argv.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--no-history" => history = false,
            "--repeat" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => repeat = n,
                _ => die("--repeat needs a count of at least 1"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => die("--out needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: rexec-bench [--quick] [--repeat N] [--out PATH] [--no-history]\n\
                            rexec-bench compare BASELINE CURRENT [--iqr-band K] [--min-pct P]"
                );
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let started_unix = unix_secs();
    let run_started = Instant::now();
    let passes: Vec<Vec<StageResult>> = (0..repeat).map(|_| run_suite(quick)).collect();
    let stages = aggregate(passes);

    for s in &stages {
        println!(
            "[{:<9}] {:<28} {:>10.3} ms (iqr {:>8.3})  {:>12.0} {}/s",
            s.stage,
            s.name,
            s.wall_secs * 1e3,
            (s.q3_secs - s.q1_secs) * 1e3,
            s.per_sec(),
            s.unit
        );
    }

    let mut run = BTreeMap::new();
    run.insert("tool".to_string(), "rexec-bench".to_value());
    run.insert("version".to_string(), env!("CARGO_PKG_VERSION").to_value());
    run.insert("quick".to_string(), quick.to_value());
    run.insert("repeat".to_string(), (repeat as u64).to_value());
    run.insert("threads".to_string(), (rayon_threads() as u64).to_value());
    run.insert("started_unix_secs".to_string(), started_unix.to_value());
    run.insert(
        "wall_secs".to_string(),
        run_started.elapsed().as_secs_f64().to_value(),
    );

    let mut doc = BTreeMap::new();
    doc.insert("run".to_string(), Value::Object(run));
    doc.insert(
        "stages".to_string(),
        Value::Array(stages.iter().map(StageResult::to_value).collect()),
    );
    let doc = Value::Object(doc);

    let json = serde_json::to_string_pretty(&doc).expect("benchmark report serializes infallibly");
    // Atomic: a crash mid-write must not leave a truncated report that a
    // later `compare` run would misread as a baseline.
    rexec_harness::atomic_write_simple(&out_path, json.as_bytes()).expect("write benchmark report");
    println!("benchmark report written: {}", out_path.display());
    if history {
        append_history(&out_path, &doc);
    }
}

/// Worker-thread count the parallel stages ran with.
fn rayon_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::finite_ratio;

    #[test]
    fn finite_ratio_rejects_every_non_finite_quotient() {
        assert_eq!(finite_ratio(10.0, 2.0), 5.0);
        assert_eq!(finite_ratio(1.0, 0.0), 0.0);
        assert_eq!(finite_ratio(1.0, -1.0), 0.0);
        assert_eq!(finite_ratio(f64::NAN, 1.0), 0.0);
        assert_eq!(finite_ratio(1.0, f64::NAN), 0.0);
        assert_eq!(finite_ratio(f64::INFINITY, 1.0), 0.0);
        // Regression: a subnormal denominator passes `den > 0.0` but the
        // quotient overflows to +inf — the old input-side guard let it
        // leak into the report.
        assert_eq!(finite_ratio(1.0, f64::from_bits(1)), 0.0);
        assert_eq!(finite_ratio(1.0, f64::INFINITY), 0.0);
    }
}
