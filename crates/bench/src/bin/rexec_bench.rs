//! Tracked benchmark runner: measures the solver, sweep and simulator
//! stages end-to-end and emits a machine-readable `BENCH_sweeps.json`,
//! so every PR records the perf trajectory alongside the paper artifacts.
//!
//! ```text
//! rexec-bench [--quick] [--out PATH]
//!
//!   --quick   CI-sized workloads (seconds, not minutes)
//!   --out     output path (default: BENCH_sweeps.json)
//! ```
//!
//! Stages:
//!
//! * **solver** — candidate-table build time, per-point `solve` vs the
//!   batched `solve_many` over a ρ grid (paper K = 5 and synthetic
//!   K = 20), reported as solves/sec with the batched speedup;
//! * **sweep** — the six Atlas/Crusoe paper-grid figure sweeps and the
//!   §4.2 ρ-tables, reported as points/sec;
//! * **heatmap** — a λ × ρ map, reported as cells/sec;
//! * **simulator** — Monte Carlo pattern replication, reported as
//!   patterns/sec in three sub-stages: `sim_reference` (single-thread
//!   per-attempt loop), `sim_fastpath` (single-thread geometric
//!   sampling, with its speedup over the reference), and
//!   `sim_fastpath_parallel` (rayon fast path, asserted bit-identical
//!   to the sequential fast path); the same trio runs again on a mixed
//!   fail-stop + silent config as `sim_mixed_reference`,
//!   `sim_mixed_fastpath` and `sim_mixed_fastpath_parallel`.
//!
//! Every stage repeats its workload a few times and reports the *best*
//! wall time (least-noise estimator for throughput trend lines).

use rexec_bench::{atlas_crusoe, hera_xscale, synthetic_solver};
use rexec_sim::{Engine, MonteCarlo, SimConfig, Summary};
use rexec_sweep::figure::{lambda_hi_for, sweep_figure_paper_grid, SweepParam};
use rexec_sweep::{rho_table, Grid, Heatmap};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One measured stage: wall time of the best repetition plus throughput.
struct StageResult {
    stage: &'static str,
    name: &'static str,
    /// Best wall time over the repetitions (seconds).
    wall_secs: f64,
    /// Work items processed per repetition (points, cells, solves...).
    items: u64,
    /// What `items` counts.
    unit: &'static str,
    /// Stage-specific extras (e.g. the batched-vs-per-point speedup).
    extra: BTreeMap<String, Value>,
}

impl StageResult {
    /// Items per second; 0 for a zero-duration stage so the JSON report
    /// never contains `inf`/NaN (which downstream parsers misread).
    fn per_sec(&self) -> f64 {
        finite_ratio(self.items as f64, self.wall_secs)
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("stage".to_string(), self.stage.to_value());
        m.insert("name".to_string(), self.name.to_value());
        m.insert("wall_secs".to_string(), self.wall_secs.to_value());
        m.insert("items".to_string(), self.items.to_value());
        m.insert("unit".to_string(), self.unit.to_value());
        m.insert(format!("{}_per_sec", self.unit), self.per_sec().to_value());
        for (k, v) in &self.extra {
            m.insert(k.clone(), v.clone());
        }
        Value::Object(m)
    }
}

/// `num / den` kept finite: a non-positive or non-finite denominator
/// (e.g. a zero-duration reference stage on a coarse clock) yields 0.0
/// instead of leaking `inf`/NaN into `BENCH_sweeps.json`.
fn finite_ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 && num.is_finite() {
        num / den
    } else {
        0.0
    }
}

/// Runs `work` `reps` times and returns the best wall time in seconds.
fn best_of<R>(reps: usize, mut work: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = work();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(r);
    }
    best
}

fn solver_stages(quick: bool, out: &mut Vec<StageResult>) {
    let reps = if quick { 5 } else { 30 };
    // The paper's ρ sweep grid: 51 points over [1.0, 3.5].
    let rho_grid = Grid::linear(1.0, 3.5, 51);
    let rhos = rho_grid.values().to_vec();

    for (name, k) in [("paper_k5", 5usize), ("synthetic_k20", 20)] {
        let solver = if k == 5 {
            hera_xscale().solver().expect("valid configuration")
        } else {
            synthetic_solver(k).expect("valid synthetic model")
        };

        let model = *solver.model();
        let speeds = solver.speeds().clone();
        let build_secs = best_of(reps, || {
            rexec_core::BiCritSolver::new(model, speeds.clone())
        });

        let per_point_secs = best_of(reps, || {
            rhos.iter()
                .map(|&rho| solver.solve(rho))
                .filter(Option::is_some)
                .count()
        });
        let batched_secs = best_of(reps, || solver.solve_many(&rhos));

        let mut extra = BTreeMap::new();
        extra.insert("table_build_secs".to_string(), build_secs.to_value());
        extra.insert("per_point_wall_secs".to_string(), per_point_secs.to_value());
        extra.insert(
            "batched_speedup".to_string(),
            finite_ratio(per_point_secs, batched_secs).to_value(),
        );
        out.push(StageResult {
            stage: "solver",
            name,
            wall_secs: batched_secs,
            items: rhos.len() as u64,
            unit: "solves",
            extra,
        });
    }
}

fn sweep_stages(quick: bool, out: &mut Vec<StageResult>) {
    let reps = if quick { 2 } else { 10 };
    let cfg = atlas_crusoe();
    let lambda_hi = lambda_hi_for(&cfg);

    let mut points = 0u64;
    let figure_secs = best_of(reps, || {
        points = 0;
        for param in SweepParam::ALL {
            let s = sweep_figure_paper_grid(&cfg, param, lambda_hi);
            points += s.points.len() as u64;
        }
    });
    out.push(StageResult {
        stage: "sweep",
        name: "figures_atlas_crusoe",
        wall_secs: figure_secs,
        items: points,
        unit: "points",
        extra: BTreeMap::new(),
    });

    let hera = hera_xscale();
    let mut rows = 0u64;
    let table_secs = best_of(reps, || {
        rows = 0;
        for rho in rexec_sweep::table_rho::PAPER_RHOS {
            rows += rho_table(&hera, rho).rows.len() as u64;
        }
    });
    out.push(StageResult {
        stage: "sweep",
        name: "tables_rho",
        wall_secs: table_secs,
        items: rows,
        unit: "rows",
        extra: BTreeMap::new(),
    });

    let (nl, nr) = if quick { (8, 20) } else { (16, 40) };
    let lambdas = Grid::log(1e-6, 2e-3, nl);
    let rhos = Grid::linear(1.1, 8.0, nr);
    let heatmap_secs = best_of(reps, || Heatmap::compute(&hera, &lambdas, &rhos));
    out.push(StageResult {
        stage: "heatmap",
        name: "hera_xscale_lambda_rho",
        wall_secs: heatmap_secs,
        items: (nl * nr) as u64,
        unit: "cells",
        extra: BTreeMap::new(),
    });
}

/// Benches one config through the reference engine, the sequential fast
/// path and the parallel fast path (asserted bit-identical to the
/// sequential one), pushing the three named stages.
fn simulator_trio(
    quick: bool,
    out: &mut Vec<StageResult>,
    cfg: SimConfig,
    names: [&'static str; 3],
) {
    let reps = if quick { 2 } else { 5 };
    let trials: u64 = if quick { 4_000 } else { 40_000 };

    // Single-thread reference engine: the bit-reproducible per-attempt
    // loop, the baseline the fast path's speedup is measured against.
    let reference = MonteCarlo::new(cfg, trials, 2024).with_engine(Engine::Reference);
    let ref_secs = best_of(reps, || {
        reference
            .run_sequential()
            .expect("benchmark config is valid")
    });
    out.push(StageResult {
        stage: "simulator",
        name: names[0],
        wall_secs: ref_secs,
        items: trials,
        unit: "patterns",
        extra: BTreeMap::new(),
    });

    // Single-thread closed-form fast path over the same config and seed.
    let fast = MonteCarlo::new(cfg, trials, 2024).with_engine(Engine::FastPath);
    let fast_secs = best_of(reps, || {
        fast.run_sequential().expect("benchmark config is valid")
    });
    let mut extra = BTreeMap::new();
    extra.insert(
        "speedup_vs_reference".to_string(),
        finite_ratio(ref_secs, fast_secs).to_value(),
    );
    out.push(StageResult {
        stage: "simulator",
        name: names[1],
        wall_secs: fast_secs,
        items: trials,
        unit: "patterns",
        extra,
    });

    // Multi-thread fast path; its Summary must stay bit-identical to the
    // sequential run (chunked RNG streams + order-preserving reduction).
    let seq_summary = fast.run_sequential().expect("benchmark config is valid");
    let before = rexec_obs::global().counter("sim.patterns").get();
    let mut par_summary = Summary::default();
    let par_secs = best_of(reps, || {
        par_summary = fast.run().expect("benchmark config is valid");
    });
    let patterns = rexec_obs::global().counter("sim.patterns").get() - before;
    assert_eq!(
        par_summary, seq_summary,
        "parallel fast path diverged from the sequential fast path"
    );
    let mut extra = BTreeMap::new();
    extra.insert("patterns_total".to_string(), patterns.to_value());
    extra.insert(
        "speedup_vs_reference".to_string(),
        finite_ratio(ref_secs, par_secs).to_value(),
    );
    out.push(StageResult {
        stage: "simulator",
        name: names[2],
        wall_secs: par_secs,
        items: trials,
        unit: "patterns",
        extra,
    });
}

fn simulator_stage(quick: bool, out: &mut Vec<StageResult>) {
    let model = hera_xscale().silent_model().expect("valid configuration");
    // The ρ = 3 optimum (σ1 = σ2 = 0.4, Wopt ≈ 2764) with a fast
    // re-execution speed, so the two-speed path is exercised.
    let silent_cfg = SimConfig::from_silent_model(&model, 2764.0, 0.4, 0.8);
    simulator_trio(
        quick,
        out,
        silent_cfg,
        ["sim_reference", "sim_fastpath", "sim_fastpath_parallel"],
    );

    // Mixed fail-stop + silent errors at §5 rates: exercises the
    // three-way categorical fast path instead of the geometric one.
    let mm = rexec_core::MixedModel::new(
        rexec_core::ErrorRates::new(8e-5, 5e-5).expect("valid rates"),
        model.costs,
        model.power,
    );
    let mixed_cfg = SimConfig::from_mixed_model(&mm, 3000.0, 0.6, 1.0);
    simulator_trio(
        quick,
        out,
        mixed_cfg,
        [
            "sim_mixed_reference",
            "sim_mixed_fastpath",
            "sim_mixed_fastpath_parallel",
        ],
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn main() {
    let mut quick = false;
    let mut out_path = PathBuf::from("BENCH_sweeps.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => die("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: rexec-bench [--quick] [--out PATH]");
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let started_unix = unix_secs();
    let run_started = Instant::now();
    let mut stages: Vec<StageResult> = vec![];
    solver_stages(quick, &mut stages);
    sweep_stages(quick, &mut stages);
    simulator_stage(quick, &mut stages);

    for s in &stages {
        println!(
            "[{:<9}] {:<28} {:>10.3} ms   {:>12.0} {}/s",
            s.stage,
            s.name,
            s.wall_secs * 1e3,
            s.per_sec(),
            s.unit
        );
    }

    let mut run = BTreeMap::new();
    run.insert("tool".to_string(), "rexec-bench".to_value());
    run.insert("version".to_string(), env!("CARGO_PKG_VERSION").to_value());
    run.insert("quick".to_string(), quick.to_value());
    run.insert("threads".to_string(), (rayon_threads() as u64).to_value());
    run.insert("started_unix_secs".to_string(), started_unix.to_value());
    run.insert(
        "wall_secs".to_string(),
        run_started.elapsed().as_secs_f64().to_value(),
    );

    let mut doc = BTreeMap::new();
    doc.insert("run".to_string(), Value::Object(run));
    doc.insert(
        "stages".to_string(),
        Value::Array(stages.iter().map(StageResult::to_value).collect()),
    );

    let json = serde_json::to_string_pretty(&Value::Object(doc))
        .expect("benchmark report serializes infallibly");
    // Atomic: a crash mid-write must not leave a truncated report that a
    // later `--check` run would misread as a baseline.
    rexec_harness::atomic_write_simple(&out_path, json.as_bytes()).expect("write benchmark report");
    println!("benchmark report written: {}", out_path.display());
}

/// Worker-thread count the parallel stages ran with.
fn rayon_threads() -> usize {
    rayon::current_num_threads()
}
