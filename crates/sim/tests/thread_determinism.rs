//! Byte-level determinism of the batched fast paths across thread
//! counts and range partitions.
//!
//! The fast path draws through chunked, buffered RNG streams with
//! batched log transforms; this test pins the contract that none of
//! that batching is observable: `run`, `run_sequential`, and any
//! chunk-respecting composition of `run_range` produce **byte-identical
//! serialized summaries** (and identical absorbed counter aggregates)
//! whether the pool has 1, 2, or 7 workers.
//!
//! Everything lives in one `#[test]` because `RAYON_NUM_THREADS` is
//! process-global state — parallel test functions mutating it would
//! race. The vendored rayon re-reads the variable on every parallel
//! call, so setting it between runs takes effect immediately.

use rexec_core::{ErrorRates, MixedModel, PowerModel, ResilienceCosts, SilentModel};
use rexec_sim::engine::SimConfig;
use rexec_sim::runner::{Engine, MonteCarlo};

fn silent_cfg() -> SimConfig {
    let model = SilentModel::new(
        3.38e-6,
        ResilienceCosts::symmetric(300.0, 15.4),
        PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
    )
    .unwrap();
    SimConfig::from_silent_model(&model, 2764.0, 0.4, 0.8)
}

fn mixed_cfg() -> SimConfig {
    let mm = MixedModel::new(
        ErrorRates::new(8e-5, 5e-5).unwrap(),
        ResilienceCosts::symmetric(300.0, 15.4),
        PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
    );
    SimConfig::from_mixed_model(&mm, 3000.0, 0.6, 1.0)
}

/// Serializes a summary to its exact JSON byte string — equality of
/// these strings is equality of every `f64` bit pattern in the summary.
fn bytes(s: &rexec_sim::runner::Summary) -> String {
    serde_json::to_string(s).unwrap()
}

#[test]
fn summaries_are_byte_identical_across_thread_counts() {
    // 5000 trials: 19 full chunks plus a partial, so both the chunk
    // interior and the tail replay paths run.
    const TRIALS: u64 = 5000;
    for cfg in [silent_cfg(), mixed_cfg()] {
        let mc = MonteCarlo::new(cfg, TRIALS, 2024).with_engine(Engine::FastPath);

        // Sequential baseline, no pool involved.
        let baseline = bytes(&mc.run_sequential().unwrap());

        for threads in ["1", "2", "7"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);

            let parallel = bytes(&mc.run().unwrap());
            assert_eq!(
                parallel, baseline,
                "run() diverged from run_sequential() at {threads} threads"
            );

            // Chunk-aligned left-to-right glue: bit-identical to a
            // single run by the runner's contract, which asks that
            // every range after the first be one 256-trial chunk (the
            // glue then replays `run`'s exact left-fold).
            let glued = mc
                .run_range(0, 4608)
                .unwrap()
                .merge(mc.run_range(4608, 4864).unwrap())
                .merge(mc.run_range(4864, TRIALS).unwrap());
            assert_eq!(
                bytes(&glued),
                baseline,
                "chunk-aligned run_range glue diverged at {threads} threads"
            );

            // A partition that splits *inside* chunks still covers the
            // same trials with the same per-chunk streams; its moments
            // merge in a different tree shape, so check the exact
            // fields: counts and extremes are bit-exact, means agree to
            // a relative 1e-9 (the runner's documented bound).
            let a = mc.run_range(0, 777).unwrap();
            let b = mc.run_range(777, TRIALS).unwrap();
            let split = a.merge(b);
            let full = mc.run_sequential().unwrap();
            assert_eq!(split.time.count(), full.time.count());
            assert_eq!(split.time.min().to_bits(), full.time.min().to_bits());
            assert_eq!(split.time.max().to_bits(), full.time.max().to_bits());
            for (got, want) in [
                (split.time.mean(), full.time.mean()),
                (split.energy.mean(), full.energy.mean()),
                (split.attempts.mean(), full.attempts.mean()),
            ] {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs(),
                    "mid-chunk split mean {got} vs {want} at {threads} threads"
                );
            }
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}

#[test]
fn fastpath_summary_matches_itself_from_clean_process_state() {
    // Guard against accidental global-state coupling: two identically
    // seeded drivers must serialize identically even when other tests
    // in this binary have already exercised the obs registry.
    let mc = MonteCarlo::new(mixed_cfg(), 1024, 7).with_engine(Engine::FastPath);
    assert_eq!(
        bytes(&mc.run_sequential().unwrap()),
        bytes(&mc.run_sequential().unwrap())
    );
}
