//! The `AttemptLaw` determinism contract, pinned for *every* sampler —
//! not just the geometric fast paths.
//!
//! Any attempt law the runner can drive (silent fast path, mixed fast
//! path, and the per-attempt scenario engine under Weibull, lognormal,
//! or a re-execution speed schedule) must keep `run`,
//! `run_sequential`, and any chunk-respecting composition of
//! `run_range` **byte-identical** regardless of the rayon pool size.
//! The scenario samplers draw per-trial ChaCha streams exactly like the
//! fast path, so the same gluing rules apply; this test is what keeps
//! that true as new laws are added.
//!
//! Everything lives in one `#[test]` because `RAYON_NUM_THREADS` is
//! process-global state — parallel test functions mutating it would
//! race. The vendored rayon re-reads the variable on every parallel
//! call, so setting it between runs takes effect immediately.

use rexec_core::{
    ErrorLaw, ErrorRates, MixedModel, PowerModel, ResilienceCosts, SilentModel, SpeedSchedule,
};
use rexec_sim::engine::SimConfig;
use rexec_sim::runner::{MonteCarlo, Summary};

fn silent_cfg() -> SimConfig {
    let model = SilentModel::new(
        1e-4,
        ResilienceCosts::symmetric(300.0, 15.4),
        PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
    )
    .unwrap();
    SimConfig::from_silent_model(&model, 2764.0, 0.4, 0.8)
}

fn mixed_cfg() -> SimConfig {
    let mm = MixedModel::new(
        ErrorRates::new(8e-5, 5e-5).unwrap(),
        ResilienceCosts::symmetric(300.0, 15.4),
        PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
    );
    SimConfig::from_mixed_model(&mm, 3000.0, 0.6, 1.0)
}

/// Serializes a summary to its exact JSON byte string — equality of
/// these strings is equality of every `f64` bit pattern in the summary.
fn bytes(s: &Summary) -> String {
    serde_json::to_string(s).unwrap()
}

/// Asserts the full determinism contract for one configured driver:
/// sequential baseline == parallel run at 1/2/7 threads == chunk-aligned
/// `run_range` glue, all at the byte level. Generic over however the
/// `MonteCarlo` was built, so every `AttemptLaw` impl (and any future
/// one) is checked by the same code path.
fn assert_determinism_contract(label: &str, mc: &MonteCarlo) {
    const TRIALS: u64 = 5000;
    let baseline = bytes(&mc.run_sequential().unwrap());

    for threads in ["1", "2", "7"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);

        let parallel = bytes(&mc.run().unwrap());
        assert_eq!(
            parallel, baseline,
            "[{label}] run() diverged from run_sequential() at {threads} threads"
        );

        // Chunk-aligned left-to-right glue: every range after the first
        // is chunk-sized, so the merge replays run()'s exact left-fold.
        let glued = mc
            .run_range(0, 4608)
            .unwrap()
            .merge(mc.run_range(4608, 4864).unwrap())
            .merge(mc.run_range(4864, TRIALS).unwrap());
        assert_eq!(
            bytes(&glued),
            baseline,
            "[{label}] chunk-aligned run_range glue diverged at {threads} threads"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn every_attempt_law_keeps_the_byte_determinism_contract() {
    const TRIALS: u64 = 5000;
    const SEED: u64 = 2024;

    let drivers: Vec<(&str, MonteCarlo)> = vec![
        (
            "silent fast path",
            MonteCarlo::new(silent_cfg(), TRIALS, SEED),
        ),
        (
            "mixed fast path",
            MonteCarlo::new(mixed_cfg(), TRIALS, SEED),
        ),
        (
            "weibull scenario",
            MonteCarlo::new(silent_cfg(), TRIALS, SEED).with_law(ErrorLaw::Weibull { shape: 0.7 }),
        ),
        (
            "lognormal scenario",
            MonteCarlo::new(silent_cfg(), TRIALS, SEED)
                .with_law(ErrorLaw::LogNormal { sigma: 1.0 }),
        ),
        (
            "schedule scenario",
            MonteCarlo::new(silent_cfg(), TRIALS, SEED)
                .with_schedule(SpeedSchedule::new(0.4, vec![0.6, 1.0]).unwrap()),
        ),
    ];

    for (label, mc) in &drivers {
        assert_determinism_contract(label, mc);
    }
}
