//! Event vocabulary of the simulated execution (for traces and debugging).

use serde::{Deserialize, Serialize};

/// What happened at a point of the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Computation of a `W` chunk started at the given speed.
    WorkStart {
        /// DVFS speed of this attempt.
        speed: f64,
    },
    /// A silent error struck (latent — execution continues).
    SilentErrorStruck,
    /// A fail-stop error struck (execution aborts immediately).
    FailStopError,
    /// Verification started at the given speed.
    VerificationStart {
        /// DVFS speed of this attempt.
        speed: f64,
    },
    /// Verification passed: the pattern output is correct.
    VerificationOk,
    /// Verification detected a silent error.
    VerificationFailed,
    /// Checkpoint started.
    CheckpointStart,
    /// Checkpoint completed; the pattern is committed.
    CheckpointDone,
    /// Recovery (rollback to the last checkpoint) started.
    RecoveryStart,
    /// Recovery completed.
    RecoveryDone,
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time (s) at which the event occurred.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    pub fn new(time: f64, kind: EventKind) -> Self {
        Event { time, kind }
    }

    /// Short label used by the ASCII timeline renderer.
    pub fn label(&self) -> &'static str {
        match self.kind {
            EventKind::WorkStart { .. } => "W",
            EventKind::SilentErrorStruck => "*",
            EventKind::FailStopError => "X",
            EventKind::VerificationStart { .. } => "V",
            EventKind::VerificationOk => "v+",
            EventKind::VerificationFailed => "v-",
            EventKind::CheckpointStart => "C",
            EventKind::CheckpointDone => "c.",
            EventKind::RecoveryStart => "R",
            EventKind::RecoveryDone => "r.",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinctive() {
        let kinds = [
            EventKind::WorkStart { speed: 1.0 },
            EventKind::SilentErrorStruck,
            EventKind::FailStopError,
            EventKind::VerificationStart { speed: 1.0 },
            EventKind::VerificationOk,
            EventKind::VerificationFailed,
            EventKind::CheckpointStart,
            EventKind::CheckpointDone,
            EventKind::RecoveryStart,
            EventKind::RecoveryDone,
        ];
        let mut labels: Vec<_> = kinds.iter().map(|k| Event::new(0.0, *k).label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn serde_round_trip() {
        let e = Event::new(12.5, EventKind::WorkStart { speed: 0.4 });
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
