//! # rexec-sim
//!
//! Discrete-event Monte Carlo simulator of the paper's execution model:
//! divisible-load patterns (`W` work → verification → checkpoint) executed
//! at DVFS speed `σ₁`, re-executed at `σ₂` after every detected error,
//! under exponential silent and fail-stop error injection, with full
//! time and energy metering.
//!
//! The simulator replays exactly the state machine the analytic
//! expectations of `rexec-core` describe:
//!
//! * **silent errors** strike during the `W/σ` computation phase and stay
//!   latent until the verification at the end of the pattern detects them;
//! * **fail-stop errors** strike anywhere in the `(W+V)/σ` computation +
//!   verification phase and interrupt the execution immediately;
//! * checkpoints (`C`) and recoveries (`R`) are error-free;
//! * power: `κσ³ + Pidle` while computing/verifying at `σ`,
//!   `Pio + Pidle` during checkpoint/recovery.
//!
//! Sampled mean time/energy per pattern converge to Propositions 2–5,
//! which is asserted by the statistical test-suite. Replications fan out
//! in parallel with rayon; every run is reproducible from a `u64` seed.

#![warn(missing_docs)]
pub mod energy;
pub mod engine;
pub mod events;
pub mod fastmath;
pub mod histogram;
pub mod rng;
pub mod runner;
pub mod segmented;
pub mod stats;
pub mod trace;

pub use energy::EnergyMeter;
pub use engine::{
    ensure_completes, ensure_scenario_completes, fast_path_eligible, simulate_application,
    simulate_pattern, simulate_pattern_fast, simulate_pattern_scenario,
    simulate_pattern_scenario_traced, AppOutcome, EngineError, FastPattern, MixedFastPattern,
    PatternOutcome, SimConfig,
};
pub use events::{Event, EventKind};
pub use histogram::Histogram;
pub use rng::{SimRng, UniformStream};
pub use runner::{Engine, MonteCarlo, Summary, ValidationReport};
pub use segmented::simulate_pattern_segmented;
pub use stats::Stats;
pub use trace::{events_from_jsonl, events_to_jsonl, render_timeline, TraceRecorder};

/// Common re-exports.
pub mod prelude {
    pub use crate::energy::EnergyMeter;
    pub use crate::engine::{
        ensure_completes, ensure_scenario_completes, fast_path_eligible, simulate_application,
        simulate_pattern, simulate_pattern_fast, simulate_pattern_scenario,
        simulate_pattern_scenario_traced, AppOutcome, EngineError, FastPattern, MixedFastPattern,
        PatternOutcome, SimConfig,
    };
    pub use crate::events::{Event, EventKind};
    pub use crate::histogram::Histogram;
    pub use crate::rng::{SimRng, UniformStream};
    pub use crate::runner::{Engine, MonteCarlo, Summary, ValidationReport};
    pub use crate::segmented::simulate_pattern_segmented;
    pub use crate::stats::Stats;
    pub use crate::trace::{events_from_jsonl, events_to_jsonl, render_timeline, TraceRecorder};
}
