//! Deterministic random-number generation for the simulator.
//!
//! A thin wrapper around ChaCha8 (fast, high-quality, reproducible across
//! platforms) exposing exactly the draws the engine needs: exponential
//! inter-arrival times of the two Poisson error processes. Seed-splitting
//! derives independent per-trial streams from a master seed so that a
//! parallel Monte Carlo run is bit-identical to a sequential one.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Simulator RNG: reproducible, splittable.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates an RNG from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream for trial `index` from `seed`.
    ///
    /// Uses ChaCha's stream separation rather than seed arithmetic, so
    /// streams never overlap regardless of how much each trial consumes.
    pub fn for_trial(seed: u64, index: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(index.wrapping_add(1));
        SimRng { inner: rng }
    }

    /// Uniform draw in `(0, 1]` (never exactly 0, so `ln` is finite).
    #[inline]
    pub fn uniform_open(&mut self) -> f64 {
        // `random::<f64>()` is in [0, 1); flip to (0, 1].
        1.0 - self.inner.random::<f64>()
    }

    /// Exponential draw with rate `lambda` (mean `1/λ`).
    ///
    /// Returns `+∞` for `lambda ≤ 0` — an error source that never fires.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return f64::INFINITY;
        }
        -self.uniform_open().ln() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_open(), b.uniform_open());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..10)
            .filter(|_| a.uniform_open() == b.uniform_open())
            .count();
        assert!(same < 10);
    }

    #[test]
    fn trial_streams_are_independent_and_reproducible() {
        let mut t0 = SimRng::for_trial(7, 0);
        let mut t1 = SimRng::for_trial(7, 1);
        let x0: Vec<f64> = (0..5).map(|_| t0.uniform_open()).collect();
        let x1: Vec<f64> = (0..5).map(|_| t1.uniform_open()).collect();
        assert_ne!(x0, x1);
        let mut t0b = SimRng::for_trial(7, 0);
        let x0b: Vec<f64> = (0..5).map(|_| t0b.uniform_open()).collect();
        assert_eq!(x0, x0b);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::new(123);
        let lambda = 0.25;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(lambda)).sum();
        let mean = sum / n as f64;
        // Standard error is (1/λ)/√n ≈ 0.009; allow 5σ.
        assert!((mean - 4.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn exponential_zero_rate_never_fires() {
        let mut rng = SimRng::new(5);
        assert!(rng.exponential(0.0).is_infinite());
        assert!(rng.exponential(-1.0).is_infinite());
    }

    #[test]
    fn uniform_open_is_in_half_open_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let u = rng.uniform_open();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn exponential_draws_are_positive_and_finite() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.exponential(1e-6);
            assert!(x > 0.0 && x.is_finite());
        }
    }
}
