//! Deterministic random-number generation for the simulator.
//!
//! A thin wrapper around ChaCha8 (fast, high-quality, reproducible across
//! platforms) exposing exactly the draws the engine needs: exponential
//! inter-arrival times of the two Poisson error processes. Seed-splitting
//! derives independent streams from a master seed so that a parallel
//! Monte Carlo run is bit-identical to a sequential one.
//!
//! Two stream granularities exist, in disjoint stream-id namespaces:
//!
//! * [`SimRng::for_trial`] — one stream per trial (stream ids
//!   `1..=trials`), used by the bit-reproducible reference engine;
//! * [`SimRng::for_chunk`] — one stream per fixed-size trial *chunk*
//!   (stream ids `2⁶³ | chunk`), used by the fast path so the cipher
//!   setup is amortized over a whole chunk instead of paid per trial.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Stream-id namespace tag for chunk streams: chunk streams live in the
/// top half of the 64-bit stream space, trial streams (`index + 1`) in
/// the bottom half, so the two granularities never collide for the same
/// master seed.
const CHUNK_STREAM_BASE: u64 = 1 << 63;

/// Simulator RNG: reproducible, splittable.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Creates an RNG from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream for trial `index` from `seed`.
    ///
    /// Uses ChaCha's stream separation (the 64-bit nonce words of the
    /// cipher state) rather than seed arithmetic, so streams never
    /// overlap regardless of how much each trial consumes: two streams
    /// with different nonces generate disjoint keystreams for the whole
    /// 2⁶⁴-block counter range.
    ///
    /// **Cost cliff**: every call builds a fresh cipher — a 32-byte key
    /// expansion from `seed` plus a block generation on first draw
    /// (~a few hundred ns). That is fine once per *trial*; it is a cost
    /// cliff if paid per *draw*, and it is exactly the per-trial setup
    /// the chunked [`for_chunk`](Self::for_chunk) streams amortize away
    /// in the simulator fast path.
    #[inline]
    pub fn for_trial(seed: u64, index: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(index.wrapping_add(1));
        SimRng { inner: rng }
    }

    /// Derives an independent stream for trial-chunk `chunk` from `seed`.
    ///
    /// One cipher serves every trial of the chunk, so the per-trial setup
    /// cost of [`for_trial`](Self::for_trial) is paid once per chunk.
    /// Chunk streams are tagged into the top half of the stream-id space
    /// ([`CHUNK_STREAM_BASE`]); trial streams use `1..=trials`, so the
    /// two namespaces are disjoint for any realistic trial count
    /// (`< 2⁶³`), and distinct chunks get distinct nonces — their
    /// keystreams never overlap no matter how many draws a chunk makes.
    #[inline]
    pub fn for_chunk(seed: u64, chunk: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(CHUNK_STREAM_BASE | chunk);
        SimRng { inner: rng }
    }

    /// Uniform draw in `(0, 1]` (never exactly 0, so `ln` is finite).
    #[inline]
    pub fn uniform_open(&mut self) -> f64 {
        // `random::<f64>()` is in [0, 1); flip to (0, 1].
        1.0 - self.inner.random::<f64>()
    }

    /// Fills `out` with uniform draws in `(0, 1]`, bit-identical in
    /// value and order to repeated [`uniform_open`](Self::uniform_open)
    /// calls (pinned by test). Draws the raw `u64`s through the cipher's
    /// lane-parallel bulk path — whole keystream blocks generated SIMD
    /// side by side — and applies the same 53-bit mapping `rand` uses,
    /// so bulk consumers skip both the per-call cipher machinery and the
    /// scalar one-block-at-a-time keystream.
    #[inline]
    pub fn fill_uniform(&mut self, out: &mut [f64]) {
        let mut words = [0u64; 128];
        for span in out.chunks_mut(words.len()) {
            let words = &mut words[..span.len()];
            self.inner.fill_u64(words);
            for (slot, &w) in span.iter_mut().zip(words.iter()) {
                // `random::<f64>()` is (w >> 11)·2⁻⁵³ ∈ [0, 1); flip to
                // (0, 1] — identical to `uniform_open` per draw.
                *slot = 1.0 - (w >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            }
        }
    }

    /// Exponential draw with rate `lambda` (mean `1/λ`).
    ///
    /// Returns `+∞` for `lambda ≤ 0` — an error source that never fires.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return f64::INFINITY;
        }
        -self.uniform_open().ln() / lambda
    }
}

/// Buffered view over one RNG stream: draws come from a small local
/// array refilled in batches via [`SimRng::fill_uniform`], so the hot
/// loop touches the cipher once per [`UniformStream::BUF`] draws instead
/// of once per draw. Each refill also precomputes the natural log of the
/// whole batch in one [`crate::fastmath::ln_sweep`] pass — a vectorized
/// slice transform instead of a scalar libm call per draw — so the
/// inverse-CDF samplers read `(u, ln u)` pairs at buffer-indexing cost
/// via [`next_uniform_ln`](Self::next_uniform_ln). Unconsumed buffered
/// draws are simply discarded when the stream is dropped — each chunk
/// owns its whole stream, so no other consumer ever observes the gap.
#[derive(Debug)]
pub struct UniformStream {
    rng: SimRng,
    buf: [f64; Self::BUF],
    ln_buf: [f64; Self::BUF],
    pos: usize,
    /// Draws below this index have their logs materialized in `ln_buf`.
    /// The log sweep runs a [`Self::SWEEP`]-slot stripe at a time, so a
    /// chunk that stops mid-buffer (every chunk does, eventually) pays
    /// for at most one partial stripe of unread logs instead of a full
    /// buffer's worth.
    swept: usize,
}

impl UniformStream {
    /// Draws buffered per refill: one lane-parallel cipher group
    /// (sixteen 16-word blocks = 128 `u64` draws), so every refill is a
    /// single full-width bulk generation.
    pub const BUF: usize = 128;

    /// Log-sweep stripe width: wide enough that the sweep runs at full
    /// SIMD throughput, narrow enough that the logs wasted on a stream's
    /// final partial stripe stay small.
    const SWEEP: usize = 32;

    /// Wraps an RNG stream (typically [`SimRng::for_chunk`]).
    pub fn new(rng: SimRng) -> Self {
        UniformStream {
            rng,
            buf: [0.0; Self::BUF],
            ln_buf: [0.0; Self::BUF],
            pos: Self::BUF,
            swept: Self::BUF,
        }
    }

    /// Out-of-line on purpose: with the bulk generation and log sweep
    /// forced cold, the per-draw accessors shrink to a compare and two
    /// loads, small enough to inline into the sampling loops (inlined
    /// `refill` bodies previously dragged the whole cipher into the
    /// accessors and pushed them past the inlining threshold, costing a
    /// real call per draw).
    #[cold]
    #[inline(never)]
    fn advance(&mut self) {
        if self.pos == Self::BUF {
            self.rng.fill_uniform(&mut self.buf);
            self.pos = 0;
            self.swept = 0;
        }
        // Uniforms are in (0, 1] — inside fastmath's positive-normal
        // domain (the smallest possible draw is 2⁻⁵³).
        let stripe = self.swept..self.swept + Self::SWEEP;
        crate::fastmath::ln_sweep(&self.buf[stripe.clone()], &mut self.ln_buf[stripe]);
        self.swept += Self::SWEEP;
    }

    /// Next uniform draw in `(0, 1]`, identical in value and order to
    /// calling [`SimRng::uniform_open`] directly on the wrapped stream.
    #[inline]
    pub fn next_uniform(&mut self) -> f64 {
        if self.pos == self.swept {
            self.advance();
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        x
    }

    /// Next uniform draw paired with its precomputed natural log
    /// (`fastmath::ln`, a few ulp from libm — see the module docs for
    /// the accuracy contract). Consumes exactly one draw, so mixing
    /// [`next_uniform`](Self::next_uniform) and this call preserves the
    /// stream's draw order.
    #[inline]
    pub fn next_uniform_ln(&mut self) -> (f64, f64) {
        if self.pos == self.swept {
            self.advance();
        }
        let pair = (self.buf[self.pos], self.ln_buf[self.pos]);
        self.pos += 1;
        pair
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_open(), b.uniform_open());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..10)
            .filter(|_| a.uniform_open() == b.uniform_open())
            .count();
        assert!(same < 10);
    }

    #[test]
    fn trial_streams_are_independent_and_reproducible() {
        let mut t0 = SimRng::for_trial(7, 0);
        let mut t1 = SimRng::for_trial(7, 1);
        let x0: Vec<f64> = (0..5).map(|_| t0.uniform_open()).collect();
        let x1: Vec<f64> = (0..5).map(|_| t1.uniform_open()).collect();
        assert_ne!(x0, x1);
        let mut t0b = SimRng::for_trial(7, 0);
        let x0b: Vec<f64> = (0..5).map(|_| t0b.uniform_open()).collect();
        assert_eq!(x0, x0b);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = SimRng::new(123);
        let lambda = 0.25;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(lambda)).sum();
        let mean = sum / n as f64;
        // Standard error is (1/λ)/√n ≈ 0.009; allow 5σ.
        assert!((mean - 4.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn exponential_zero_rate_never_fires() {
        let mut rng = SimRng::new(5);
        assert!(rng.exponential(0.0).is_infinite());
        assert!(rng.exponential(-1.0).is_infinite());
    }

    #[test]
    fn uniform_open_is_in_half_open_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let u = rng.uniform_open();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn exponential_draws_are_positive_and_finite() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.exponential(1e-6);
            assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn fill_uniform_matches_repeated_uniform_open() {
        let mut a = SimRng::for_chunk(3, 5);
        let mut b = SimRng::for_chunk(3, 5);
        let mut batch = [0.0; 100];
        a.fill_uniform(&mut batch);
        for (i, &x) in batch.iter().enumerate() {
            assert_eq!(x, b.uniform_open(), "draw {i} diverged");
            assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn uniform_stream_matches_unbuffered_draws() {
        // Buffer refills at BUF-draw boundaries must be invisible.
        let mut buffered = UniformStream::new(SimRng::for_chunk(17, 2));
        let mut plain = SimRng::for_chunk(17, 2);
        for i in 0..(3 * UniformStream::BUF + 7) {
            assert_eq!(buffered.next_uniform(), plain.uniform_open(), "draw {i}");
        }
    }

    #[test]
    fn uniform_ln_pairs_preserve_draw_order_and_log_values() {
        // Interleaving plain and (u, ln u) reads must walk the same
        // stream, and each precomputed log must be fastmath::ln of its
        // own draw.
        let mut paired = UniformStream::new(SimRng::for_chunk(23, 6));
        let mut plain = SimRng::for_chunk(23, 6);
        for i in 0..(3 * UniformStream::BUF + 5) {
            if i % 3 == 0 {
                assert_eq!(paired.next_uniform(), plain.uniform_open(), "draw {i}");
            } else {
                let (u, ln_u) = paired.next_uniform_ln();
                assert_eq!(u, plain.uniform_open(), "draw {i}");
                assert_eq!(ln_u.to_bits(), crate::fastmath::ln(u).to_bits(), "log {i}");
            }
        }
    }

    /// Stream-separation invariant: chunk streams use distinct ChaCha
    /// nonces, so no chunk's keystream may reproduce another's across
    /// chunk boundaries, and the chunk namespace (`2⁶³ | chunk`) must be
    /// disjoint from the trial namespace (`index + 1`).
    #[test]
    fn chunk_streams_never_overlap() {
        use std::collections::HashSet;
        let seed = 2024;
        let per_stream = 512;
        let mut seen: HashSet<u64> = HashSet::new();
        for chunk in 0..8u64 {
            let mut rng = SimRng::for_chunk(seed, chunk);
            for draw in 0..per_stream {
                // An overlap between streams would replay whole 16-word
                // cipher blocks, i.e. massive bit-exact duplication; with
                // disjoint keystreams a 64-bit collision among 4096+4096
                // draws has probability ~2⁻⁴³.
                assert!(
                    seen.insert(rng.uniform_open().to_bits()),
                    "chunk {chunk} draw {draw} duplicated an earlier draw"
                );
            }
        }
        // Trial streams must not alias any chunk stream either.
        for trial in 0..8u64 {
            let mut rng = SimRng::for_trial(seed, trial);
            for draw in 0..per_stream {
                assert!(
                    seen.insert(rng.uniform_open().to_bits()),
                    "trial {trial} draw {draw} aliased a chunk stream"
                );
            }
        }
    }

    #[test]
    fn chunk_streams_are_reproducible() {
        let mut a = SimRng::for_chunk(9, 4);
        let mut b = SimRng::for_chunk(9, 4);
        for _ in 0..100 {
            assert_eq!(a.uniform_open(), b.uniform_open());
        }
    }
}
