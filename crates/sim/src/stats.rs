//! Online summary statistics (Welford) with confidence intervals.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Stats {
    /// An empty accumulator (`min = +∞`, `max = −∞`, so the first `push`
    /// or `merge` sets the true extremes — a derived `Default` would
    /// silently report `min() = 0`).
    fn default() -> Self {
        Stats::new()
    }
}

impl Stats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Stats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulator of `n` copies of `x` in O(1): mean `x`, zero spread.
    /// Merging it is mathematically identical to `n` successive
    /// [`push`](Self::push)`(x)` calls (the Chan update with `m2 = 0`),
    /// which lets hot loops batch a dominant repeated outcome instead of
    /// paying the Welford update per observation.
    pub fn repeated(x: f64, n: u64) -> Self {
        if n == 0 {
            return Stats::new();
        }
        Stats {
            n,
            mean: x,
            m2: 0.0,
            min: x,
            max: x,
        }
    }

    /// Builds the accumulator from raw power sums: `n` observations with
    /// total `sum`, squared total `sumsq`, and exact extremes. The
    /// centered moment is recovered as `m2 = sumsq − sum²/n`, clamped at
    /// zero — mathematically identical to folding the observations
    /// through [`push`](Self::push), with a relative error of order
    /// `ε·sumsq/m2`. That quotient is only dangerous when the spread is
    /// tiny against the magnitude; the intended caller accumulates
    /// bounded-count per-chunk partials (≤ a few hundred same-scale
    /// simulation outcomes), where it stays within a few ulp. The raw
    /// sums exist so hot loops can fold three adds and a fused
    /// multiply-add per observation instead of Welford's loop-carried
    /// `sub → div → add` running-mean chain.
    pub fn from_power_sums(n: u64, sum: f64, sumsq: f64, min: f64, max: f64) -> Stats {
        if n == 0 {
            return Stats::new();
        }
        let mean = sum / n as f64;
        let m2 = (sumsq - sum * mean).max(0.0);
        Stats {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Stats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Symmetric normal-approximation confidence interval at `z` standard
    /// errors (z = 2.576 → 99 %).
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_error();
        (self.mean - half, self.mean + half)
    }

    /// Whether `value` lies inside the `z`-standard-error interval.
    pub fn contains(&self, value: f64, z: f64) -> bool {
        let (lo, hi) = self.confidence_interval(z);
        lo <= value && value <= hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let mut s = Stats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance (n−1): 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Stats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = Stats::new();
        let mut b = Stats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Stats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s;
        s.merge(&Stats::new());
        assert_eq!(s, before);
        let mut e = Stats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let mut s = Stats::new();
        for i in 0..1000 {
            s.push((i % 10) as f64);
        }
        let (lo, hi) = s.confidence_interval(2.576);
        assert!(lo < s.mean() && s.mean() < hi);
        assert!(s.contains(s.mean(), 2.576));
        assert!(!s.contains(s.mean() + 10.0, 2.576));
    }

    #[test]
    fn default_equals_new_with_infinite_extremes() {
        // Regression: a derived Default would report min() = 0 for an
        // accumulator that then receives only larger values via merge.
        let mut d = Stats::default();
        assert_eq!(d, Stats::new());
        let mut src = Stats::new();
        src.push(7248.5);
        d.merge(&src);
        assert_eq!(d.min(), 7248.5);
        assert_eq!(d.max(), 7248.5);
    }

    #[test]
    fn repeated_matches_pushed_copies() {
        let mut pushed = Stats::new();
        for _ in 0..1000 {
            pushed.push(7.25);
        }
        let batched = Stats::repeated(7.25, 1000);
        assert_eq!(batched.count(), pushed.count());
        assert!((batched.mean() - pushed.mean()).abs() < 1e-12);
        assert_eq!(batched.variance(), 0.0);
        assert_eq!(batched.min(), pushed.min());
        assert_eq!(batched.max(), pushed.max());
        assert_eq!(Stats::repeated(7.25, 0), Stats::new());

        // Merging a repeated block into a mixed accumulator agrees with
        // pushing the same copies one by one.
        let data: Vec<f64> = (0..50).map(|i| (i as f64).cos() * 3.0).collect();
        let mut serial = Stats::new();
        for _ in 0..200 {
            serial.push(1.0);
        }
        for &x in &data {
            serial.push(x);
        }
        let mut block = Stats::repeated(1.0, 200);
        let mut rest = Stats::new();
        for &x in &data {
            rest.push(x);
        }
        block.merge(&rest);
        assert_eq!(block.count(), serial.count());
        assert!((block.mean() - serial.mean()).abs() < 1e-12);
        assert!((block.variance() - serial.variance()).abs() < 1e-10);
    }

    #[test]
    fn degenerate_cases() {
        let s = Stats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.std_error(), 0.0);
        let mut one = Stats::new();
        one.push(5.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.mean(), 5.0);
    }
}
