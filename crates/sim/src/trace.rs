//! Execution traces and the ASCII timeline renderer (Figure 1).
//!
//! The paper's Figure 1 is a schematic of three executions of a periodic
//! pattern: error-free, with a fail-stop error, and with a silent error.
//! [`render_timeline`] reproduces it from an actual simulated trace.

use crate::events::{Event, EventKind};
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// Bounded recorder of simulation events.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    events: Vec<Event>,
    capacity: usize,
    dropped: usize,
}

impl Serialize for TraceRecorder {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("capacity".to_string(), (self.capacity as u64).to_value());
        map.insert("dropped".to_string(), (self.dropped as u64).to_value());
        map.insert("events".to_string(), self.events.to_value());
        Value::Object(map)
    }
}

impl TraceRecorder {
    /// Recorder keeping at most `capacity` events (further events are
    /// counted but dropped).
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            events: Vec::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (drops it if the capacity is exhausted).
    pub fn record(&mut self, e: Event) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events dropped after the capacity was reached.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Serializes the recorded events as JSON Lines: one compact JSON
    /// object per event, in recording order, each line ending in `\n`.
    /// Deterministic for a fixed seed (object keys are sorted).
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }
}

/// Serializes a slice of events as JSON Lines (one object per line).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("events serialize infallibly"));
        out.push('\n');
    }
    out
}

/// Parses a JSON Lines document back into events (inverse of
/// [`events_to_jsonl`]; blank lines are skipped).
pub fn events_from_jsonl(jsonl: &str) -> Result<Vec<Event>, serde::Error> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Renders a recorded trace as a one-line ASCII timeline in the style of
/// the paper's Figure 1, e.g.
///
/// ```text
/// [W σ=0.4 |V v- |R ][W σ=0.8 |V v+ |C ]
/// ```
///
/// Each attempt is a `[...]` segment showing the speed, the verification
/// verdict (`v+`/`v-`), fail-stop interrupts (`X`), and the recovery or
/// checkpoint that follows.
pub fn render_timeline(events: &[Event]) -> String {
    let mut out = String::new();
    let mut open = false;
    for e in events {
        match e.kind {
            EventKind::WorkStart { speed } => {
                if open {
                    out.push(']');
                }
                out.push_str(&format!("[W σ={speed} "));
                open = true;
            }
            EventKind::SilentErrorStruck => out.push_str("* "),
            EventKind::FailStopError => out.push_str("X "),
            EventKind::VerificationStart { .. } => out.push_str("|V "),
            EventKind::VerificationOk => out.push_str("v+ "),
            EventKind::VerificationFailed => out.push_str("v- "),
            EventKind::RecoveryStart => out.push_str("|R "),
            EventKind::RecoveryDone => {}
            EventKind::CheckpointStart => out.push_str("|C "),
            EventKind::CheckpointDone => {
                if open {
                    out.push(']');
                    open = false;
                }
            }
        }
    }
    if open {
        out.push(']');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_pattern_traced, SimConfig};
    use crate::rng::SimRng;
    use rexec_core::{ErrorRates, PowerModel, ResilienceCosts};

    fn cfg(rates: ErrorRates) -> SimConfig {
        SimConfig {
            w: 1000.0,
            sigma1: 0.5,
            sigma2: 1.0,
            rates,
            costs: ResilienceCosts::symmetric(100.0, 10.0),
            power: PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
        }
    }

    #[test]
    fn recorder_bounds_capacity() {
        let mut tr = TraceRecorder::new(2);
        for i in 0..5 {
            tr.record(Event::new(i as f64, EventKind::CheckpointStart));
        }
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 3);
    }

    #[test]
    fn error_free_timeline_shape() {
        let mut tr = TraceRecorder::new(64);
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        simulate_pattern_traced(&c, &mut SimRng::new(1), Some(&mut tr));
        let line = render_timeline(tr.events());
        assert_eq!(line, "[W σ=0.5 |V v+ |C ]");
    }

    #[test]
    fn silent_error_timeline_shows_failed_verification_then_reexecution() {
        // λ·W/σ1 ≈ 0.6: failures are common but patterns still complete.
        let c = cfg(ErrorRates::silent_only(3e-4).unwrap());
        // Find a seed whose outcome has exactly one silent error.
        for seed in 0..200 {
            let mut tr = TraceRecorder::new(256);
            let p = simulate_pattern_traced(&c, &mut SimRng::new(seed), Some(&mut tr));
            if p.silent_errors == 1 && p.attempts == 2 {
                let line = render_timeline(tr.events());
                assert_eq!(
                    line, "[W σ=0.5 * |V v- |R ][W σ=1 |V v+ |C ]",
                    "seed {seed}"
                );
                return;
            }
        }
        panic!("no single-silent-error outcome found in 200 seeds");
    }

    #[test]
    fn fail_stop_timeline_shows_interrupt() {
        let c = cfg(ErrorRates::fail_stop_only(3e-4).unwrap());
        for seed in 0..200 {
            let mut tr = TraceRecorder::new(256);
            let p = simulate_pattern_traced(&c, &mut SimRng::new(seed), Some(&mut tr));
            if p.fail_stop_errors == 1 && p.attempts == 2 {
                let line = render_timeline(tr.events());
                assert_eq!(line, "[W σ=0.5 X |R ][W σ=1 |V v+ |C ]", "seed {seed}");
                return;
            }
        }
        panic!("no single-fail-stop outcome found in 200 seeds");
    }

    #[test]
    fn timeline_of_empty_trace_is_empty() {
        assert_eq!(render_timeline(&[]), "");
    }
}
