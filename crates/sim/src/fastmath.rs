//! Branchless, autovectorizable `ln` for the sampling hot loops.
//!
//! The closed-form samplers spend their time in inverse-CDF transforms —
//! `ln u` for geometric attempt counts and success-run lengths — and the
//! system `ln` cannot batch: it is an opaque scalar libm call, so a loop
//! of draws pays call overhead and serial latency per value. This module
//! reimplements `ln` with nothing but bit manipulation, compares-as-
//! selects and a polynomial, so [`ln_sweep`] over a refill buffer
//! compiles to SIMD (the buffered [`UniformStream`](crate::rng) computes
//! the logs of a whole chunk of uniforms at refill time).
//!
//! # Domain and accuracy
//!
//! Defined for **positive, finite, normal** inputs — exactly what the
//! RNG produces (uniforms in `(0, 1]` are ≥ 2⁻⁵³ ≫ `f64::MIN_POSITIVE`,
//! and `1 − u·p` arguments are in `(0, 1]` too). Zero, negatives,
//! subnormals, infinities and NaN are *not* handled (garbage in, garbage
//! out); callers own that contract.
//!
//! Accuracy is a few ulp relative everywhere in the domain (pinned by
//! the test against libm): argument reduction writes `x = 2ᵉ·m` with
//! `m ∈ [√2/2, √2)`, `ln m = 2·atanh(t)` for `t = (m−1)/(m+1)`
//! (`|t| ≤ 3−2√2 ≈ 0.172`), and the odd series truncated at `t²¹` has
//! relative truncation error below 10⁻¹⁸. `ln 1 = 0` exactly, so
//! inverse-CDF maps preserve their `u = 1` edge case.
//!
//! The results are **not** bit-identical to libm's `ln` — the samplers
//! that batch through this module are statistically identical, not
//! bit-identical, to their libm-backed scalar forms (the same contract
//! the fast paths already have relative to the reference engine).
//! Determinism across thread counts and range partitions is unaffected:
//! every run variant draws through the same batched transform.

use core::f64::consts::SQRT_2;

/// `ln 2` split into a high part exact in 32 bits and the remainder, so
/// `e·LN2_HI` is exact for every exponent `|e| ≤ 1074` and the rounding
/// error rides in the small `e·LN2_LO` term. The literals keep fdlibm's
/// canonical digit strings (they round to the intended bit patterns).
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;

/// Odd-series coefficients of `2·atanh(t) = 2t·(1 + t²/3 + t⁴/5 + …)`:
/// `C[i] = 1/(2i + 3)`, the weight of `s^i` in `P(s)` for `s = t²`.
const C0: f64 = 1.0 / 3.0;
const C1: f64 = 1.0 / 5.0;
const C2: f64 = 1.0 / 7.0;
const C3: f64 = 1.0 / 9.0;
const C4: f64 = 1.0 / 11.0;
const C5: f64 = 1.0 / 13.0;
const C6: f64 = 1.0 / 15.0;
const C7: f64 = 1.0 / 17.0;
const C8: f64 = 1.0 / 19.0;
const C9: f64 = 1.0 / 21.0;

/// Natural logarithm of a positive, finite, normal `f64`.
///
/// Branch-free (the reduction's compare becomes a select), so loops over
/// slices of calls vectorize — see the module docs for the
/// domain/accuracy contract.
#[inline]
pub fn ln(x: f64) -> f64 {
    let bits = x.to_bits();
    // x = 2^e · m, m ∈ [1, 2).
    let e_raw = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // Rebalance to m ∈ [√2/2, √2) so t stays small on both sides of 1.
    let shift = m > SQRT_2;
    let m = if shift { 0.5 * m } else { m };
    let e = (e_raw + shift as i64) as f64;
    let t = (m - 1.0) / (m + 1.0);
    let s = t * t;
    // Estrin evaluation of P(s) = Σ C_i·s^i: pairwise `mul_add` terms
    // combine up a ~4-deep tree instead of Horner's 9-FMA serial chain,
    // so in the vectorized sweep consecutive lanes' evaluations overlap
    // instead of stalling on FMA latency. `mul_add` compiles to a real
    // FMA here (the kernels require an FMA target; a libm soft-fma
    // fallback would be a 100× cliff, caught by the bench gates) —
    // halving the op count over separate mul + add and rounding once
    // per pair.
    let s2 = s * s;
    let s4 = s2 * s2;
    let q01 = C1.mul_add(s, C0);
    let q23 = C3.mul_add(s, C2);
    let q45 = C5.mul_add(s, C4);
    let q67 = C7.mul_add(s, C6);
    let q89 = C9.mul_add(s, C8);
    let p = q89
        .mul_add(s4, q67.mul_add(s2, q45))
        .mul_add(s4, q23.mul_add(s2, q01));
    // ln x = e·ln2 + 2t·(1 + s·P(s)); the e = 0 case is the pure series.
    // `e·LN2_HI` is exact inside the FMA (wider intermediate), so the
    // hi/lo split still cancels no bits.
    let tt = t + t;
    let core = (tt * s).mul_add(p, e.mul_add(LN2_LO, tt));
    e.mul_add(LN2_HI, core)
}

/// Writes `ln(xs[i])` into `out[i]` for every lane — the batched form
/// the RNG refill path uses. The body is [`ln`] inlined into a
/// bounds-check-free loop, which the autovectorizer turns into SIMD.
///
/// # Panics
///
/// If `out.len() != xs.len()`.
#[inline]
pub fn ln_sweep(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len());
    let n = xs.len();
    let (xs, out) = (&xs[..n], &mut out[..n]);
    for i in 0..n {
        out[i] = ln(xs[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance in units-in-the-last-place between two same-sign floats.
    fn ulp_diff(a: f64, b: f64) -> u64 {
        (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
    }

    #[test]
    fn matches_libm_to_a_few_ulp_across_the_domain() {
        // Deterministic coverage of (0, 1] — the RNG's output range —
        // plus magnitudes above 1 for the general contract.
        let mut worst = 0u64;
        let mut x = 2f64.powi(-53);
        while x < 4.0 {
            let got = ln(x);
            let want = x.ln();
            let d = ulp_diff(got, want);
            assert!(d <= 4, "ln({x:e}): {got:e} vs libm {want:e} ({d} ulp)");
            worst = worst.max(d);
            x *= 1.000_037; // ~300k samples, irrational-ish stride
        }
        assert!(worst <= 4, "worst deviation {worst} ulp");
    }

    #[test]
    fn exact_at_one() {
        assert_eq!(ln(1.0), 0.0);
    }

    #[test]
    fn edge_magnitudes() {
        for x in [
            2f64.powi(-53), // smallest uniform the RNG can draw
            f64::MIN_POSITIVE,
            0.5 - f64::EPSILON,
            0.5,
            SQRT_2 * 0.5,
            SQRT_2,
            1.0 - f64::EPSILON,
            1.0 + f64::EPSILON,
            2.0,
            1e300,
        ] {
            let d = ulp_diff(ln(x), x.ln());
            assert!(d <= 4, "ln({x:e}) off by {d} ulp");
        }
    }

    #[test]
    fn sweep_matches_scalar() {
        let xs: Vec<f64> = (1..=257).map(|i| i as f64 / 257.0).collect();
        let mut out = vec![0.0; xs.len()];
        ln_sweep(&xs, &mut out);
        for (i, (&x, &y)) in xs.iter().zip(&out).enumerate() {
            assert_eq!(y.to_bits(), ln(x).to_bits(), "lane {i}");
        }
    }
}
