//! Log-bucketed histogram for outcome distributions.
//!
//! Means tell you what the paper's expectations predict; tails tell you
//! what an operator experiences. This histogram uses geometrically spaced
//! buckets (constant relative resolution, like HdrHistogram's log-linear
//! scheme but simpler), supporting quantile queries over pattern times and
//! energies spanning many decades.

use serde::{Deserialize, Serialize};

/// Geometric-bucket histogram over `(0, +∞)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Smallest representable value (values below clamp into bucket 0).
    min_value: f64,
    /// Relative bucket width (e.g. 0.01 → 1 % resolution).
    resolution: f64,
    /// log(1 + resolution), cached.
    log_base: f64,
    counts: Vec<u64>,
    total: u64,
    /// Exact running extremes (not bucketed).
    min_seen: f64,
    max_seen: f64,
}

impl Histogram {
    /// Creates a histogram with `resolution` relative accuracy (must be in
    /// `(0, 1]`) for values ≥ `min_value` (> 0).
    pub fn new(min_value: f64, resolution: f64) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(
            resolution > 0.0 && resolution <= 1.0,
            "resolution must be in (0, 1]"
        );
        Histogram {
            min_value,
            resolution,
            log_base: (1.0 + resolution).ln(),
            counts: Vec::new(),
            total: 0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// Default histogram: 1 % relative resolution from 1e-3 up.
    pub fn with_default_resolution() -> Self {
        Histogram::new(1e-3, 0.01)
    }

    fn bucket_of(&self, value: f64) -> usize {
        if value <= self.min_value {
            return 0;
        }
        ((value / self.min_value).ln() / self.log_base) as usize + 1
    }

    /// Lower edge of a bucket.
    fn bucket_low(&self, index: usize) -> f64 {
        if index == 0 {
            0.0
        } else {
            self.min_value * (self.log_base * (index - 1) as f64).exp()
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite() && value >= 0.0,
            "histogram values must be finite and non-negative, got {value}"
        );
        let b = self.bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.min_seen = self.min_seen.min(value);
        self.max_seen = self.max_seen.max(value);
    }

    /// Merges another histogram (must share parameters).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min_value, other.min_value, "parameter mismatch");
        assert_eq!(self.resolution, other.resolution, "parameter mismatch");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact smallest recorded value.
    pub fn min(&self) -> f64 {
        self.min_seen
    }

    /// Exact largest recorded value.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Value at quantile `q ∈ \[0, 1\]` (within the relative resolution).
    /// Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min_seen);
        }
        if q >= 1.0 {
            return Some(self.max_seen);
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                // Midpoint of the bucket, clamped to observed extremes.
                let lo = self.bucket_low(i);
                let hi = self.bucket_low(i + 1);
                let mid = 0.5 * (lo + hi);
                return Some(mid.clamp(self.min_seen, self.max_seen));
            }
        }
        Some(self.max_seen)
    }

    /// Median (`quantile(0.5)`).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn quantiles_of_uniform_grid() {
        let mut h = Histogram::new(1.0, 0.01);
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.02, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 990.0).abs() / 990.0 < 0.02, "p99 = {p99}");
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn resolution_bounds_relative_error() {
        let mut h = Histogram::new(1e-3, 0.01);
        for _ in 0..100 {
            h.record(12345.678);
        }
        let med = h.median().unwrap();
        assert!((med - 12345.678).abs() / 12345.678 < 0.01, "median {med}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new(1.0, 0.05);
        let mut b = Histogram::new(1.0, 0.05);
        let mut all = Histogram::new(1.0, 0.05);
        let mut rng = SimRng::new(5);
        for i in 0..2000 {
            let v = rng.exponential(0.001);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn exponential_quantiles_match_theory() {
        // Exp(λ): quantile q = −ln(1−q)/λ.
        let lambda = 1e-4;
        let mut h = Histogram::new(1e-2, 0.01);
        let mut rng = SimRng::new(77);
        let n = 200_000;
        for _ in 0..n {
            h.record(rng.exponential(lambda));
        }
        for q in [0.5, 0.9, 0.99] {
            let expect = -(1.0f64 - q).ln() / lambda;
            let got = h.quantile(q).unwrap();
            assert!(
                (got - expect).abs() / expect < 0.03,
                "q = {q}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::with_default_resolution();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_values_clamp_into_first_bucket() {
        let mut h = Histogram::new(1.0, 0.1);
        h.record(0.0);
        h.record(0.5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0.0);
        assert!(h.median().unwrap() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Histogram::with_default_resolution().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "parameter mismatch")]
    fn merge_rejects_mismatched_parameters() {
        let mut a = Histogram::new(1.0, 0.01);
        let b = Histogram::new(1.0, 0.02);
        a.merge(&b);
    }
}
