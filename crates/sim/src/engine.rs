//! The execution engine: simulates patterns and whole applications.
//!
//! One *attempt* of a pattern at speed `σ`:
//!
//! 1. draw a fail-stop arrival `tᶠ ~ Exp(λᶠ)` over the `(W+V)/σ` phase and
//!    a silent arrival `tˢ ~ Exp(λˢ)` over the `W/σ` sub-phase;
//! 2. if `tᶠ < (W+V)/σ` the attempt aborts at `tᶠ` (compute power drawn for
//!    `tᶠ` seconds), followed by a recovery — regardless of any latent
//!    silent error, which is wiped by the rollback;
//! 3. otherwise the full `(W+V)/σ` elapses; the verification detects a
//!    silent error iff `tˢ < W/σ`, triggering a recovery;
//! 4. otherwise the verification passes and the pattern checkpoints.
//!
//! The first attempt runs at `σ₁`; every further attempt runs at `σ₂`.

use crate::energy::EnergyMeter;
use crate::events::{Event, EventKind};
use crate::rng::SimRng;
use crate::trace::TraceRecorder;
use rexec_core::{ErrorRates, PowerModel, ResilienceCosts};
use serde::{Deserialize, Serialize};

/// Full configuration of a simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Pattern size `W` (work units).
    pub w: f64,
    /// First-execution speed `σ₁`.
    pub sigma1: f64,
    /// Re-execution speed `σ₂`.
    pub sigma2: f64,
    /// Error rates (silent and/or fail-stop).
    pub rates: ErrorRates,
    /// Checkpoint / verification / recovery costs.
    pub costs: ResilienceCosts,
    /// Power parameters.
    pub power: PowerModel,
}

impl SimConfig {
    /// Convenience constructor from a silent-error analytic model.
    pub fn from_silent_model(
        m: &rexec_core::SilentModel,
        w: f64,
        sigma1: f64,
        sigma2: f64,
    ) -> Self {
        SimConfig {
            w,
            sigma1,
            sigma2,
            rates: ErrorRates::silent_only(m.lambda).expect("validated lambda"),
            costs: m.costs,
            power: m.power,
        }
    }

    /// Convenience constructor from a mixed-error analytic model.
    pub fn from_mixed_model(m: &rexec_core::MixedModel, w: f64, sigma1: f64, sigma2: f64) -> Self {
        SimConfig {
            w,
            sigma1,
            sigma2,
            rates: m.rates,
            costs: m.costs,
            power: m.power,
        }
    }
}

/// Outcome of simulating one pattern to successful checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternOutcome {
    /// Wall-clock time from pattern start to checkpoint completion (s).
    pub time: f64,
    /// Energy consumed (mJ).
    pub energy: f64,
    /// Number of executions (1 = no error).
    pub attempts: u32,
    /// Silent errors detected by verifications.
    pub silent_errors: u32,
    /// Fail-stop interrupts.
    pub fail_stop_errors: u32,
}

/// What ended one attempt.
enum AttemptEnd {
    /// Verification passed.
    Success,
    /// Fail-stop interrupt mid-phase.
    FailStop,
    /// Verification detected a silent error.
    SilentDetected,
}

/// Simulates one attempt of the pattern at `sigma`, metering time/energy.
#[inline]
fn run_attempt(
    cfg: &SimConfig,
    sigma: f64,
    clock: &mut f64,
    meter: &mut EnergyMeter,
    rng: &mut SimRng,
    trace: &mut Option<&mut TraceRecorder>,
) -> AttemptEnd {
    let work_t = cfg.w / sigma;
    let verify_t = cfg.costs.verification / sigma;
    let phase = work_t + verify_t;
    let t_fail = rng.exponential(cfg.rates.fail_stop);
    let t_silent = rng.exponential(cfg.rates.silent);

    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(*clock, EventKind::WorkStart { speed: sigma }));
        if t_silent < work_t && t_fail >= phase {
            tr.record(Event::new(*clock + t_silent, EventKind::SilentErrorStruck));
        }
    }

    if t_fail < phase {
        // Interrupted mid-phase: t_fail seconds of compute power are lost.
        *clock += t_fail;
        meter.add_compute(t_fail, sigma);
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Event::new(*clock, EventKind::FailStopError));
        }
        return AttemptEnd::FailStop;
    }

    // Full computation + verification.
    *clock += work_t;
    meter.add_compute(work_t, sigma);
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(
            *clock,
            EventKind::VerificationStart { speed: sigma },
        ));
    }
    *clock += verify_t;
    meter.add_compute(verify_t, sigma);

    if t_silent < work_t {
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Event::new(*clock, EventKind::VerificationFailed));
        }
        AttemptEnd::SilentDetected
    } else {
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Event::new(*clock, EventKind::VerificationOk));
        }
        AttemptEnd::Success
    }
}

/// Performs a recovery, metering its time and I/O energy.
#[inline]
fn run_recovery(
    cfg: &SimConfig,
    clock: &mut f64,
    meter: &mut EnergyMeter,
    trace: &mut Option<&mut TraceRecorder>,
) {
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(*clock, EventKind::RecoveryStart));
    }
    *clock += cfg.costs.recovery;
    meter.add_io(cfg.costs.recovery);
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(*clock, EventKind::RecoveryDone));
    }
}

/// Hard cap on executions of a single pattern. With a sensible
/// configuration the expected attempt count is small; hitting this cap
/// means the per-attempt success probability `e^{−λW/σ₂}` is so close to
/// zero that the pattern will effectively never complete — a modelling
/// error (pattern far too large for the error rate), so we fail loudly
/// instead of looping forever.
pub const MAX_ATTEMPTS: u32 = 10_000_000;

/// Simulates one pattern until it checkpoints successfully, optionally
/// recording a trace.
///
/// # Panics
/// After [`MAX_ATTEMPTS`] failed executions (success probability ≈ 0).
pub fn simulate_pattern_traced(
    cfg: &SimConfig,
    rng: &mut SimRng,
    mut trace: Option<&mut TraceRecorder>,
) -> PatternOutcome {
    let mut clock = 0.0;
    let mut meter = EnergyMeter::new(cfg.power);
    let mut attempts = 0u32;
    let mut silent = 0u32;
    let mut fail_stop = 0u32;

    loop {
        let sigma = if attempts == 0 {
            cfg.sigma1
        } else {
            cfg.sigma2
        };
        assert!(
            attempts < MAX_ATTEMPTS,
            "pattern never completes: success probability e^(-lambda*W/sigma2) \
             is ~0 for W = {}, sigma2 = {}, rates = {:?}",
            cfg.w,
            cfg.sigma2,
            cfg.rates
        );
        attempts += 1;
        match run_attempt(cfg, sigma, &mut clock, &mut meter, rng, &mut trace) {
            AttemptEnd::Success => break,
            AttemptEnd::FailStop => {
                fail_stop += 1;
                run_recovery(cfg, &mut clock, &mut meter, &mut trace);
            }
            AttemptEnd::SilentDetected => {
                silent += 1;
                run_recovery(cfg, &mut clock, &mut meter, &mut trace);
            }
        }
    }

    // Verified: checkpoint.
    if let Some(tr) = trace.as_mut() {
        tr.record(Event::new(clock, EventKind::CheckpointStart));
    }
    clock += cfg.costs.checkpoint;
    meter.add_io(cfg.costs.checkpoint);
    if let Some(tr) = trace.as_mut() {
        tr.record(Event::new(clock, EventKind::CheckpointDone));
    }

    rexec_obs::counter!("sim.patterns").incr();
    rexec_obs::counter!("sim.attempts").add(u64::from(attempts));
    rexec_obs::counter!("sim.silent_errors").add(u64::from(silent));
    rexec_obs::counter!("sim.fail_stop_errors").add(u64::from(fail_stop));

    PatternOutcome {
        time: clock,
        energy: meter.total(),
        attempts,
        silent_errors: silent,
        fail_stop_errors: fail_stop,
    }
}

/// Simulates one pattern until it checkpoints successfully.
pub fn simulate_pattern(cfg: &SimConfig, rng: &mut SimRng) -> PatternOutcome {
    simulate_pattern_traced(cfg, rng, None)
}

/// Outcome of simulating a whole divisible-load application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// Total wall-clock time (s).
    pub makespan: f64,
    /// Total energy (mJ).
    pub energy: f64,
    /// Number of patterns executed (⌈Wbase/W⌉; the last may be short).
    pub patterns: u64,
    /// Total executions across all patterns.
    pub attempts: u64,
    /// Total silent errors detected.
    pub silent_errors: u64,
    /// Total fail-stop interrupts.
    pub fail_stop_errors: u64,
}

impl AppOutcome {
    /// Expected-makespan overhead per unit of work, `makespan / Wbase`.
    pub fn time_overhead(&self, w_base: f64) -> f64 {
        self.makespan / w_base
    }

    /// Energy overhead per unit of work, `energy / Wbase`.
    pub fn energy_overhead(&self, w_base: f64) -> f64 {
        self.energy / w_base
    }
}

/// Simulates a divisible-load application of `w_base` total work, divided
/// into patterns of `cfg.w` (the final pattern takes the remainder).
pub fn simulate_application(cfg: &SimConfig, w_base: f64, rng: &mut SimRng) -> AppOutcome {
    assert!(w_base > 0.0 && cfg.w > 0.0, "work sizes must be positive");
    let mut remaining = w_base;
    let mut out = AppOutcome {
        makespan: 0.0,
        energy: 0.0,
        patterns: 0,
        attempts: 0,
        silent_errors: 0,
        fail_stop_errors: 0,
    };
    // One reusable pattern config: only `w` changes per pattern (for the
    // final remainder), so hoist the copy out of the hot loop.
    let mut pattern_cfg = *cfg;
    while remaining > 0.0 {
        pattern_cfg.w = remaining.min(cfg.w);
        let p = simulate_pattern(&pattern_cfg, rng);
        out.makespan += p.time;
        out.energy += p.energy;
        out.patterns += 1;
        out.attempts += u64::from(p.attempts);
        out.silent_errors += u64::from(p.silent_errors);
        out.fail_stop_errors += u64::from(p.fail_stop_errors);
        remaining -= pattern_cfg.w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_core::{ErrorRates, PowerModel, ResilienceCosts};

    fn cfg(rates: ErrorRates) -> SimConfig {
        SimConfig {
            w: 2764.0,
            sigma1: 0.4,
            sigma2: 0.4,
            rates,
            costs: ResilienceCosts::symmetric(300.0, 15.4),
            power: PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        }
    }

    #[test]
    fn error_free_pattern_is_deterministic() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let p = simulate_pattern(&c, &mut rng);
        assert_eq!(p.attempts, 1);
        assert_eq!(p.silent_errors, 0);
        assert_eq!(p.fail_stop_errors, 0);
        let expected_t = (2764.0 + 15.4) / 0.4 + 300.0;
        assert!((p.time - expected_t).abs() < 1e-9);
        let expected_e =
            (2764.0 + 15.4) / 0.4 * c.power.compute_power(0.4) + 300.0 * c.power.io_power();
        assert!((p.energy - expected_e).abs() < 1e-6);
    }

    #[test]
    fn every_error_adds_a_recovery() {
        // With a huge silent rate, each attempt until the last detects an
        // error; time must equal attempts·phase + (attempts−1)·R + C.
        let mut c = cfg(ErrorRates::silent_only(1e-3).unwrap());
        c.sigma2 = 0.8;
        let mut rng = SimRng::new(99);
        for _ in 0..200 {
            let p = simulate_pattern(&c, &mut rng);
            let phase1 = (c.w + c.costs.verification) / c.sigma1;
            let phase2 = (c.w + c.costs.verification) / c.sigma2;
            let n = p.attempts as f64;
            let expected =
                phase1 + (n - 1.0) * phase2 + (n - 1.0) * c.costs.recovery + c.costs.checkpoint;
            assert!(
                (p.time - expected).abs() < 1e-6,
                "attempts={n}: {} vs {expected}",
                p.time
            );
            assert_eq!(p.silent_errors, p.attempts - 1);
        }
    }

    #[test]
    fn fail_stop_attempts_are_shorter_than_full_phase() {
        let c = SimConfig {
            rates: ErrorRates::fail_stop_only(1e-3).unwrap(),
            ..cfg(ErrorRates::new(0.0, 0.0).unwrap())
        };
        let mut rng = SimRng::new(7);
        let mut saw_failure = false;
        for _ in 0..100 {
            let p = simulate_pattern(&c, &mut rng);
            if p.fail_stop_errors > 0 {
                saw_failure = true;
                // Time must be strictly less than the all-full-phases bound.
                let phase1 = (c.w + c.costs.verification) / c.sigma1;
                let phase2 = (c.w + c.costs.verification) / c.sigma2;
                let n = p.attempts as f64;
                let upper =
                    phase1 + (n - 1.0) * phase2 + (n - 1.0) * c.costs.recovery + c.costs.checkpoint;
                assert!(p.time < upper);
            }
        }
        assert!(saw_failure, "λf = 1e-3 must produce failures over 100 runs");
    }

    #[test]
    fn reexecution_speed_is_used_after_first_failure() {
        // σ2 ≫ σ1 with frequent failures: average time with fast σ2 must
        // be lower than with slow σ2. (λW/σ2 stays ≤ 3.7 so the slow
        // variant still completes in ~40 attempts on average.)
        let mut slow = cfg(ErrorRates::silent_only(2e-4).unwrap());
        slow.sigma2 = 0.15;
        let mut fast = slow;
        fast.sigma2 = 1.0;
        let n = 1500;
        let avg = |c: &SimConfig, seed| {
            let mut rng = SimRng::new(seed);
            (0..n)
                .map(|_| simulate_pattern(c, &mut rng).time)
                .sum::<f64>()
                / n as f64
        };
        assert!(avg(&fast, 3) < avg(&slow, 3));
    }

    #[test]
    fn application_splits_into_patterns() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let app = simulate_application(&c, 10.0 * c.w, &mut rng);
        assert_eq!(app.patterns, 10);
        let single = simulate_pattern(&c, &mut SimRng::new(1));
        assert!((app.makespan - 10.0 * single.time).abs() < 1e-6);
        assert!((app.energy - 10.0 * single.energy).abs() < 1e-3);
    }

    #[test]
    fn application_handles_remainder_pattern() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let app = simulate_application(&c, 2.5 * c.w, &mut rng);
        assert_eq!(app.patterns, 3);
        // Last pattern is half-size: same C/V but half the work time.
        let full = (c.w + c.costs.verification) / c.sigma1 + c.costs.checkpoint;
        let half = (0.5 * c.w + c.costs.verification) / c.sigma1 + c.costs.checkpoint;
        assert!((app.makespan - (2.0 * full + half)).abs() < 1e-6);
    }

    #[test]
    fn overheads_divide_by_base_work() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let w_base = 4.0 * c.w;
        let app = simulate_application(&c, w_base, &mut rng);
        assert!((app.time_overhead(w_base) * w_base - app.makespan).abs() < 1e-9);
        assert!((app.energy_overhead(w_base) * w_base - app.energy).abs() < 1e-9);
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let c = cfg(ErrorRates::new(1e-4, 5e-5).unwrap());
        let a = simulate_pattern(&c, &mut SimRng::new(1234));
        let b = simulate_pattern(&c, &mut SimRng::new(1234));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn application_rejects_zero_work() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        simulate_application(&c, 0.0, &mut SimRng::new(1));
    }
}
