//! The execution engine: simulates patterns and whole applications.
//!
//! One *attempt* of a pattern at speed `σ`:
//!
//! 1. draw a fail-stop arrival `tᶠ ~ Exp(λᶠ)` over the `(W+V)/σ` phase and
//!    a silent arrival `tˢ ~ Exp(λˢ)` over the `W/σ` sub-phase;
//! 2. if `tᶠ < (W+V)/σ` the attempt aborts at `tᶠ` (compute power drawn for
//!    `tᶠ` seconds), followed by a recovery — regardless of any latent
//!    silent error, which is wiped by the rollback;
//! 3. otherwise the full `(W+V)/σ` elapses; the verification detects a
//!    silent error iff `tˢ < W/σ`, triggering a recovery;
//! 4. otherwise the verification passes and the pattern checkpoints.
//!
//! The first attempt runs at `σ₁`; every further attempt runs at `σ₂` —
//! or, in the scenario engine, at the speed a [`SpeedSchedule`] assigns
//! to its attempt index. Silent arrivals may also follow a
//! non-memoryless [`ErrorLaw`] (Weibull, lognormal): each attempt starts
//! from a fresh renewal of the error process (the rollback restores a
//! pristine state), so inter-error times are drawn per attempt by
//! inverse survival.

use crate::energy::EnergyMeter;
use crate::events::{Event, EventKind};
use crate::rng::SimRng;
use crate::trace::TraceRecorder;
use rexec_core::{ErrorLaw, ErrorRates, PowerModel, ResilienceCosts, SpeedSchedule};
use serde::{Deserialize, Serialize};

/// Full configuration of a simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Pattern size `W` (work units).
    pub w: f64,
    /// First-execution speed `σ₁`.
    pub sigma1: f64,
    /// Re-execution speed `σ₂`.
    pub sigma2: f64,
    /// Error rates (silent and/or fail-stop).
    pub rates: ErrorRates,
    /// Checkpoint / verification / recovery costs.
    pub costs: ResilienceCosts,
    /// Power parameters.
    pub power: PowerModel,
}

impl SimConfig {
    /// Convenience constructor from a silent-error analytic model.
    pub fn from_silent_model(
        m: &rexec_core::SilentModel,
        w: f64,
        sigma1: f64,
        sigma2: f64,
    ) -> Self {
        SimConfig {
            w,
            sigma1,
            sigma2,
            rates: ErrorRates::silent_only(m.lambda).expect("validated lambda"),
            costs: m.costs,
            power: m.power,
        }
    }

    /// Convenience constructor from a mixed-error analytic model.
    pub fn from_mixed_model(m: &rexec_core::MixedModel, w: f64, sigma1: f64, sigma2: f64) -> Self {
        SimConfig {
            w,
            sigma1,
            sigma2,
            rates: m.rates,
            costs: m.costs,
            power: m.power,
        }
    }
}

/// Outcome of simulating one pattern to successful checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternOutcome {
    /// Wall-clock time from pattern start to checkpoint completion (s).
    pub time: f64,
    /// Energy consumed (mJ).
    pub energy: f64,
    /// Number of executions (1 = no error).
    pub attempts: u32,
    /// Silent errors detected by verifications.
    pub silent_errors: u32,
    /// Fail-stop interrupts.
    pub fail_stop_errors: u32,
}

/// What ended one attempt.
enum AttemptEnd {
    /// Verification passed.
    Success,
    /// Fail-stop interrupt mid-phase.
    FailStop,
    /// Verification detected a silent error.
    SilentDetected,
}

/// Draws a silent-error arrival time under `law`, mirroring
/// [`SimRng::exponential`]'s contract: a non-positive rate yields `+∞`
/// *without consuming a draw*, and the exponential law routes through
/// `SimRng::exponential` itself — so the reference engine's draw stream
/// under `ErrorLaw::Exponential` is bit-identical to the historical one.
#[inline]
fn silent_arrival(law: ErrorLaw, lambda: f64, rng: &mut SimRng) -> f64 {
    match law {
        ErrorLaw::Exponential => rng.exponential(lambda),
        _ if lambda <= 0.0 => f64::INFINITY,
        _ => law.inverse_survival(rng.uniform_open(), lambda),
    }
}

/// Simulates one attempt of the pattern at `sigma`, metering time/energy.
#[inline]
fn run_attempt(
    cfg: &SimConfig,
    sigma: f64,
    law: ErrorLaw,
    clock: &mut f64,
    meter: &mut EnergyMeter,
    rng: &mut SimRng,
    trace: &mut Option<&mut TraceRecorder>,
) -> AttemptEnd {
    let work_t = cfg.w / sigma;
    let verify_t = cfg.costs.verification / sigma;
    let phase = work_t + verify_t;
    let t_fail = rng.exponential(cfg.rates.fail_stop);
    let t_silent = silent_arrival(law, cfg.rates.silent, rng);

    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(*clock, EventKind::WorkStart { speed: sigma }));
        if t_silent < work_t && t_fail >= phase {
            tr.record(Event::new(*clock + t_silent, EventKind::SilentErrorStruck));
        }
    }

    if t_fail < phase {
        // Interrupted mid-phase: t_fail seconds of compute power are lost.
        *clock += t_fail;
        meter.add_compute(t_fail, sigma);
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Event::new(*clock, EventKind::FailStopError));
        }
        return AttemptEnd::FailStop;
    }

    // Full computation + verification.
    *clock += work_t;
    meter.add_compute(work_t, sigma);
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(
            *clock,
            EventKind::VerificationStart { speed: sigma },
        ));
    }
    *clock += verify_t;
    meter.add_compute(verify_t, sigma);

    if t_silent < work_t {
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Event::new(*clock, EventKind::VerificationFailed));
        }
        AttemptEnd::SilentDetected
    } else {
        if let Some(tr) = trace.as_deref_mut() {
            tr.record(Event::new(*clock, EventKind::VerificationOk));
        }
        AttemptEnd::Success
    }
}

/// Performs a recovery, metering its time and I/O energy.
#[inline]
fn run_recovery(
    cfg: &SimConfig,
    clock: &mut f64,
    meter: &mut EnergyMeter,
    trace: &mut Option<&mut TraceRecorder>,
) {
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(*clock, EventKind::RecoveryStart));
    }
    *clock += cfg.costs.recovery;
    meter.add_io(cfg.costs.recovery);
    if let Some(tr) = trace.as_deref_mut() {
        tr.record(Event::new(*clock, EventKind::RecoveryDone));
    }
}

/// Hard cap on executions of a single pattern. With a sensible
/// configuration the expected attempt count is small; hitting this cap
/// means the per-attempt success probability `e^{−λW/σ₂}` is so close to
/// zero that the pattern will effectively never complete — a modelling
/// error (pattern far too large for the error rate), so we fail loudly
/// instead of looping forever.
pub const MAX_ATTEMPTS: u32 = 10_000_000;

/// Structured error for configurations the sampling engines cannot run.
///
/// Raised at *construction* time ([`FastPattern::new`],
/// [`MixedFastPattern::new`], [`ensure_completes`]) and surfaced from
/// `MonteCarlo::run*` via engine resolution — never mid-sample from
/// inside a rayon worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineError {
    /// The silent-only geometric sampler ([`FastPattern`]) was asked to
    /// handle a config with a fail-stop error source. Mixed configs use
    /// [`MixedFastPattern`] (which is what `Engine::Auto` and
    /// `Engine::FastPath` resolve to).
    FailStopUnsupported {
        /// The offending fail-stop rate `λᶠ`.
        fail_stop: f64,
    },
    /// The mixed sampler ([`MixedFastPattern`]) was asked to handle a
    /// config with no fail-stop error source; use [`FastPattern`].
    SilentOnlyConfig,
    /// Degenerate configuration: the per-attempt success probability at
    /// `σ₂` is so close to zero that a pattern will effectively never
    /// complete (the expected execution count overruns a comfortable
    /// fraction of [`MAX_ATTEMPTS`]) — a modelling error, the pattern is
    /// far too large for the error rate.
    NeverCompletes {
        /// Per-attempt success probability at `σ₂`,
        /// `e^{−(λᶠ(W+V)+λˢW)/σ₂}`.
        success_probability: f64,
    },
    /// The per-attempt success probability is not a number at all —
    /// some configuration field (`w`, `sigma2`, a rate, a cost) is NaN
    /// or infinite. Kept distinct from [`EngineError::NeverCompletes`]:
    /// a NaN compares false against *every* threshold, so without this
    /// variant a non-finite config would slip through the completeness
    /// guard and poison every sampled statistic downstream.
    NonFiniteSuccessProbability {
        /// The non-finite per-attempt success probability.
        success_probability: f64,
    },
    /// The requested error-law/schedule scenario is outside what the
    /// selected engine can run (e.g. forcing the geometric fast path on
    /// a non-memoryless law).
    UnsupportedScenario {
        /// Which eligibility rule failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::FailStopUnsupported { fail_stop } => write!(
                f,
                "silent-only fast path cannot simulate a fail-stop error source \
                 (lambda_f = {fail_stop}); use the mixed fast path"
            ),
            EngineError::SilentOnlyConfig => write!(
                f,
                "mixed fast path requires a fail-stop error source; \
                 use the silent-only fast path"
            ),
            EngineError::NeverCompletes {
                success_probability,
            } => write!(
                f,
                "pattern never completes: per-attempt success probability \
                 {success_probability:.3e} at sigma2 would overrun the \
                 {MAX_ATTEMPTS}-execution cap"
            ),
            EngineError::NonFiniteSuccessProbability {
                success_probability,
            } => write!(
                f,
                "per-attempt success probability is {success_probability} — \
                 some configuration field is NaN or infinite"
            ),
            EngineError::UnsupportedScenario { reason } => {
                write!(f, "unsupported scenario: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-attempt success probability at speed `sigma`:
/// `e^{−(λᶠ(W+V) + λˢW)/σ}` — both error sources must spare the attempt
/// (the fail-stop process over the whole `(W+V)/σ` phase, the silent
/// process over the `W/σ` work sub-phase).
#[inline]
fn attempt_success_probability(cfg: &SimConfig, sigma: f64) -> f64 {
    let hazard = cfg.rates.fail_stop * (cfg.w + cfg.costs.verification) + cfg.rates.silent * cfg.w;
    (-hazard / sigma).exp()
}

/// Rejects configurations whose per-attempt success probability at `σ₂`
/// is so small that sampled attempt counts would overrun
/// [`MAX_ATTEMPTS`].
///
/// The bound leaves a factor-128 margin: for accepted configs a single
/// pattern reaches the cap with probability at most `e^{−128}`, so the
/// closed-form samplers clamp at the cap instead of asserting per sample
/// and `MonteCarlo::run*` cannot panic on a validated config.
///
/// # Errors
/// [`EngineError::NonFiniteSuccessProbability`] when `q(σ₂)` is NaN or
/// infinite (a non-finite configuration field), else
/// [`EngineError::NeverCompletes`] when `1/q(σ₂) > MAX_ATTEMPTS/128`.
pub fn ensure_completes(cfg: &SimConfig) -> Result<(), EngineError> {
    let q = attempt_success_probability(cfg, cfg.sigma2);
    // Checked *before* the threshold: a NaN `q` compares false against
    // the `< 128` guard below and would sail straight through it.
    if !q.is_finite() {
        return Err(EngineError::NonFiniteSuccessProbability {
            success_probability: q,
        });
    }
    if q * f64::from(MAX_ATTEMPTS) < 128.0 {
        return Err(EngineError::NeverCompletes {
            success_probability: q,
        });
    }
    Ok(())
}

/// Scenario analogue of [`ensure_completes`]: rejects configurations
/// whose per-attempt success probability at the *settled* retry speed
/// (the schedule's last entry, or `σ₂` without a schedule) is
/// non-finite or too small under the given inter-error law.
///
/// For the exponential law without a schedule this is the same bound as
/// [`ensure_completes`]; non-memoryless laws replace the silent factor
/// with the law's survival probability over the `W/σ` work sub-phase.
///
/// # Errors
/// Same contract as [`ensure_completes`].
pub fn ensure_scenario_completes(
    cfg: &SimConfig,
    law: ErrorLaw,
    schedule: Option<&SpeedSchedule>,
) -> Result<(), EngineError> {
    let sigma = schedule.map_or(cfg.sigma2, SpeedSchedule::settled);
    let q_fail = (-cfg.rates.fail_stop * (cfg.w + cfg.costs.verification) / sigma).exp();
    let q_silent = law.survival(cfg.w / sigma, cfg.rates.silent);
    let q = q_fail * q_silent;
    if !q.is_finite() {
        return Err(EngineError::NonFiniteSuccessProbability {
            success_probability: q,
        });
    }
    if q * f64::from(MAX_ATTEMPTS) < 128.0 {
        return Err(EngineError::NeverCompletes {
            success_probability: q,
        });
    }
    Ok(())
}

/// Simulates one pattern until it checkpoints successfully under an
/// arbitrary silent-error law and optional per-attempt speed schedule,
/// optionally recording a trace.
///
/// This is the *scenario* engine: the generalization the closed-form
/// fast paths cannot cover. With `ErrorLaw::Exponential` and no schedule
/// it is bit-identical to [`simulate_pattern_traced`] (which delegates
/// here). A schedule overrides the `σ₁`/`σ₂` speed rule with
/// `schedule.speed_for_attempt(i)`; a non-memoryless law replaces the
/// per-attempt exponential silent draw with an inverse-survival draw
/// from a fresh renewal of the error process (rollback restores a
/// pristine state, so attempts stay i.i.d. and the attempt count remains
/// geometric — just not in a memoryless per-second hazard).
///
/// # Panics
/// After [`MAX_ATTEMPTS`] failed executions (success probability ≈ 0).
pub fn simulate_pattern_scenario_traced(
    cfg: &SimConfig,
    law: ErrorLaw,
    schedule: Option<&SpeedSchedule>,
    rng: &mut SimRng,
    mut trace: Option<&mut TraceRecorder>,
) -> PatternOutcome {
    let mut clock = 0.0;
    let mut meter = EnergyMeter::new(cfg.power);
    let mut attempts = 0u32;
    let mut silent = 0u32;
    let mut fail_stop = 0u32;

    loop {
        let sigma = match schedule {
            Some(s) => s.speed_for_attempt(attempts),
            None if attempts == 0 => cfg.sigma1,
            None => cfg.sigma2,
        };
        assert!(
            attempts < MAX_ATTEMPTS,
            "pattern never completes: success probability e^(-lambda*W/sigma2) \
             is ~0 for W = {}, sigma2 = {}, rates = {:?}",
            cfg.w,
            cfg.sigma2,
            cfg.rates
        );
        attempts += 1;
        match run_attempt(cfg, sigma, law, &mut clock, &mut meter, rng, &mut trace) {
            AttemptEnd::Success => break,
            AttemptEnd::FailStop => {
                fail_stop += 1;
                run_recovery(cfg, &mut clock, &mut meter, &mut trace);
            }
            AttemptEnd::SilentDetected => {
                silent += 1;
                run_recovery(cfg, &mut clock, &mut meter, &mut trace);
            }
        }
    }

    // Verified: checkpoint.
    if let Some(tr) = trace.as_mut() {
        tr.record(Event::new(clock, EventKind::CheckpointStart));
    }
    clock += cfg.costs.checkpoint;
    meter.add_io(cfg.costs.checkpoint);
    if let Some(tr) = trace.as_mut() {
        tr.record(Event::new(clock, EventKind::CheckpointDone));
    }

    // Deliberately *no* `rexec_obs::counter!` adds here: four registry
    // lookups per pattern dominated the Monte Carlo hot loop. The runner
    // batches the same `sim.*` totals once per trial chunk instead.

    PatternOutcome {
        time: clock,
        energy: meter.total(),
        attempts,
        silent_errors: silent,
        fail_stop_errors: fail_stop,
    }
}

/// Simulates one pattern until it checkpoints successfully under an
/// arbitrary silent-error law and optional speed schedule.
pub fn simulate_pattern_scenario(
    cfg: &SimConfig,
    law: ErrorLaw,
    schedule: Option<&SpeedSchedule>,
    rng: &mut SimRng,
) -> PatternOutcome {
    simulate_pattern_scenario_traced(cfg, law, schedule, rng, None)
}

/// Simulates one pattern until it checkpoints successfully, optionally
/// recording a trace. Exponential silent errors, `σ₁`/`σ₂` speeds —
/// the paper's baseline scenario.
///
/// # Panics
/// After [`MAX_ATTEMPTS`] failed executions (success probability ≈ 0).
pub fn simulate_pattern_traced(
    cfg: &SimConfig,
    rng: &mut SimRng,
    trace: Option<&mut TraceRecorder>,
) -> PatternOutcome {
    simulate_pattern_scenario_traced(cfg, ErrorLaw::Exponential, None, rng, trace)
}

/// Simulates one pattern until it checkpoints successfully.
pub fn simulate_pattern(cfg: &SimConfig, rng: &mut SimRng) -> PatternOutcome {
    simulate_pattern_traced(cfg, rng, None)
}

/// Whether `cfg` qualifies for the *silent-only* closed-form fast path.
///
/// Eligible configs have no fail-stop error source: every attempt then
/// runs its full `(W+V)/σ` phase, so a pattern is fully described by its
/// attempt count, and that count follows the two-stage geometric law of
/// Proposition 1 (see [`FastPattern`]). Mixed fail-stop + silent configs
/// have their own closed-form sampler, [`MixedFastPattern`], which also
/// draws each abort's random duration; only trace-recording runs still
/// need the exact per-attempt loop (the fast paths never materialize
/// events).
#[inline]
pub fn fast_path_eligible(cfg: &SimConfig) -> bool {
    cfg.rates.fail_stop <= 0.0
}

/// Precomputed closed-form tables for the silent-only fast path.
///
/// For a silent-only config every attempt at speed `σ` takes exactly
/// `(W+V)/σ` and fails (verification detects a latent silent error) with
/// the Proposition-1 probability `p(σ) = 1 − e^{−λ_s W/σ}`, independently
/// of every other attempt. The attempt count `n` therefore follows a
/// two-stage geometric law:
///
/// ```text
/// P(n = 1)      = 1 − p(σ₁)
/// P(n = 1 + j)  = p(σ₁) · p(σ₂)^{j−1} · (1 − p(σ₂)),   j ≥ 1
/// ```
///
/// Instead of replaying the per-attempt exponential-draw loop, the fast
/// path samples `n` directly — one uniform for the first attempt, one
/// more (inverse-CDF geometric) only if it failed — and reconstructs
/// time and energy arithmetically:
///
/// ```text
/// time(n)   = (W+V)/σ₁ + C  +  (n−1) · ((W+V)/σ₂ + R)
/// energy(n) = analogous, at the per-phase powers
/// ```
///
/// The sampled distribution of `n` (and hence of time and energy) is
/// exactly the reference engine's; only the underlying uniform draws
/// differ, so the equivalence is statistical, not bit-wise — pinned by
/// the `z = 4` identity tests against the reference engine and Prop 2.
#[derive(Debug, Clone, Copy)]
pub struct FastPattern {
    /// Per-attempt silent-failure probability at `σ₁`.
    p_first: f64,
    /// Per-attempt silent-failure probability at `σ₂`.
    p_retry: f64,
    /// `ln(p_retry)`, cached for the inverse-CDF geometric draw.
    ln_p_retry: f64,
    /// `1/ln(1 − p(σ₁))` with `ln(1 − p(σ₁)) = −λ_s·W/σ₁` exact (no
    /// cancellation) — the run-length inverse CDF as a multiply.
    inv_ln_q_first: f64,
    /// `1/ln p(σ₂)` — the geometric inverse CDF as a multiply.
    inv_ln_p_retry: f64,
    /// Time of a one-attempt pattern: `(W+V)/σ₁ + C`.
    t_first: f64,
    /// Energy of a one-attempt pattern.
    e_first: f64,
    /// Extra time per re-execution: `(W+V)/σ₂ + R`.
    t_retry: f64,
    /// Extra energy per re-execution.
    e_retry: f64,
    /// The single re-execution speed `σ₂` every retry runs at — what
    /// [`AttemptLaw::retry_speed`] reports for every attempt index.
    sigma_retry: f64,
    /// Success outcome (`n = 1`), precomputed: the common case by far.
    first_try: PatternOutcome,
}

impl FastPattern {
    /// Builds the tables.
    ///
    /// # Errors
    /// [`EngineError::FailStopUnsupported`] if `cfg` has a fail-stop
    /// error source (see [`fast_path_eligible`]; mixed configs use
    /// [`MixedFastPattern`]), or [`EngineError::NeverCompletes`] for the
    /// degenerate regime [`ensure_completes`] rejects.
    pub fn new(cfg: &SimConfig) -> Result<Self, EngineError> {
        if !fast_path_eligible(cfg) {
            return Err(EngineError::FailStopUnsupported {
                fail_stop: cfg.rates.fail_stop,
            });
        }
        ensure_completes(cfg)?;
        let phase = |sigma: f64| (cfg.w + cfg.costs.verification) / sigma;
        // p = 1 − e^{−λW/σ} via expm1, exact down to subnormal rates.
        let p_at = |sigma: f64| -(-cfg.rates.silent * cfg.w / sigma).exp_m1();
        let p_first = p_at(cfg.sigma1);
        let p_retry = p_at(cfg.sigma2);
        let io = cfg.power.io_power();
        let t_first = phase(cfg.sigma1) + cfg.costs.checkpoint;
        let e_first =
            phase(cfg.sigma1) * cfg.power.compute_power(cfg.sigma1) + cfg.costs.checkpoint * io;
        let t_retry = phase(cfg.sigma2) + cfg.costs.recovery;
        let e_retry =
            phase(cfg.sigma2) * cfg.power.compute_power(cfg.sigma2) + cfg.costs.recovery * io;
        let ln_q_first = -cfg.rates.silent * cfg.w / cfg.sigma1;
        let ln_p_retry = p_retry.ln();
        Ok(FastPattern {
            p_first,
            p_retry,
            ln_p_retry,
            // The degenerate 1/−0 and 1/−∞ reciprocals are never
            // consulted: the samplers guard on p ≤ 0 first.
            inv_ln_q_first: ln_q_first.recip(),
            inv_ln_p_retry: ln_p_retry.recip(),
            t_first,
            e_first,
            t_retry,
            e_retry,
            sigma_retry: cfg.sigma2,
            first_try: PatternOutcome {
                time: t_first,
                energy: e_first,
                attempts: 1,
                silent_errors: 0,
                fail_stop_errors: 0,
            },
        })
    }

    /// The precomputed `n = 1` outcome — what [`sample`](Self::sample)
    /// returns whenever the first attempt succeeds. Lets accumulators
    /// batch the dominant case (its outcome never varies) instead of
    /// re-reading it from every sample.
    #[inline]
    pub fn first_try_outcome(&self) -> PatternOutcome {
        self.first_try
    }

    /// The outcome of a pattern that took `attempts` executions.
    #[inline]
    fn outcome(&self, attempts: u32) -> PatternOutcome {
        let retries = f64::from(attempts - 1);
        PatternOutcome {
            time: self.t_first + retries * self.t_retry,
            energy: self.e_first + retries * self.e_retry,
            attempts,
            silent_errors: attempts - 1,
            fail_stop_errors: 0,
        }
    }

    /// Samples one pattern outcome from a uniform draw source.
    ///
    /// Consumes one draw when the first attempt succeeds (probability
    /// `1 − p(σ₁)`), two otherwise — never more, however many
    /// re-executions the geometric draw encodes.
    #[inline]
    fn sample_with(&self, mut next: impl FnMut() -> f64) -> PatternOutcome {
        // u ∈ (0, 1] and P(u ≤ p) = p: the first attempt fails iff u ≤ p₁.
        if next() > self.p_first {
            return self.first_try;
        }
        self.failed_first_with(next)
    }

    /// Samples the rest of a pattern whose first attempt already failed
    /// (consumes one draw).
    #[inline]
    fn failed_first_with(&self, mut next: impl FnMut() -> f64) -> PatternOutcome {
        // k = number of σ₂ attempts to first success, k ~ Geom(1 − p₂):
        // inverse CDF, k = ⌈ln u / ln p₂⌉ (clamped to ≥ 1 for u = 1).
        // Construction rejected the degenerate p₂ → 1 regime
        // (`ensure_completes`), so ln p₂ < 0 and the inverse CDF is
        // well-defined; the cap clamp covers the ≤ e⁻¹²⁸ tail that the
        // factor-128 construction margin leaves possible.
        let retries = if self.p_retry <= 0.0 {
            1.0
        } else {
            (next().ln() / self.ln_p_retry)
                .ceil()
                .max(1.0)
                .min(f64::from(MAX_ATTEMPTS - 1))
        };
        self.outcome(1 + retries as u32)
    }

    /// The outcome of a pattern whose first attempt failed, sampled from
    /// a buffered chunk stream (one draw, with its refill-time log
    /// feeding the geometric inverse CDF directly). Pairs with
    /// [`success_run_len`](Self::success_run_len) in the runner's
    /// run-length-batched hot loop.
    #[inline]
    pub(crate) fn sample_failed_first(
        &self,
        draws: &mut crate::rng::UniformStream,
    ) -> PatternOutcome {
        // Same inverse CDF as `failed_first_with`, but `ln u` comes
        // precomputed from the stream's batched log sweep and the
        // division runs as a reciprocal multiply (equal in law — a
        // quotient ulp can flip a ⌈·⌉ boundary, which no test or run
        // variant observes bitwise). The degenerate `p₂ = 0` case
        // consumes no draw, like the scalar form.
        let retries = if self.p_retry <= 0.0 {
            1.0
        } else {
            let (_, ln_u) = draws.next_uniform_ln();
            (ln_u * self.inv_ln_p_retry)
                .ceil()
                .max(1.0)
                .min(f64::from(MAX_ATTEMPTS - 1))
        };
        self.outcome(1 + retries as u32)
    }

    /// [`success_run_len_ln`](Self::success_run_len_ln) from the raw
    /// uniform — test-suite convenience for the per-draw law checks.
    #[cfg(test)]
    pub(crate) fn success_run_len(&self, u: f64) -> u64 {
        self.success_run_len_ln(u.ln())
    }

    /// Number of consecutive patterns whose first attempt succeeds before
    /// one fails, from the precomputed log of a single uniform
    /// `u ∈ (0, 1]` (the stream's refill-time batched sweep).
    ///
    /// The run length is `Geom(p(σ₁))`-distributed — `P(run = j) =
    /// (1 − p₁)^j · p₁` — sampled by inverse CDF as `⌊ln u / ln(1 − p₁)⌋`
    /// with `ln(1 − p₁) = −λ_s·W/σ₁` computed without cancellation and
    /// the division a reciprocal multiply. By memorylessness a run may be
    /// truncated at a chunk boundary and resampled fresh:
    /// `P(run ≥ k) = (1 − p₁)^k` either way. Saturates (effectively "the
    /// whole chunk") when `p₁` rounds to 0.
    #[inline]
    pub(crate) fn success_run_len_ln(&self, ln_u: f64) -> u64 {
        if self.p_first <= 0.0 {
            return u64::MAX;
        }
        // Both logs are ≤ 0, the ratio is ≥ 0; the float→int cast
        // saturates for tiny p₁.
        (ln_u * self.inv_ln_q_first) as u64
    }

    /// Samples one pattern outcome from a buffered chunk stream (the
    /// runner's hot path). Never panics: the degenerate never-completes
    /// regime is rejected at [construction](Self::new).
    #[inline]
    pub fn sample(&self, draws: &mut crate::rng::UniformStream) -> PatternOutcome {
        self.sample_with(|| draws.next_uniform())
    }

    /// Samples one pattern outcome directly from an RNG (advancing it).
    #[inline]
    pub fn sample_rng(&self, rng: &mut SimRng) -> PatternOutcome {
        self.sample_with(|| rng.uniform_open())
    }
}

/// Simulates one silent-only pattern via the geometric fast path.
///
/// Statistically identical to [`simulate_pattern`] (same outcome
/// distribution), but samples the attempt count in closed form instead of
/// looping per attempt — see [`FastPattern`].
///
/// # Panics
/// If `cfg` has a fail-stop error source (use [`simulate_pattern`] or
/// [`MixedFastPattern`]) or is degenerate (see [`ensure_completes`]).
/// Fallible callers should go through [`FastPattern::new`] instead.
pub fn simulate_pattern_fast(cfg: &SimConfig, rng: &mut SimRng) -> PatternOutcome {
    let fast = FastPattern::new(cfg)
        .expect("fast path requires a silent-only config; see fast_path_eligible()");
    fast.sample_rng(rng)
}

/// Precomputed closed-form tables for the mixed fail-stop + silent fast
/// path (paper §5).
///
/// Per attempt at speed `σ` the outcome is a **three-way categorical**:
///
/// ```text
/// fail-stop abort      pᶠ(σ) = 1 − e^{−λᶠ(W+V)/σ}       (duration random)
/// survive-but-silent   (1 − pᶠ(σ)) · pˢ(σ),   pˢ(σ) = 1 − e^{−λˢW/σ}
/// success              q(σ)  = (1 − pᶠ(σ))(1 − pˢ(σ))
/// ```
///
/// so the attempt count follows the same two-stage geometric law as the
/// silent-only [`FastPattern`], only in the combined per-attempt success
/// probability `q(σ)`. Conditioned on a failed attempt, the cause is
/// fail-stop with probability `pᶠ/p` where `p = 1 − q` — classifying each
/// failure independently binomially thins the fail-stop aborts out of the
/// failure count — and each abort's duration follows the exponential
/// truncated to the phase, sampled by inverse CDF
///
/// ```text
/// t = −ln(1 − u·pᶠ)/λᶠ,    u ~ U(0, 1]
/// ```
///
/// evaluated through `ln_1p` so the `λᶠ t → 0` regime keeps full
/// precision (the same series discipline as
/// `rexec_core::expected_time_lost`, which is the analytic mean of this
/// very draw). Unlike the silent-only law the per-pattern time and energy
/// are *not* functions of the attempt count alone — each abort
/// contributes its own random `t` — so failed attempts accumulate
/// explicitly while successes stay precomputed.
///
/// A success consumes exactly one uniform draw, like [`FastPattern`], so
/// the runner's first-try run-length batching applies unchanged. The
/// sampled law is exactly the reference engine's (only the underlying
/// uniforms differ), pinned by the `z = 4` identity tests against the
/// reference engine and Propositions 4–5.
#[derive(Debug, Clone, Copy)]
pub struct MixedFastPattern {
    /// Per-attempt failure probability (any cause) at `σ₁`: `1 − q(σ₁)`.
    p_any_first: f64,
    /// Per-attempt failure probability at `σ₂`.
    p_any_retry: f64,
    /// `ln(p(σ₂))`, cached for the inverse-CDF geometric draw.
    ln_p_retry: f64,
    /// `1/ln q(σ₁)` with `ln q(σ₁) = −(λᶠ(W+V) + λˢW)/σ₁` exact (no
    /// cancellation) — the run-length inverse CDF as a multiply.
    inv_ln_q_first: f64,
    /// `P(fail-stop | failure)` at `σ₁`: `pᶠ(σ₁)/p(σ₁)`.
    frac_fail_first: f64,
    /// `P(fail-stop | failure)` at `σ₂`.
    frac_fail_retry: f64,
    /// `ln(pᶠ(σ₁)/p(σ₁))` — rebases a classification draw's batched log
    /// into an exponential abort draw (see
    /// [`abort_duration`](Self::abort_duration)).
    ln_frac_fail_first: f64,
    /// Absolute per-attempt fail-stop probability at `σ₂`: `pᶠ(σ₂)`,
    /// the abort threshold of the Bernoulli retry walk.
    p_fail_retry: f64,
    /// `ln pᶠ(σ₂)` — rebases a retry draw's batched log into an
    /// exponential abort draw.
    ln_p_fail_retry: f64,
    /// Fail-stop rate `λᶠ` (> 0 by construction).
    lambda_fail: f64,
    /// `1/λᶠ`, for the division-free abort-duration map.
    inv_lambda_fail: f64,
    /// Abort-duration truncation bound at `σ₁`: the attempt phase
    /// `(W+V)/σ₁`.
    t_attempt_first: f64,
    /// `1/t_attempt_first`.
    inv_t_attempt_first: f64,
    /// Abort-duration truncation bound at `σ₂`: `(W+V)/σ₂`.
    t_attempt_retry: f64,
    /// `1/t_attempt_retry`.
    inv_t_attempt_retry: f64,
    /// Compute power at `σ₁` (energy per second of aborted first work).
    power_first: f64,
    /// Compute power at `σ₂`.
    power_retry: f64,
    /// Time of a silently-failed attempt at `σ₁`: `(W+V)/σ₁ + R`.
    t_silent_first: f64,
    /// Energy of a silently-failed attempt at `σ₁`.
    e_silent_first: f64,
    /// Time of a silently-failed attempt at `σ₂`: `(W+V)/σ₂ + R`.
    t_silent_retry: f64,
    /// Energy of a silently-failed attempt at `σ₂`.
    e_silent_retry: f64,
    /// Time of the final successful attempt at `σ₂`: `(W+V)/σ₂ + C`.
    t_success_retry: f64,
    /// Energy of the final successful attempt at `σ₂`.
    e_success_retry: f64,
    /// Recovery time appended to every fail-stop abort: `R`.
    t_recovery: f64,
    /// Recovery energy appended to every fail-stop abort: `R·Pio`.
    e_recovery: f64,
    /// The single re-execution speed `σ₂` every retry runs at — what
    /// [`AttemptLaw::retry_speed`] reports for every attempt index.
    sigma_retry: f64,
    /// Success outcome (`n = 1`), precomputed: the common case by far.
    first_try: PatternOutcome,
}

impl MixedFastPattern {
    /// Builds the tables.
    ///
    /// # Errors
    /// [`EngineError::SilentOnlyConfig`] if `cfg` has no fail-stop error
    /// source (use [`FastPattern`]), or [`EngineError::NeverCompletes`]
    /// for the degenerate regime [`ensure_completes`] rejects.
    pub fn new(cfg: &SimConfig) -> Result<Self, EngineError> {
        if cfg.rates.fail_stop <= 0.0 {
            return Err(EngineError::SilentOnlyConfig);
        }
        ensure_completes(cfg)?;
        let phase = |sigma: f64| (cfg.w + cfg.costs.verification) / sigma;
        // Combined hazard per attempt; q(σ) = e^{−hazard/σ}.
        let hazard =
            cfg.rates.fail_stop * (cfg.w + cfg.costs.verification) + cfg.rates.silent * cfg.w;
        let p_any = |sigma: f64| -(-hazard / sigma).exp_m1();
        let p_fail = |sigma: f64| -(-cfg.rates.fail_stop * phase(sigma)).exp_m1();
        let p_any_first = p_any(cfg.sigma1);
        let p_any_retry = p_any(cfg.sigma2);
        // P(fail-stop | failure). A subnormal hazard can underflow p to
        // 0; those attempts never fail, so the ratio is never consulted —
        // pin it to 1 to keep the field finite.
        let frac = |pf: f64, p: f64| if p > 0.0 { pf / p } else { 1.0 };
        let io = cfg.power.io_power();
        let power_first = cfg.power.compute_power(cfg.sigma1);
        let power_retry = cfg.power.compute_power(cfg.sigma2);
        let t_first = phase(cfg.sigma1) + cfg.costs.checkpoint;
        let e_first = phase(cfg.sigma1) * power_first + cfg.costs.checkpoint * io;
        let ln_q_first = -hazard / cfg.sigma1;
        let ln_p_retry = p_any_retry.ln();
        let frac_fail_first = frac(p_fail(cfg.sigma1), p_any_first);
        let frac_fail_retry = frac(p_fail(cfg.sigma2), p_any_retry);
        Ok(MixedFastPattern {
            p_any_first,
            p_any_retry,
            ln_p_retry,
            // The degenerate 1/−0 reciprocal is never consulted: the
            // samplers guard on p ≤ 0 first.
            inv_ln_q_first: ln_q_first.recip(),
            frac_fail_first,
            frac_fail_retry,
            // pᶠ > 0 in the mixed regime (λᶠ > 0), so the libm logs are
            // finite.
            ln_frac_fail_first: frac_fail_first.ln(),
            p_fail_retry: p_fail(cfg.sigma2),
            ln_p_fail_retry: p_fail(cfg.sigma2).ln(),
            lambda_fail: cfg.rates.fail_stop,
            inv_lambda_fail: cfg.rates.fail_stop.recip(),
            t_attempt_first: phase(cfg.sigma1),
            inv_t_attempt_first: phase(cfg.sigma1).recip(),
            t_attempt_retry: phase(cfg.sigma2),
            inv_t_attempt_retry: phase(cfg.sigma2).recip(),
            power_first,
            power_retry,
            t_silent_first: phase(cfg.sigma1) + cfg.costs.recovery,
            e_silent_first: phase(cfg.sigma1) * power_first + cfg.costs.recovery * io,
            t_silent_retry: phase(cfg.sigma2) + cfg.costs.recovery,
            e_silent_retry: phase(cfg.sigma2) * power_retry + cfg.costs.recovery * io,
            t_success_retry: phase(cfg.sigma2) + cfg.costs.checkpoint,
            e_success_retry: phase(cfg.sigma2) * power_retry + cfg.costs.checkpoint * io,
            t_recovery: cfg.costs.recovery,
            e_recovery: cfg.costs.recovery * io,
            sigma_retry: cfg.sigma2,
            first_try: PatternOutcome {
                time: t_first,
                energy: e_first,
                attempts: 1,
                silent_errors: 0,
                fail_stop_errors: 0,
            },
        })
    }

    /// The precomputed `n = 1` outcome — what sampling returns whenever
    /// the first attempt succeeds.
    #[inline]
    pub fn first_try_outcome(&self) -> PatternOutcome {
        self.first_try
    }

    /// Number of consecutive patterns whose first attempt succeeds before
    /// one fails, from the precomputed log of a single uniform — the same
    /// inverse-CDF geometric as [`FastPattern::success_run_len_ln`], with
    /// `ln q(σ₁)` the combined two-source log-success.
    #[inline]
    pub(crate) fn success_run_len_ln(&self, ln_u: f64) -> u64 {
        if self.p_any_first <= 0.0 {
            return u64::MAX;
        }
        (ln_u * self.inv_ln_q_first) as u64
    }

    /// Samples one pattern outcome from a uniform draw source. A success
    /// consumes exactly one draw; a failed first attempt reuses that draw
    /// for its cause and abort duration (see
    /// [`complete_failed_first`](Self::complete_failed_first)).
    #[inline]
    fn sample_with(&self, mut next: impl FnMut() -> f64) -> PatternOutcome {
        // u ∈ (0, 1] and P(u ≤ p) = p: the first attempt fails iff
        // u ≤ p₁; conditioned on that, u/p₁ ~ U(0, 1] classifies it.
        let u = next();
        if u > self.p_any_first {
            return self.first_try;
        }
        self.complete_failed_first(u / self.p_any_first, next)
    }

    /// Completes a pattern whose first attempt failed, `v ∈ (0, 1]` being
    /// the classification draw for that failure: fail-stop iff
    /// `v ≤ pᶠ(σ₁)/p(σ₁)`, in which case `v·p(σ₁) ~ U(0, pᶠ(σ₁)]` is
    /// reused as the truncated-exponential abort draw
    /// `t = −ln(1 − v·p₁)/λᶠ ≤ (W+V)/σ₁`.
    fn complete_failed_first(&self, v: f64, mut next: impl FnMut() -> f64) -> PatternOutcome {
        let mut time;
        let mut energy;
        let mut silent = 0u32;
        let mut fail_stop = 0u32;
        if v <= self.frac_fail_first {
            fail_stop = 1;
            let t = -(-v * self.p_any_first).ln_1p() / self.lambda_fail;
            time = t + self.t_recovery;
            energy = t * self.power_first + self.e_recovery;
        } else {
            silent = 1;
            time = self.t_silent_first;
            energy = self.e_silent_first;
        }
        // k = number of σ₂ attempts to first success, k ~ Geom(q₂) by
        // inverse CDF (same clamp discipline as the silent-only path:
        // `ensure_completes` keeps ln p₂ < 0, the cap covers the e⁻¹²⁸
        // tail).
        let k = if self.p_any_retry <= 0.0 {
            1.0
        } else {
            (next().ln() / self.ln_p_retry)
                .ceil()
                .max(1.0)
                .min(f64::from(MAX_ATTEMPTS - 1))
        };
        let failed_retries = k as u32 - 1;
        for _ in 0..failed_retries {
            // Binomial thinning: each failed σ₂ attempt is independently
            // a fail-stop abort with probability pᶠ(σ₂)/p(σ₂), and the
            // same draw re-scales into the truncated-exponential abort
            // duration (u ≤ pᶠ/p ⇒ u·p ~ U(0, pᶠ], so
            // t = −ln(1 − u·p₂)/λᶠ ≤ (W+V)/σ₂).
            let u = next();
            if u <= self.frac_fail_retry {
                fail_stop += 1;
                let t = -(-u * self.p_any_retry).ln_1p() / self.lambda_fail;
                time += t + self.t_recovery;
                energy += t * self.power_retry + self.e_recovery;
            } else {
                silent += 1;
                time += self.t_silent_retry;
                energy += self.e_silent_retry;
            }
        }
        // The k-th σ₂ attempt succeeds: full phase + checkpoint.
        time += self.t_success_retry;
        energy += self.e_success_retry;
        PatternOutcome {
            time,
            energy,
            attempts: 1 + k as u32,
            silent_errors: silent,
            fail_stop_errors: fail_stop,
        }
    }

    /// The outcome of a pattern whose first attempt failed, sampled from
    /// a buffered chunk stream. Pairs with
    /// [`success_run_len_ln`](Self::success_run_len_ln) in the runner's
    /// run-length-batched hot loop.
    ///
    /// The stream analogue of
    /// [`complete_failed_first`](Self::complete_failed_first),
    /// restructured so every logarithm comes from the stream's
    /// refill-time batched sweep — a scalar `ln` on the abort branch
    /// costs more serial latency than the rest of the trial combined.
    /// Each classification draw still doubles as its abort-duration
    /// draw, through a different (equal in law) inverse map: given
    /// `u ≤ fᶠ`, `u/fᶠ ~ U(0, 1]`, so `X = (ln fᶠ − ln u)/λᶠ` is
    /// `Exp(λᶠ)` and [`abort_duration`](Self::abort_duration) folds it
    /// onto the truncated support. Equal in law, not bitwise, to the
    /// scalar sampler — the contract every fast path already carries
    /// relative to the reference engine; every run variant shares this
    /// sampler, so determinism across threads and range partitions is
    /// unaffected.
    #[inline]
    pub(crate) fn sample_failed_first(
        &self,
        draws: &mut crate::rng::UniformStream,
    ) -> PatternOutcome {
        // Branch-free classification: a failure's cause is a ~50/50
        // coin in the benched regimes, so an `if` here is a hot
        // mispredict per failed trial. Both outcomes are pure values —
        // the abort math runs unconditionally (its inputs are always
        // valid) and `if` on the comparison compiles to selects.
        let (v, ln_v) = draws.next_uniform_ln();
        let is_fail = v <= self.frac_fail_first;
        let mut fail_stop = 0u32;
        let (mut time, mut energy) = if is_fail {
            let t = self.abort_duration(
                ln_v,
                self.ln_frac_fail_first,
                self.t_attempt_first,
                self.inv_t_attempt_first,
            );
            fail_stop = 1;
            (t + self.t_recovery, t * self.power_first + self.e_recovery)
        } else {
            (self.t_silent_first, self.e_silent_first)
        };
        // σ₂ attempts as a direct Bernoulli walk: one draw per attempt,
        // success iff `u > p₂`, and a failed attempt's cause falls out
        // of the *same* draw — `u ≤ pᶠ(σ₂)` is the abort stratum (the
        // abort duration rebases `ln u` off `ln pᶠ(σ₂)`). Equal in law
        // to `complete_failed_first`'s geometric draw + per-failure
        // classification, with the same expected draw count
        // (`E[k] = 1/q₂` either way), but the loop condition is a bare
        // compare on the fresh draw instead of the end of a
        // mul → ceil → clamp → cast dependency chain — the attempt
        // count never materializes through float rounding at all.
        let mut failed_retries = 0u32;
        while failed_retries < MAX_ATTEMPTS - 2 {
            let (u, ln_u) = draws.next_uniform_ln();
            if u > self.p_any_retry {
                break;
            }
            failed_retries += 1;
            // A real branch, not selects: the abort stratum is rare
            // (`pᶠ(σ₂)` is a small slice of each draw), so the predictor
            // rides the silent arm and the floor-bearing duration math
            // stays off the common path entirely.
            if u <= self.p_fail_retry {
                let t = self.abort_duration(
                    ln_u,
                    self.ln_p_fail_retry,
                    self.t_attempt_retry,
                    self.inv_t_attempt_retry,
                );
                time += t + self.t_recovery;
                energy += t * self.power_retry + self.e_recovery;
                fail_stop += 1;
            } else {
                time += self.t_silent_retry;
                energy += self.e_silent_retry;
            }
        }
        let silent = 1 + failed_retries - fail_stop;
        time += self.t_success_retry;
        energy += self.e_success_retry;
        PatternOutcome {
            time,
            energy,
            attempts: 2 + failed_retries,
            silent_errors: silent,
            fail_stop_errors: fail_stop,
        }
    }

    /// Truncated-exponential abort duration from a classification draw's
    /// batched log: conditioned on the abort branch (`u ≤ f`),
    /// `X = (ln f − ln u)/λᶠ` is a full exponential, and by
    /// memorylessness `X mod T` follows the exponential truncated to the
    /// attempt phase `T` — the same law `complete_failed_first` realises
    /// as `−ln(1 − u·p)/λᶠ`. Division-free: reciprocals are precomputed,
    /// and the final `min` absorbs the ≤ 1 ulp a reciprocal quotient can
    /// slip past a wrap boundary (an `ln f` rounded above a boundary
    /// `ln u` similarly lands in the last wrap, still on-support).
    #[inline]
    fn abort_duration(&self, ln_u: f64, ln_frac: f64, t_attempt: f64, inv_t_attempt: f64) -> f64 {
        let x = (ln_frac - ln_u) * self.inv_lambda_fail;
        let t = x - t_attempt * (x * inv_t_attempt).floor();
        t.min(t_attempt)
    }

    /// Samples one pattern outcome from a buffered chunk stream. Never
    /// panics: the degenerate regime is rejected at
    /// [construction](Self::new).
    #[inline]
    pub fn sample(&self, draws: &mut crate::rng::UniformStream) -> PatternOutcome {
        self.sample_with(|| draws.next_uniform())
    }

    /// Samples one pattern outcome directly from an RNG (advancing it).
    #[inline]
    pub fn sample_rng(&self, rng: &mut SimRng) -> PatternOutcome {
        self.sample_with(|| rng.uniform_open())
    }
}

/// The closed-form attempt-law interface the runner's chunked hot loop
/// drives — both fast-path samplers expose a precomputed first-try
/// outcome, geometric success-run sampling (one draw per run), and a
/// failed-first completion sampler, so one generic loop serves both.
pub(crate) trait AttemptLaw {
    /// Precomputed `n = 1` outcome.
    fn first_try_outcome(&self) -> PatternOutcome;
    /// Consecutive first-try successes encoded by one uniform's
    /// precomputed `ln` (the stream's refill-time log sweep).
    fn success_run_len_ln(&self, ln_u: f64) -> u64;
    /// Completes a pattern whose first attempt failed.
    fn sample_failed_first(&self, draws: &mut crate::rng::UniformStream) -> PatternOutcome;
    /// The speed a retry at 1-based `attempt_index ≥ 1` runs at. The
    /// geometric fast paths are constant in the index (a single `σ₂` is
    /// what makes the attempt count a two-stage geometric); per-attempt
    /// schedules route to the scenario engine instead, and the runner
    /// asserts this invariant when it picks a fast path.
    fn retry_speed(&self, attempt_index: u32) -> f64;
}

impl AttemptLaw for FastPattern {
    #[inline]
    fn first_try_outcome(&self) -> PatternOutcome {
        FastPattern::first_try_outcome(self)
    }
    #[inline]
    fn success_run_len_ln(&self, ln_u: f64) -> u64 {
        FastPattern::success_run_len_ln(self, ln_u)
    }
    #[inline]
    fn sample_failed_first(&self, draws: &mut crate::rng::UniformStream) -> PatternOutcome {
        FastPattern::sample_failed_first(self, draws)
    }
    #[inline]
    fn retry_speed(&self, _attempt_index: u32) -> f64 {
        self.sigma_retry
    }
}

impl AttemptLaw for MixedFastPattern {
    #[inline]
    fn first_try_outcome(&self) -> PatternOutcome {
        MixedFastPattern::first_try_outcome(self)
    }
    #[inline]
    fn success_run_len_ln(&self, ln_u: f64) -> u64 {
        MixedFastPattern::success_run_len_ln(self, ln_u)
    }
    #[inline]
    fn sample_failed_first(&self, draws: &mut crate::rng::UniformStream) -> PatternOutcome {
        MixedFastPattern::sample_failed_first(self, draws)
    }
    #[inline]
    fn retry_speed(&self, _attempt_index: u32) -> f64 {
        self.sigma_retry
    }
}

/// Outcome of simulating a whole divisible-load application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// Total wall-clock time (s).
    pub makespan: f64,
    /// Total energy (mJ).
    pub energy: f64,
    /// Number of patterns executed (⌈Wbase/W⌉; the last may be short).
    pub patterns: u64,
    /// Total executions across all patterns.
    pub attempts: u64,
    /// Total silent errors detected.
    pub silent_errors: u64,
    /// Total fail-stop interrupts.
    pub fail_stop_errors: u64,
}

impl AppOutcome {
    /// Expected-makespan overhead per unit of work, `makespan / Wbase`.
    pub fn time_overhead(&self, w_base: f64) -> f64 {
        self.makespan / w_base
    }

    /// Energy overhead per unit of work, `energy / Wbase`.
    pub fn energy_overhead(&self, w_base: f64) -> f64 {
        self.energy / w_base
    }
}

/// Simulates a divisible-load application of `w_base` total work, divided
/// into patterns of `cfg.w` (the final pattern takes the remainder).
pub fn simulate_application(cfg: &SimConfig, w_base: f64, rng: &mut SimRng) -> AppOutcome {
    assert!(w_base > 0.0 && cfg.w > 0.0, "work sizes must be positive");
    let mut remaining = w_base;
    let mut out = AppOutcome {
        makespan: 0.0,
        energy: 0.0,
        patterns: 0,
        attempts: 0,
        silent_errors: 0,
        fail_stop_errors: 0,
    };
    // One reusable pattern config: only `w` changes per pattern (for the
    // final remainder), so hoist the copy out of the hot loop.
    let mut pattern_cfg = *cfg;
    while remaining > 0.0 {
        pattern_cfg.w = remaining.min(cfg.w);
        let p = simulate_pattern(&pattern_cfg, rng);
        out.makespan += p.time;
        out.energy += p.energy;
        out.patterns += 1;
        out.attempts += u64::from(p.attempts);
        out.silent_errors += u64::from(p.silent_errors);
        out.fail_stop_errors += u64::from(p.fail_stop_errors);
        remaining -= pattern_cfg.w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_core::{ErrorRates, PowerModel, ResilienceCosts};

    fn cfg(rates: ErrorRates) -> SimConfig {
        SimConfig {
            w: 2764.0,
            sigma1: 0.4,
            sigma2: 0.4,
            rates,
            costs: ResilienceCosts::symmetric(300.0, 15.4),
            power: PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        }
    }

    #[test]
    fn error_free_pattern_is_deterministic() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let p = simulate_pattern(&c, &mut rng);
        assert_eq!(p.attempts, 1);
        assert_eq!(p.silent_errors, 0);
        assert_eq!(p.fail_stop_errors, 0);
        let expected_t = (2764.0 + 15.4) / 0.4 + 300.0;
        assert!((p.time - expected_t).abs() < 1e-9);
        let expected_e =
            (2764.0 + 15.4) / 0.4 * c.power.compute_power(0.4) + 300.0 * c.power.io_power();
        assert!((p.energy - expected_e).abs() < 1e-6);
    }

    #[test]
    fn every_error_adds_a_recovery() {
        // With a huge silent rate, each attempt until the last detects an
        // error; time must equal attempts·phase + (attempts−1)·R + C.
        let mut c = cfg(ErrorRates::silent_only(1e-3).unwrap());
        c.sigma2 = 0.8;
        let mut rng = SimRng::new(99);
        for _ in 0..200 {
            let p = simulate_pattern(&c, &mut rng);
            let phase1 = (c.w + c.costs.verification) / c.sigma1;
            let phase2 = (c.w + c.costs.verification) / c.sigma2;
            let n = p.attempts as f64;
            let expected =
                phase1 + (n - 1.0) * phase2 + (n - 1.0) * c.costs.recovery + c.costs.checkpoint;
            assert!(
                (p.time - expected).abs() < 1e-6,
                "attempts={n}: {} vs {expected}",
                p.time
            );
            assert_eq!(p.silent_errors, p.attempts - 1);
        }
    }

    #[test]
    fn fail_stop_attempts_are_shorter_than_full_phase() {
        let c = SimConfig {
            rates: ErrorRates::fail_stop_only(1e-3).unwrap(),
            ..cfg(ErrorRates::new(0.0, 0.0).unwrap())
        };
        let mut rng = SimRng::new(7);
        let mut saw_failure = false;
        for _ in 0..100 {
            let p = simulate_pattern(&c, &mut rng);
            if p.fail_stop_errors > 0 {
                saw_failure = true;
                // Time must be strictly less than the all-full-phases bound.
                let phase1 = (c.w + c.costs.verification) / c.sigma1;
                let phase2 = (c.w + c.costs.verification) / c.sigma2;
                let n = p.attempts as f64;
                let upper =
                    phase1 + (n - 1.0) * phase2 + (n - 1.0) * c.costs.recovery + c.costs.checkpoint;
                assert!(p.time < upper);
            }
        }
        assert!(saw_failure, "λf = 1e-3 must produce failures over 100 runs");
    }

    #[test]
    fn reexecution_speed_is_used_after_first_failure() {
        // σ2 ≫ σ1 with frequent failures: average time with fast σ2 must
        // be lower than with slow σ2. (λW/σ2 stays ≤ 3.7 so the slow
        // variant still completes in ~40 attempts on average.)
        let mut slow = cfg(ErrorRates::silent_only(2e-4).unwrap());
        slow.sigma2 = 0.15;
        let mut fast = slow;
        fast.sigma2 = 1.0;
        let n = 1500;
        let avg = |c: &SimConfig, seed| {
            let mut rng = SimRng::new(seed);
            (0..n)
                .map(|_| simulate_pattern(c, &mut rng).time)
                .sum::<f64>()
                / n as f64
        };
        assert!(avg(&fast, 3) < avg(&slow, 3));
    }

    #[test]
    fn application_splits_into_patterns() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let app = simulate_application(&c, 10.0 * c.w, &mut rng);
        assert_eq!(app.patterns, 10);
        let single = simulate_pattern(&c, &mut SimRng::new(1));
        assert!((app.makespan - 10.0 * single.time).abs() < 1e-6);
        assert!((app.energy - 10.0 * single.energy).abs() < 1e-3);
    }

    #[test]
    fn application_handles_remainder_pattern() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let app = simulate_application(&c, 2.5 * c.w, &mut rng);
        assert_eq!(app.patterns, 3);
        // Last pattern is half-size: same C/V but half the work time.
        let full = (c.w + c.costs.verification) / c.sigma1 + c.costs.checkpoint;
        let half = (0.5 * c.w + c.costs.verification) / c.sigma1 + c.costs.checkpoint;
        assert!((app.makespan - (2.0 * full + half)).abs() < 1e-6);
    }

    #[test]
    fn overheads_divide_by_base_work() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let mut rng = SimRng::new(1);
        let w_base = 4.0 * c.w;
        let app = simulate_application(&c, w_base, &mut rng);
        assert!((app.time_overhead(w_base) * w_base - app.makespan).abs() < 1e-9);
        assert!((app.energy_overhead(w_base) * w_base - app.energy).abs() < 1e-9);
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let c = cfg(ErrorRates::new(1e-4, 5e-5).unwrap());
        let a = simulate_pattern(&c, &mut SimRng::new(1234));
        let b = simulate_pattern(&c, &mut SimRng::new(1234));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn application_rejects_zero_work() {
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        simulate_application(&c, 0.0, &mut SimRng::new(1));
    }

    #[test]
    fn fast_path_eligibility_excludes_fail_stop() {
        assert!(fast_path_eligible(&cfg(
            ErrorRates::silent_only(1e-4).unwrap()
        )));
        assert!(fast_path_eligible(&cfg(ErrorRates::new(0.0, 0.0).unwrap())));
        assert!(!fast_path_eligible(&cfg(
            ErrorRates::new(1e-4, 1e-5).unwrap()
        )));
        // Each sampler rejects the other's domain with a structured error.
        assert_eq!(
            FastPattern::new(&cfg(ErrorRates::new(1e-4, 1e-5).unwrap())).err(),
            Some(EngineError::FailStopUnsupported { fail_stop: 1e-5 })
        );
        assert_eq!(
            MixedFastPattern::new(&cfg(ErrorRates::silent_only(1e-4).unwrap())).err(),
            Some(EngineError::SilentOnlyConfig)
        );
        assert!(MixedFastPattern::new(&cfg(ErrorRates::new(1e-4, 1e-5).unwrap())).is_ok());
    }

    #[test]
    fn fast_path_error_free_equals_reference() {
        // λ = 0: both engines are deterministic and must agree exactly.
        let c = cfg(ErrorRates::new(0.0, 0.0).unwrap());
        let reference = simulate_pattern(&c, &mut SimRng::new(1));
        let fast = simulate_pattern_fast(&c, &mut SimRng::new(1));
        assert_eq!(fast.attempts, 1);
        assert!((fast.time - reference.time).abs() < 1e-9);
        assert!((fast.energy - reference.energy).abs() < 1e-6);
    }

    #[test]
    fn fast_path_outcomes_match_reference_per_attempt_count() {
        // For any sampled attempt count n the fast-path time/energy must
        // equal the reference formula: all attempts run full phases.
        let mut c = cfg(ErrorRates::silent_only(3e-4).unwrap());
        c.sigma2 = 0.8;
        let fast = FastPattern::new(&c).unwrap();
        let mut rng = SimRng::new(77);
        let phase1 = (c.w + c.costs.verification) / c.sigma1;
        let phase2 = (c.w + c.costs.verification) / c.sigma2;
        let mut multi = 0;
        for _ in 0..500 {
            let p = fast.sample_rng(&mut rng);
            let n = f64::from(p.attempts);
            let expected_t =
                phase1 + (n - 1.0) * phase2 + (n - 1.0) * c.costs.recovery + c.costs.checkpoint;
            assert!((p.time - expected_t).abs() < 1e-6, "attempts = {n}");
            assert_eq!(p.silent_errors, p.attempts - 1);
            assert_eq!(p.fail_stop_errors, 0);
            if p.attempts > 1 {
                multi += 1;
            }
        }
        assert!(multi > 0, "λW/σ1 ≈ 2 must produce re-executions");
    }

    #[test]
    fn fast_path_mean_attempts_match_geometric_law() {
        // E[n] = 1 + p₁ / (1 − p₂) for the two-stage geometric law.
        let mut c = cfg(ErrorRates::silent_only(2e-4).unwrap());
        c.sigma2 = 0.8;
        let p1 = -(-2e-4 * c.w / c.sigma1).exp_m1();
        let p2 = -(-2e-4 * c.w / c.sigma2).exp_m1();
        let expected = 1.0 + p1 / (1.0 - p2);
        let mut rng = SimRng::new(4242);
        let n = 200_000;
        let mean = (0..n)
            .map(|_| f64::from(simulate_pattern_fast(&c, &mut rng).attempts))
            .sum::<f64>()
            / f64::from(n);
        // SE ≈ 0.002; allow 5σ.
        assert!(
            (mean - expected).abs() < 0.012,
            "mean {mean} vs analytic {expected}"
        );
    }

    #[test]
    fn success_run_lengths_follow_the_geometric_law() {
        // E[run] = (1 − p₁)/p₁ for P(run = j) = (1 − p₁)^j · p₁.
        let c = cfg(ErrorRates::silent_only(1e-4).unwrap());
        let fp = FastPattern::new(&c).unwrap();
        let p1 = -(-1e-4 * c.w / c.sigma1).exp_m1();
        let expected = (1.0 - p1) / p1;
        let mut rng = SimRng::new(31337);
        let n = 100_000;
        let mean = (0..n)
            .map(|_| fp.success_run_len(rng.uniform_open()) as f64)
            .sum::<f64>()
            / f64::from(n);
        // std(run) ≈ E[run] ≈ 1.0 here (λW/σ₁ ≈ 0.69): SE ≈ 0.004.
        assert!(
            (mean - expected).abs() < 5.0 * expected / f64::from(n).sqrt(),
            "mean run {mean} vs analytic {expected}"
        );
        // u = 1 ⇒ the shortest run; an error-free config never fails.
        assert_eq!(fp.success_run_len(1.0), 0);
        let error_free = FastPattern::new(&cfg(ErrorRates::new(0.0, 0.0).unwrap())).unwrap();
        assert_eq!(error_free.success_run_len(0.5), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "silent-only")]
    fn fast_path_rejects_mixed_configs() {
        let c = cfg(ErrorRates::new(1e-4, 1e-5).unwrap());
        simulate_pattern_fast(&c, &mut SimRng::new(1));
    }

    #[test]
    fn degenerate_configs_are_rejected_at_construction() {
        // λW/σ₂ ≈ 700: e^{−700} underflows the retry success probability
        // to ~0. Both samplers must refuse at construction (never in the
        // sampling hot loop) so degenerate configs surface as a
        // structured error, not a panic inside a rayon worker.
        let mut c = cfg(ErrorRates::silent_only(1.0).unwrap());
        c.w = 700.0;
        c.sigma1 = 1.0;
        c.sigma2 = 1.0;
        assert!(matches!(
            FastPattern::new(&c),
            Err(EngineError::NeverCompletes { .. })
        ));
        assert!(ensure_completes(&c).is_err());
        c.rates = ErrorRates::new(0.5, 0.5).unwrap();
        assert!(matches!(
            MixedFastPattern::new(&c),
            Err(EngineError::NeverCompletes { .. })
        ));
        // Just inside the margin: 1/q(σ₂) ≤ MAX_ATTEMPTS/128 constructs.
        let mut ok = cfg(ErrorRates::new(8e-5, 5e-5).unwrap());
        ok.sigma2 = 0.8;
        assert!(MixedFastPattern::new(&ok).is_ok());
        assert!(ensure_completes(&ok).is_ok());
    }

    #[test]
    fn mixed_fast_path_attempts_match_two_stage_geometric() {
        // E[n] = 1 + p₁/q₂ for the two-stage geometric law in the
        // combined per-attempt success probability.
        let mut c = cfg(ErrorRates::new(2e-4, 8e-5).unwrap());
        c.sigma2 = 0.8;
        let mixed = MixedFastPattern::new(&c).unwrap();
        let hazard = |sigma: f64| (8e-5 * (c.w + c.costs.verification) + 2e-4 * c.w) / sigma;
        let p1 = -(-hazard(c.sigma1)).exp_m1();
        let q2 = (-hazard(c.sigma2)).exp();
        let expected = 1.0 + p1 / q2;
        let mut rng = SimRng::new(4242);
        let n = 200_000;
        let mean = (0..n)
            .map(|_| f64::from(mixed.sample_rng(&mut rng).attempts))
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (mean - expected).abs() < 0.02,
            "mean {mean} vs analytic {expected}"
        );
    }

    #[test]
    fn mixed_outcomes_are_internally_consistent() {
        let mut c = cfg(ErrorRates::new(1e-4, 8e-5).unwrap());
        c.sigma2 = 0.8;
        let mixed = MixedFastPattern::new(&c).unwrap();
        let phase1 = (c.w + c.costs.verification) / c.sigma1;
        let phase2 = (c.w + c.costs.verification) / c.sigma2;
        let mut rng = SimRng::new(77);
        let mut saw_fail_stop = false;
        let mut saw_silent = false;
        for _ in 0..2000 {
            let p = mixed.sample_rng(&mut rng);
            assert_eq!(p.attempts, 1 + p.silent_errors + p.fail_stop_errors);
            // Every attempt takes at most its full phase; every failure
            // adds one recovery, the success one checkpoint.
            let n = f64::from(p.attempts);
            let upper = phase1
                + (n - 1.0) * (phase2.max(phase1) + c.costs.recovery)
                + c.costs.checkpoint
                + 1e-9;
            assert!(p.time <= upper, "time {} > bound {upper}", p.time);
            // Aborts lose at least zero time but the recoveries, final
            // phase and checkpoint are always paid.
            let lower = (n - 1.0) * c.costs.recovery + phase2.min(phase1) + c.costs.checkpoint;
            assert!(p.time >= lower - 1e-9, "time {} < bound {lower}", p.time);
            saw_fail_stop |= p.fail_stop_errors > 0;
            saw_silent |= p.silent_errors > 0;
        }
        assert!(saw_fail_stop && saw_silent, "both causes must occur");
    }

    #[test]
    fn mixed_fail_stop_only_config_never_reports_silent_errors() {
        // λˢ = 0 makes every failure a fail-stop abort: the categorical
        // collapses and P(fail-stop | failure) = 1.
        let c = cfg(ErrorRates::fail_stop_only(2e-4).unwrap());
        let mixed = MixedFastPattern::new(&c).unwrap();
        let mut rng = SimRng::new(9);
        let mut failures = 0u32;
        for _ in 0..2000 {
            let p = mixed.sample_rng(&mut rng);
            assert_eq!(p.silent_errors, 0);
            failures += p.fail_stop_errors;
        }
        assert!(failures > 0, "λf(W+V)/σ ≈ 1.4 must produce aborts");
    }

    #[test]
    fn non_finite_success_probability_is_rejected() {
        // Regression: `q * MAX_ATTEMPTS < 128.0` is *false* when q is
        // NaN (NaN compares false against everything), so before the
        // explicit finiteness check a NaN config sailed through
        // `ensure_completes` and was accepted by both samplers.
        let mut c = cfg(ErrorRates::silent_only(1e-4).unwrap());
        c.w = f64::NAN;
        assert!(matches!(
            ensure_completes(&c),
            Err(EngineError::NonFiniteSuccessProbability { .. })
        ));
        assert!(matches!(
            FastPattern::new(&c),
            Err(EngineError::NonFiniteSuccessProbability { .. })
        ));

        let mut nan_speed = cfg(ErrorRates::new(1e-4, 5e-5).unwrap());
        nan_speed.sigma2 = f64::NAN;
        assert!(ensure_completes(&nan_speed).is_err());
        assert!(MixedFastPattern::new(&nan_speed).is_err());

        // +∞ hazard → q = 0 is *finite* and stays a NeverCompletes;
        // −∞ work → q = +∞ is the non-finite rejection.
        let mut inf_w = cfg(ErrorRates::silent_only(1e-4).unwrap());
        inf_w.w = f64::NEG_INFINITY;
        assert!(matches!(
            ensure_completes(&inf_w),
            Err(EngineError::NonFiniteSuccessProbability { .. })
        ));

        // Scenario variant shares the guard, for every law.
        for law in [
            ErrorLaw::Exponential,
            ErrorLaw::Weibull { shape: 0.7 },
            ErrorLaw::LogNormal { sigma: 1.2 },
        ] {
            assert!(matches!(
                ensure_scenario_completes(&c, law, None),
                Err(EngineError::NonFiniteSuccessProbability { .. })
            ));
        }
    }

    #[test]
    fn scenario_exponential_is_bit_identical_to_reference() {
        // The scenario engine with the exponential law and no schedule
        // must reproduce the historical reference engine draw-for-draw.
        let c = cfg(ErrorRates::new(2e-4, 8e-5).unwrap());
        for seed in [1u64, 7, 1234, 98765] {
            let reference = simulate_pattern(&c, &mut SimRng::new(seed));
            let scenario =
                simulate_pattern_scenario(&c, ErrorLaw::Exponential, None, &mut SimRng::new(seed));
            assert_eq!(reference, scenario);
            assert_eq!(
                reference.time.to_bits(),
                scenario.time.to_bits(),
                "seed {seed}"
            );
            assert_eq!(reference.energy.to_bits(), scenario.energy.to_bits());
        }
    }

    #[test]
    fn scenario_weibull_shape_one_matches_exponential() {
        // Weibull with shape = 1 *is* the exponential law; the sampler
        // special-cases it to the same −ln(u)/λ map, so outcomes agree
        // bitwise on the same seed despite taking the generic draw path.
        let c = cfg(ErrorRates::silent_only(2e-4).unwrap());
        for seed in [3u64, 42, 777] {
            let exp =
                simulate_pattern_scenario(&c, ErrorLaw::Exponential, None, &mut SimRng::new(seed));
            let wei = simulate_pattern_scenario(
                &c,
                ErrorLaw::Weibull { shape: 1.0 },
                None,
                &mut SimRng::new(seed),
            );
            assert_eq!(exp, wei, "seed {seed}");
        }
    }

    #[test]
    fn scenario_schedule_speeds_are_applied_per_attempt() {
        // Huge silent rate forces retries; a schedule (σ₁, s₂, s₃, s₃…)
        // must yield exactly the per-attempt-speed time decomposition.
        let mut c = cfg(ErrorRates::silent_only(1e-3).unwrap());
        c.sigma2 = f64::NAN; // must never be consulted with a schedule
        let schedule = SpeedSchedule::new(0.4, vec![0.6, 1.0]).unwrap();
        let mut rng = SimRng::new(2024);
        let mut saw_deep = false;
        for _ in 0..300 {
            let p = simulate_pattern_scenario(&c, ErrorLaw::Exponential, Some(&schedule), &mut rng);
            assert!(p.time.is_finite());
            let phase = |s: f64| (c.w + c.costs.verification) / s;
            let n = p.attempts;
            let mut expected = c.costs.checkpoint + f64::from(n - 1) * c.costs.recovery;
            for i in 0..n {
                expected += phase(schedule.speed_for_attempt(i));
            }
            assert!(
                (p.time - expected).abs() < 1e-6,
                "attempts {n}: {} vs {expected}",
                p.time
            );
            saw_deep |= n > 3;
        }
        assert!(saw_deep, "λW/σ must push past the scheduled prefix");
    }

    #[test]
    fn scenario_lognormal_runs_and_respects_recovery_accounting() {
        let mut c = cfg(ErrorRates::silent_only(5e-4).unwrap());
        c.sigma2 = 0.8;
        let mut rng = SimRng::new(11);
        let mut saw_retry = false;
        for _ in 0..300 {
            let p =
                simulate_pattern_scenario(&c, ErrorLaw::LogNormal { sigma: 1.2 }, None, &mut rng);
            assert_eq!(p.attempts, 1 + p.silent_errors);
            assert!(p.time.is_finite() && p.energy.is_finite());
            saw_retry |= p.attempts > 1;
        }
        assert!(saw_retry, "λW ≈ 1.4 must produce detected silent errors");
    }

    #[test]
    fn fast_paths_report_a_constant_retry_speed() {
        let mut c = cfg(ErrorRates::silent_only(1e-4).unwrap());
        c.sigma2 = 0.8;
        let fast = FastPattern::new(&c).unwrap();
        assert_eq!(AttemptLaw::retry_speed(&fast, 1), 0.8);
        assert_eq!(AttemptLaw::retry_speed(&fast, 999), 0.8);
        c.rates = ErrorRates::new(1e-4, 5e-5).unwrap();
        let mixed = MixedFastPattern::new(&c).unwrap();
        assert_eq!(AttemptLaw::retry_speed(&mixed, 1), 0.8);
        assert_eq!(AttemptLaw::retry_speed(&mixed, 2), 0.8);
    }
}
