//! Parallel Monte Carlo replication and analytic-vs-sampled validation.

use crate::engine::{simulate_pattern, simulate_pattern_traced, SimConfig};
use crate::histogram::Histogram;
use crate::rng::SimRng;
use crate::stats::Stats;
use crate::trace::TraceRecorder;
use rayon::prelude::*;
use rexec_obs::Shard;
use serde::{Deserialize, Serialize};

/// Aggregated result of many independent pattern simulations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Pattern completion time (s).
    pub time: Stats,
    /// Pattern energy (mJ).
    pub energy: Stats,
    /// Executions per pattern.
    pub attempts: Stats,
    /// Trace events dropped by a bounded recorder (0 for untraced runs).
    pub dropped_events: u64,
}

impl Summary {
    fn push(&mut self, p: &crate::engine::PatternOutcome) {
        self.time.push(p.time);
        self.energy.push(p.energy);
        self.attempts.push(f64::from(p.attempts));
    }

    fn merge(mut self, other: Summary) -> Summary {
        self.time.merge(&other.time);
        self.energy.merge(&other.energy);
        self.attempts.merge(&other.attempts);
        self.dropped_events += other.dropped_events;
        self
    }
}

/// Monte Carlo driver: replicates a pattern simulation `trials` times,
/// in parallel, with per-trial independent RNG streams derived from a
/// master seed (bit-reproducible regardless of thread count).
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Simulation configuration.
    pub config: SimConfig,
    /// Number of independent replications.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl MonteCarlo {
    /// Creates a driver.
    pub fn new(config: SimConfig, trials: u64, seed: u64) -> Self {
        MonteCarlo {
            config,
            trials,
            seed,
        }
    }

    /// Runs all replications in parallel and aggregates.
    ///
    /// Instrumented: each worker fills a thread-local [`Shard`]
    /// (`runner.trials` counter, `runner.attempts_per_trial` sketch); the
    /// shards merge deterministically along the reduction and flush into
    /// the global registry, so the aggregates are identical for any
    /// `RAYON_NUM_THREADS`. The wall-clock `runner.trials_per_sec` gauge
    /// is excluded from that guarantee.
    pub fn run(&self) -> Summary {
        let _timer = rexec_obs::span!("runner.run");
        let started = std::time::Instant::now();
        let summary = self.run_range(0, self.trials);
        self.record_throughput(started);
        summary
    }

    /// Like [`run`](Self::run), invoking `progress(done, total)` after
    /// each slice of trials — for user-facing progress lines on long
    /// runs. Slices are aligned to the parallel chunk size, so the exact
    /// per-trial RNG streams (and all counter/histogram aggregates) match
    /// [`run`](Self::run); the float `Stats` moments may differ in the
    /// last bits because the merge tree is shaped differently.
    pub fn run_with_progress(&self, progress: &mut dyn FnMut(u64, u64)) -> Summary {
        let _timer = rexec_obs::span!("runner.run");
        let started = std::time::Instant::now();
        // ~10 progress slices, each a multiple of CHUNK trials.
        let slice = (self.trials / 10)
            .next_multiple_of(Self::CHUNK)
            .max(Self::CHUNK);
        let mut summary = Summary::default();
        let mut done = 0;
        while done < self.trials {
            let end = (done + slice).min(self.trials);
            summary = summary.merge(self.run_range(done, end));
            done = end;
            progress(done, self.trials);
        }
        self.record_throughput(started);
        summary
    }

    /// Runs trial indices `[start, end)` in parallel. Each trial `i`
    /// draws from `SimRng::for_trial(seed, i)` regardless of the range
    /// split, so any partition of `0..trials` reproduces the trials of a
    /// single [`run`](Self::run).
    pub fn run_range(&self, start: u64, end: u64) -> Summary {
        let chunks: Vec<(u64, u64)> = (start..end)
            .step_by(Self::CHUNK as usize)
            .map(|lo| (lo, (lo + Self::CHUNK).min(end)))
            .collect();
        let (summary, shard) = chunks
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut s = Summary::default();
                let mut shard = Shard::new();
                for i in lo..hi {
                    let mut rng = SimRng::for_trial(self.seed, i);
                    let p = simulate_pattern(&self.config, &mut rng);
                    s.push(&p);
                    shard.record("runner.attempts_per_trial", f64::from(p.attempts));
                }
                // One batched increment per chunk: same total as a
                // per-trial `incr`, fewer map lookups in the hot loop.
                shard.incr("runner.trials", hi - lo);
                (s, shard)
            })
            .reduce(
                || (Summary::default(), Shard::new()),
                |(sa, ha), (sb, hb)| (sa.merge(sb), ha.merge(hb)),
            );
        rexec_obs::global().absorb(&shard);
        summary
    }

    const CHUNK: u64 = 256;

    fn record_throughput(&self, started: std::time::Instant) {
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            rexec_obs::gauge!("runner.trials_per_sec").set(self.trials as f64 / secs);
        }
    }

    /// Runs all replications in parallel, additionally collecting full
    /// time/energy distributions (1 % relative resolution). Returns
    /// `(summary, time_histogram, energy_histogram)`.
    pub fn run_with_histograms(&self) -> (Summary, Histogram, Histogram) {
        const CHUNK: u64 = 256;
        let chunks: Vec<(u64, u64)> = (0..self.trials)
            .step_by(CHUNK as usize)
            .map(|start| (start, (start + CHUNK).min(self.trials)))
            .collect();
        chunks
            .into_par_iter()
            .map(|(start, end)| {
                let mut s = Summary::default();
                let mut th = Histogram::with_default_resolution();
                let mut eh = Histogram::with_default_resolution();
                for i in start..end {
                    let mut rng = SimRng::for_trial(self.seed, i);
                    let p = simulate_pattern(&self.config, &mut rng);
                    s.push(&p);
                    th.record(p.time);
                    eh.record(p.energy);
                }
                (s, th, eh)
            })
            .reduce(
                || {
                    (
                        Summary::default(),
                        Histogram::with_default_resolution(),
                        Histogram::with_default_resolution(),
                    )
                },
                |(sa, mut tha, mut eha), (sb, thb, ehb)| {
                    tha.merge(&thb);
                    eha.merge(&ehb);
                    (sa.merge(sb), tha, eha)
                },
            )
    }

    /// Runs sequentially (for determinism tests and tiny workloads).
    pub fn run_sequential(&self) -> Summary {
        let mut s = Summary::default();
        for i in 0..self.trials {
            let mut rng = SimRng::for_trial(self.seed, i);
            s.push(&simulate_pattern(&self.config, &mut rng));
        }
        s
    }

    /// Runs sequentially while recording every trial's events into one
    /// bounded trace (at most `capacity` events; the rest are counted as
    /// dropped and surfaced in [`Summary::dropped_events`]).
    pub fn run_with_trace(&self, capacity: usize) -> (Summary, TraceRecorder) {
        let mut recorder = TraceRecorder::new(capacity);
        let mut s = Summary::default();
        for i in 0..self.trials {
            let mut rng = SimRng::for_trial(self.seed, i);
            s.push(&simulate_pattern_traced(
                &self.config,
                &mut rng,
                Some(&mut recorder),
            ));
        }
        s.dropped_events = recorder.dropped() as u64;
        (s, recorder)
    }

    /// Runs and compares the sampled means against analytic expectations.
    pub fn validate(&self, expected_time: f64, expected_energy: f64, z: f64) -> ValidationReport {
        let summary = self.run();
        ValidationReport {
            summary,
            expected_time,
            expected_energy,
            z,
        }
    }
}

/// Sampled-vs-analytic comparison at `z` standard errors.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The sampled summary.
    pub summary: Summary,
    /// Analytic expected pattern time.
    pub expected_time: f64,
    /// Analytic expected pattern energy.
    pub expected_energy: f64,
    /// Number of standard errors for the acceptance interval.
    pub z: f64,
}

impl ValidationReport {
    /// Whether the analytic time lies inside the sampled CI.
    pub fn time_ok(&self) -> bool {
        self.summary.time.contains(self.expected_time, self.z)
    }

    /// Whether the analytic energy lies inside the sampled CI.
    pub fn energy_ok(&self) -> bool {
        self.summary.energy.contains(self.expected_energy, self.z)
    }

    /// Both checks.
    pub fn ok(&self) -> bool {
        self.time_ok() && self.energy_ok()
    }

    /// Relative gap between sampled mean time and the analytic value.
    pub fn time_rel_error(&self) -> f64 {
        (self.summary.time.mean() - self.expected_time).abs() / self.expected_time
    }

    /// Relative gap between sampled mean energy and the analytic value.
    pub fn energy_rel_error(&self) -> f64 {
        (self.summary.energy.mean() - self.expected_energy).abs() / self.expected_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_core::{ErrorRates, MixedModel, PowerModel, ResilienceCosts, SilentModel};

    fn silent_model(lambda: f64) -> SilentModel {
        SilentModel::new(
            lambda,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn parallel_equals_sequential() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let mc = MonteCarlo::new(cfg, 2000, 42);
        let par = mc.run();
        let seq = mc.run_sequential();
        assert_eq!(par.time.count(), seq.time.count());
        assert!((par.time.mean() - seq.time.mean()).abs() < 1e-9);
        assert!((par.energy.mean() - seq.energy.mean()).abs() < 1e-6);
    }

    #[test]
    fn histograms_are_consistent_with_summary() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let mc = MonteCarlo::new(cfg, 5000, 42);
        let (summary, th, eh) = mc.run_with_histograms();
        assert_eq!(th.count(), summary.time.count());
        assert_eq!(eh.count(), summary.energy.count());
        // Exact extremes agree; histogram median sits between them.
        assert_eq!(th.min(), summary.time.min());
        assert_eq!(th.max(), summary.time.max());
        let med = th.median().unwrap();
        assert!(summary.time.min() <= med && med <= summary.time.max());
        // With λW/σ1 ≈ 0.7 the distribution is multi-modal (0, 1, 2…
        // re-executions): p95 must exceed the error-free completion time.
        let error_free = (2764.0 + 15.4) / 0.4 + 300.0;
        assert!(th.quantile(0.95).unwrap() > error_free);
        // And the summary mean must be consistent with the histogram's
        // coarse view (between p25 and p75 would be too strict for a
        // skewed distribution; use min/max envelope).
        assert!(summary.time.mean() > th.min() && summary.time.mean() < th.max());
    }

    #[test]
    fn sampled_time_matches_proposition_2() {
        // λW/σ ≈ 0.7: errors are frequent, so the two-speed structure is
        // heavily exercised.
        let m = silent_model(1e-4);
        let (w, s1, s2) = (2764.0, 0.4, 0.8);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 60_000, 7);
        let report = mc.validate(
            m.expected_time(w, s1, s2),
            m.expected_energy(w, s1, s2),
            3.5,
        );
        assert!(
            report.ok(),
            "time: sampled {} vs analytic {} (rel {:.4}); energy: sampled {} vs analytic {} (rel {:.4})",
            report.summary.time.mean(),
            report.expected_time,
            report.time_rel_error(),
            report.summary.energy.mean(),
            report.expected_energy,
            report.energy_rel_error()
        );
    }

    #[test]
    fn sampled_attempts_match_expected_executions() {
        let m = silent_model(2e-4);
        let (w, s1, s2) = (2000.0, 0.4, 1.0);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let summary = MonteCarlo::new(cfg, 40_000, 11).run();
        let expected = m.expected_executions(w, s1, s2);
        assert!(
            summary.attempts.contains(expected, 3.5),
            "sampled {} vs analytic {expected}",
            summary.attempts.mean()
        );
    }

    #[test]
    fn sampled_mixed_model_matches_propositions_4_and_5() {
        let mm = MixedModel::new(
            ErrorRates::new(8e-5, 5e-5).unwrap(),
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        );
        let (w, s1, s2) = (3000.0, 0.6, 1.0);
        let cfg = SimConfig::from_mixed_model(&mm, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 60_000, 13);
        let report = mc.validate(
            mm.expected_time(w, s1, s2),
            mm.expected_energy(w, s1, s2),
            3.5,
        );
        assert!(
            report.ok(),
            "time rel {:.4}, energy rel {:.4}",
            report.time_rel_error(),
            report.energy_rel_error()
        );
    }

    #[test]
    fn validation_fails_for_wrong_expectation() {
        let m = silent_model(1e-4);
        let (w, s1, s2) = (2764.0, 0.4, 0.4);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 10_000, 3);
        let report = mc.validate(
            m.expected_time(w, s1, s2) * 1.2,
            m.expected_energy(w, s1, s2),
            3.0,
        );
        assert!(!report.time_ok());
    }
}
