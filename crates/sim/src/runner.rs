//! Parallel Monte Carlo replication and analytic-vs-sampled validation.

use crate::engine::{simulate_pattern, SimConfig};
use crate::histogram::Histogram;
use crate::rng::SimRng;
use crate::stats::Stats;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Aggregated result of many independent pattern simulations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Pattern completion time (s).
    pub time: Stats,
    /// Pattern energy (mJ).
    pub energy: Stats,
    /// Executions per pattern.
    pub attempts: Stats,
}

impl Summary {
    fn push(&mut self, p: &crate::engine::PatternOutcome) {
        self.time.push(p.time);
        self.energy.push(p.energy);
        self.attempts.push(f64::from(p.attempts));
    }

    fn merge(mut self, other: Summary) -> Summary {
        self.time.merge(&other.time);
        self.energy.merge(&other.energy);
        self.attempts.merge(&other.attempts);
        self
    }
}

/// Monte Carlo driver: replicates a pattern simulation `trials` times,
/// in parallel, with per-trial independent RNG streams derived from a
/// master seed (bit-reproducible regardless of thread count).
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Simulation configuration.
    pub config: SimConfig,
    /// Number of independent replications.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl MonteCarlo {
    /// Creates a driver.
    pub fn new(config: SimConfig, trials: u64, seed: u64) -> Self {
        MonteCarlo {
            config,
            trials,
            seed,
        }
    }

    /// Runs all replications in parallel and aggregates.
    pub fn run(&self) -> Summary {
        const CHUNK: u64 = 256;
        let chunks: Vec<(u64, u64)> = (0..self.trials)
            .step_by(CHUNK as usize)
            .map(|start| (start, (start + CHUNK).min(self.trials)))
            .collect();
        chunks
            .into_par_iter()
            .map(|(start, end)| {
                let mut s = Summary::default();
                for i in start..end {
                    let mut rng = SimRng::for_trial(self.seed, i);
                    s.push(&simulate_pattern(&self.config, &mut rng));
                }
                s
            })
            .reduce(Summary::default, Summary::merge)
    }

    /// Runs all replications in parallel, additionally collecting full
    /// time/energy distributions (1 % relative resolution). Returns
    /// `(summary, time_histogram, energy_histogram)`.
    pub fn run_with_histograms(&self) -> (Summary, Histogram, Histogram) {
        const CHUNK: u64 = 256;
        let chunks: Vec<(u64, u64)> = (0..self.trials)
            .step_by(CHUNK as usize)
            .map(|start| (start, (start + CHUNK).min(self.trials)))
            .collect();
        chunks
            .into_par_iter()
            .map(|(start, end)| {
                let mut s = Summary::default();
                let mut th = Histogram::with_default_resolution();
                let mut eh = Histogram::with_default_resolution();
                for i in start..end {
                    let mut rng = SimRng::for_trial(self.seed, i);
                    let p = simulate_pattern(&self.config, &mut rng);
                    s.push(&p);
                    th.record(p.time);
                    eh.record(p.energy);
                }
                (s, th, eh)
            })
            .reduce(
                || {
                    (
                        Summary::default(),
                        Histogram::with_default_resolution(),
                        Histogram::with_default_resolution(),
                    )
                },
                |(sa, mut tha, mut eha), (sb, thb, ehb)| {
                    tha.merge(&thb);
                    eha.merge(&ehb);
                    (sa.merge(sb), tha, eha)
                },
            )
    }

    /// Runs sequentially (for determinism tests and tiny workloads).
    pub fn run_sequential(&self) -> Summary {
        let mut s = Summary::default();
        for i in 0..self.trials {
            let mut rng = SimRng::for_trial(self.seed, i);
            s.push(&simulate_pattern(&self.config, &mut rng));
        }
        s
    }

    /// Runs and compares the sampled means against analytic expectations.
    pub fn validate(&self, expected_time: f64, expected_energy: f64, z: f64) -> ValidationReport {
        let summary = self.run();
        ValidationReport {
            summary,
            expected_time,
            expected_energy,
            z,
        }
    }
}

/// Sampled-vs-analytic comparison at `z` standard errors.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The sampled summary.
    pub summary: Summary,
    /// Analytic expected pattern time.
    pub expected_time: f64,
    /// Analytic expected pattern energy.
    pub expected_energy: f64,
    /// Number of standard errors for the acceptance interval.
    pub z: f64,
}

impl ValidationReport {
    /// Whether the analytic time lies inside the sampled CI.
    pub fn time_ok(&self) -> bool {
        self.summary.time.contains(self.expected_time, self.z)
    }

    /// Whether the analytic energy lies inside the sampled CI.
    pub fn energy_ok(&self) -> bool {
        self.summary.energy.contains(self.expected_energy, self.z)
    }

    /// Both checks.
    pub fn ok(&self) -> bool {
        self.time_ok() && self.energy_ok()
    }

    /// Relative gap between sampled mean time and the analytic value.
    pub fn time_rel_error(&self) -> f64 {
        (self.summary.time.mean() - self.expected_time).abs() / self.expected_time
    }

    /// Relative gap between sampled mean energy and the analytic value.
    pub fn energy_rel_error(&self) -> f64 {
        (self.summary.energy.mean() - self.expected_energy).abs() / self.expected_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_core::{ErrorRates, MixedModel, PowerModel, ResilienceCosts, SilentModel};

    fn silent_model(lambda: f64) -> SilentModel {
        SilentModel::new(
            lambda,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn parallel_equals_sequential() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let mc = MonteCarlo::new(cfg, 2000, 42);
        let par = mc.run();
        let seq = mc.run_sequential();
        assert_eq!(par.time.count(), seq.time.count());
        assert!((par.time.mean() - seq.time.mean()).abs() < 1e-9);
        assert!((par.energy.mean() - seq.energy.mean()).abs() < 1e-6);
    }

    #[test]
    fn histograms_are_consistent_with_summary() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let mc = MonteCarlo::new(cfg, 5000, 42);
        let (summary, th, eh) = mc.run_with_histograms();
        assert_eq!(th.count(), summary.time.count());
        assert_eq!(eh.count(), summary.energy.count());
        // Exact extremes agree; histogram median sits between them.
        assert_eq!(th.min(), summary.time.min());
        assert_eq!(th.max(), summary.time.max());
        let med = th.median().unwrap();
        assert!(summary.time.min() <= med && med <= summary.time.max());
        // With λW/σ1 ≈ 0.7 the distribution is multi-modal (0, 1, 2…
        // re-executions): p95 must exceed the error-free completion time.
        let error_free = (2764.0 + 15.4) / 0.4 + 300.0;
        assert!(th.quantile(0.95).unwrap() > error_free);
        // And the summary mean must be consistent with the histogram's
        // coarse view (between p25 and p75 would be too strict for a
        // skewed distribution; use min/max envelope).
        assert!(summary.time.mean() > th.min() && summary.time.mean() < th.max());
    }

    #[test]
    fn sampled_time_matches_proposition_2() {
        // λW/σ ≈ 0.7: errors are frequent, so the two-speed structure is
        // heavily exercised.
        let m = silent_model(1e-4);
        let (w, s1, s2) = (2764.0, 0.4, 0.8);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 60_000, 7);
        let report = mc.validate(
            m.expected_time(w, s1, s2),
            m.expected_energy(w, s1, s2),
            3.5,
        );
        assert!(
            report.ok(),
            "time: sampled {} vs analytic {} (rel {:.4}); energy: sampled {} vs analytic {} (rel {:.4})",
            report.summary.time.mean(),
            report.expected_time,
            report.time_rel_error(),
            report.summary.energy.mean(),
            report.expected_energy,
            report.energy_rel_error()
        );
    }

    #[test]
    fn sampled_attempts_match_expected_executions() {
        let m = silent_model(2e-4);
        let (w, s1, s2) = (2000.0, 0.4, 1.0);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let summary = MonteCarlo::new(cfg, 40_000, 11).run();
        let expected = m.expected_executions(w, s1, s2);
        assert!(
            summary.attempts.contains(expected, 3.5),
            "sampled {} vs analytic {expected}",
            summary.attempts.mean()
        );
    }

    #[test]
    fn sampled_mixed_model_matches_propositions_4_and_5() {
        let mm = MixedModel::new(
            ErrorRates::new(8e-5, 5e-5).unwrap(),
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        );
        let (w, s1, s2) = (3000.0, 0.6, 1.0);
        let cfg = SimConfig::from_mixed_model(&mm, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 60_000, 13);
        let report = mc.validate(
            mm.expected_time(w, s1, s2),
            mm.expected_energy(w, s1, s2),
            3.5,
        );
        assert!(
            report.ok(),
            "time rel {:.4}, energy rel {:.4}",
            report.time_rel_error(),
            report.energy_rel_error()
        );
    }

    #[test]
    fn validation_fails_for_wrong_expectation() {
        let m = silent_model(1e-4);
        let (w, s1, s2) = (2764.0, 0.4, 0.4);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 10_000, 3);
        let report = mc.validate(
            m.expected_time(w, s1, s2) * 1.2,
            m.expected_energy(w, s1, s2),
            3.0,
        );
        assert!(!report.time_ok());
    }
}
