//! Parallel Monte Carlo replication and analytic-vs-sampled validation.
//!
//! Two engines drive the replication (selected via [`Engine`]):
//!
//! * **reference** — the exact per-attempt loop of
//!   [`simulate_pattern`], one RNG stream per trial: bit-reproducible
//!   against historical runs and required for trace recording;
//! * **fast path** — a closed-form attempt-law sampler, one RNG stream
//!   per fixed-size trial *chunk* (stream id = chunk id), drawing
//!   through a buffered [`UniformStream`]:
//!   [`FastPattern`](crate::engine::FastPattern) for silent-only configs
//!   and [`MixedFastPattern`](crate::engine::MixedFastPattern) for mixed
//!   fail-stop + silent ones. Statistically identical to the reference
//!   (same outcome law), over an order of magnitude faster (see
//!   `sim_fastpath` and `sim_mixed_fastpath` in `BENCH_sweeps.json`).
//!
//! Engine resolution is fallible, never panicking: a degenerate
//! never-completes config surfaces as an
//! [`EngineError`](crate::engine::EngineError) from `run*` before any
//! worker starts, and sweeps degrade it to a tagged `ERR(...)` row.
//!
//! Either way, trials fold into plain [`Summary`] accumulators
//! (Welford-style merge, no per-pattern allocation), chunks are aligned
//! to a fixed absolute grid, and per-chunk results merge in chunk order —
//! so parallel runs are **bit-identical** to sequential ones at any
//! `RAYON_NUM_THREADS`. Observability rides along as plain-integer
//! [`ChunkObs`] accumulators that merge exactly in the reduction and
//! materialize one `rexec_obs` [`Shard`] per run — not one registry
//! update per pattern, nor one sketch per chunk.

use crate::engine::{
    ensure_completes, ensure_scenario_completes, fast_path_eligible, simulate_pattern,
    simulate_pattern_scenario, simulate_pattern_scenario_traced, AttemptLaw, EngineError,
    FastPattern, MixedFastPattern, PatternOutcome, SimConfig,
};
use crate::histogram::Histogram;
use crate::rng::{SimRng, UniformStream};
use crate::stats::Stats;
use crate::trace::TraceRecorder;
use rayon::prelude::*;
use rexec_core::{ErrorLaw, SpeedSchedule};
use rexec_obs::Shard;
use serde::{Deserialize, Serialize};

/// Aggregated result of many independent pattern simulations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Pattern completion time (s).
    pub time: Stats,
    /// Pattern energy (mJ).
    pub energy: Stats,
    /// Executions per pattern.
    pub attempts: Stats,
    /// Trace events dropped by a bounded recorder (0 for untraced runs).
    pub dropped_events: u64,
}

impl Summary {
    fn push(&mut self, p: &crate::engine::PatternOutcome) {
        self.time.push(p.time);
        self.energy.push(p.energy);
        self.attempts.push(f64::from(p.attempts));
    }

    /// Folds another summary into this one — the deterministic reduction
    /// the parallel runner uses, also handy for gluing [`MonteCarlo::run_range`]
    /// slices back together.
    #[must_use]
    pub fn merge(mut self, other: Summary) -> Summary {
        self.time.merge(&other.time);
        self.energy.merge(&other.energy);
        self.attempts.merge(&other.attempts);
        self.dropped_events += other.dropped_events;
        self
    }
}

/// Per-chunk integer totals, flushed into the obs shard once per chunk
/// (the batched replacement for the engine's former per-pattern
/// `counter!` adds).
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    patterns: u64,
    attempts: u64,
    silent: u64,
    fail_stop: u64,
}

impl Totals {
    #[inline]
    fn push(&mut self, p: &PatternOutcome) {
        self.patterns += 1;
        self.attempts += u64::from(p.attempts);
        self.silent += u64::from(p.silent_errors);
        self.fail_stop += u64::from(p.fail_stop_errors);
    }

    /// Flushes into `shard` under the engine's historical counter names.
    fn flush(&self, shard: &mut Shard) {
        shard.incr("sim.patterns", self.patterns);
        shard.incr("sim.attempts", self.attempts);
        shard.incr("sim.silent_errors", self.silent);
        shard.incr("sim.fail_stop_errors", self.fail_stop);
    }
}

/// Plain-integer observability accumulator for one chunk (or a merge of
/// chunks): the trial count, the `sim.*` totals, and an exact
/// attempts-per-trial histogram (inline counts for small attempt values,
/// a tiny spill list for pathological ones). Merging is integer addition
/// — associative and exact — and the single [`Shard`] (with its
/// log-bucket sketch) is built once per *run*, not per chunk: allocating
/// and merging a ~1.7k-bucket sketch per 256-trial chunk previously cost
/// more than the trials themselves.
#[derive(Debug, Clone, Default)]
struct ChunkObs {
    trials: u64,
    totals: Totals,
    /// `attempt_counts[n]` = number of trials that took `n` executions,
    /// for `n < INLINE`.
    attempt_counts: [u64; Self::INLINE],
    /// Exact counts for rare `attempts ≥ INLINE` trials.
    attempt_spill: Vec<(u32, u64)>,
}

impl ChunkObs {
    const INLINE: usize = 32;

    #[inline]
    fn record_attempts(&mut self, attempts: u32, n: u64) {
        if (attempts as usize) < Self::INLINE {
            self.attempt_counts[attempts as usize] += n;
        } else if let Some(slot) = self.attempt_spill.iter_mut().find(|(a, _)| *a == attempts) {
            slot.1 += n;
        } else {
            self.attempt_spill.push((attempts, n));
        }
    }

    fn merge(mut self, other: ChunkObs) -> ChunkObs {
        self.trials += other.trials;
        self.totals.patterns += other.totals.patterns;
        self.totals.attempts += other.totals.attempts;
        self.totals.silent += other.totals.silent;
        self.totals.fail_stop += other.totals.fail_stop;
        for (mine, theirs) in self.attempt_counts.iter_mut().zip(other.attempt_counts) {
            *mine += theirs;
        }
        for (attempts, n) in other.attempt_spill {
            self.record_attempts(attempts, n);
        }
        self
    }

    /// Materializes the final shard — identical totals to recording every
    /// trial individually (`record_n` is byte-identical to n `record`s).
    fn into_shard(self) -> Shard {
        let mut shard = Shard::new();
        shard.incr("runner.trials", self.trials);
        self.totals.flush(&mut shard);
        for (n, &count) in self.attempt_counts.iter().enumerate() {
            shard.record_n("runner.attempts_per_trial", n as f64, count);
        }
        for (attempts, count) in self.attempt_spill {
            shard.record_n("runner.attempts_per_trial", f64::from(attempts), count);
        }
        shard
    }
}

/// Power-sum accumulator for one chunk's failed-trial outcomes: per
/// field a sum, a sum of squares, and the extremes. `push` is
/// straight-line short-latency arithmetic (the fast path's hot loop
/// inlines it); [`into_summary`](Self::into_summary) converts to the
/// `Stats` form once per chunk via [`Stats::from_power_sums`].
#[derive(Debug, Default)]
struct RetriedSums {
    n: u64,
    time: PowerSums,
    energy: PowerSums,
    attempts: PowerSums,
}

/// One field's raw sums: `Σx`, `Σx²` (via `mul_add`), min, max.
#[derive(Debug)]
struct PowerSums {
    sum: f64,
    sumsq: f64,
    min: f64,
    max: f64,
}

impl Default for PowerSums {
    fn default() -> Self {
        PowerSums {
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl PowerSums {
    #[inline]
    fn push(&mut self, x: f64) {
        self.sum += x;
        self.sumsq = x.mul_add(x, self.sumsq);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    #[inline]
    fn stats(&self, n: u64) -> Stats {
        Stats::from_power_sums(n, self.sum, self.sumsq, self.min, self.max)
    }
}

impl RetriedSums {
    #[inline]
    fn push(&mut self, p: &PatternOutcome) {
        self.n += 1;
        self.time.push(p.time);
        self.energy.push(p.energy);
        self.attempts.push(f64::from(p.attempts));
    }

    fn into_summary(self) -> Summary {
        Summary {
            time: self.time.stats(self.n),
            energy: self.energy.stats(self.n),
            attempts: self.attempts.stats(self.n),
            dropped_events: 0,
        }
    }
}

/// Which simulation engine a [`MonteCarlo`] run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Engine {
    /// Fast path when the config is eligible (silent-only), reference
    /// loop otherwise. The default.
    #[default]
    Auto,
    /// Always the exact per-attempt loop with per-trial RNG streams —
    /// bit-reproducible against historical runs.
    Reference,
    /// Always a closed-form fast path with chunked RNG streams: the
    /// silent-only geometric sampler or, for configs with a fail-stop
    /// error source, the mixed attempt-law sampler.
    FastPath,
}

/// A resolved engine selection: the concrete sampler `run*` drives.
#[derive(Debug, Clone)]
enum Sampler {
    /// Exact per-attempt loop, one RNG stream per trial.
    Reference,
    /// Silent-only geometric fast path.
    Silent(FastPattern),
    /// Mixed fail-stop + silent fast path.
    Mixed(MixedFastPattern),
    /// Per-attempt scenario loop (non-memoryless law and/or speed
    /// schedule), one RNG stream per trial like the reference engine.
    Scenario {
        /// Silent inter-error law.
        law: ErrorLaw,
        /// Per-attempt speed schedule, when one overrides `σ₁`/`σ₂`.
        schedule: Option<SpeedSchedule>,
    },
}

/// Monte Carlo driver: replicates a pattern simulation `trials` times,
/// in parallel, with independent RNG streams derived from a master seed
/// (bit-reproducible regardless of thread count).
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Simulation configuration.
    pub config: SimConfig,
    /// Number of independent replications.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Engine selection (default [`Engine::Auto`]).
    pub engine: Engine,
    /// Silent inter-error law (default exponential — the paper's model).
    pub law: ErrorLaw,
    /// Per-attempt speed schedule overriding the `σ₁`/`σ₂` rule
    /// (default `None`).
    pub schedule: Option<SpeedSchedule>,
}

impl MonteCarlo {
    /// Creates a driver with automatic engine selection.
    pub fn new(config: SimConfig, trials: u64, seed: u64) -> Self {
        MonteCarlo {
            config,
            trials,
            seed,
            engine: Engine::Auto,
            law: ErrorLaw::Exponential,
            schedule: None,
        }
    }

    /// Selects the engine explicitly (builder style).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the silent inter-error law (builder style). Non-memoryless
    /// laws route to the per-attempt scenario engine; forcing
    /// [`Engine::FastPath`] on one fails at resolution with
    /// [`EngineError::UnsupportedScenario`].
    pub fn with_law(mut self, law: ErrorLaw) -> Self {
        self.law = law;
        self
    }

    /// Installs a per-attempt speed schedule (builder style). Schedules
    /// route to the scenario engine; the schedule's `σ₁` and retry
    /// speeds override `config.sigma1`/`config.sigma2`.
    pub fn with_schedule(mut self, schedule: SpeedSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Whether this run is the paper's baseline scenario (memoryless
    /// errors, single re-execution speed) — the domain where the
    /// geometric fast paths are valid.
    fn baseline_scenario(&self) -> bool {
        self.law.is_memoryless() && self.schedule.is_none()
    }

    /// Resolves the engine selection into a concrete sampler.
    ///
    /// `Auto` and `FastPath` pick the silent-only geometric sampler or
    /// the mixed attempt-law sampler from the config's error sources;
    /// the reference loop is also pre-checked so that no engine can hit
    /// the `MAX_ATTEMPTS` assertion mid-run.
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config whose
    /// per-attempt success probability at `σ₂` is ~0 (any engine),
    /// [`EngineError::NonFiniteSuccessProbability`] when it is NaN or
    /// infinite, and [`EngineError::UnsupportedScenario`] when
    /// [`Engine::FastPath`] is forced on a non-memoryless law or a speed
    /// schedule (the geometric closed forms require both memorylessness
    /// and a single `σ₂`).
    fn resolve(&self) -> Result<Sampler, EngineError> {
        if !self.baseline_scenario() {
            return match self.engine {
                Engine::FastPath => Err(EngineError::UnsupportedScenario {
                    reason: "the geometric fast path requires a memoryless \
                             (exponential) error law and a single re-execution speed",
                }),
                Engine::Auto | Engine::Reference => {
                    ensure_scenario_completes(&self.config, self.law, self.schedule.as_ref())?;
                    Ok(Sampler::Scenario {
                        law: self.law,
                        schedule: self.schedule.clone(),
                    })
                }
            };
        }
        match self.engine {
            Engine::Reference => {
                ensure_completes(&self.config)?;
                Ok(Sampler::Reference)
            }
            Engine::Auto | Engine::FastPath => {
                if fast_path_eligible(&self.config) {
                    FastPattern::new(&self.config).map(Sampler::Silent)
                } else {
                    MixedFastPattern::new(&self.config).map(Sampler::Mixed)
                }
            }
        }
    }

    /// Chunk triples `(chunk_lo, lo, hi)` covering `[start, end)`,
    /// aligned to the absolute `CHUNK` grid: `chunk_lo` is the chunk's
    /// grid origin (fixing its RNG stream id), `[lo, hi)` the trials of
    /// this range that fall inside it. Grid alignment makes every
    /// partition of `0..trials` reuse the same per-chunk streams.
    fn chunk_grid(start: u64, end: u64) -> Vec<(u64, u64, u64)> {
        let first = start - start % Self::CHUNK;
        (first..end)
            .step_by(Self::CHUNK as usize)
            .map(|chunk_lo| {
                (
                    chunk_lo,
                    chunk_lo.max(start),
                    (chunk_lo + Self::CHUNK).min(end),
                )
            })
            .collect()
    }

    /// Simulates one grid chunk: trials `[lo, hi)` of the chunk whose
    /// grid origin is `chunk_lo`. Returns the folded summary plus the
    /// chunk's plain-integer obs accumulator. Allocation-free per
    /// pattern: outcomes fold straight into SoA `Stats` accumulators and
    /// integer totals.
    fn run_chunk(&self, sampler: &Sampler, chunk_lo: u64, lo: u64, hi: u64) -> (Summary, ChunkObs) {
        match sampler {
            Sampler::Reference => {
                let mut s = Summary::default();
                let mut obs = ChunkObs {
                    trials: hi - lo,
                    ..ChunkObs::default()
                };
                for i in lo..hi {
                    let mut rng = SimRng::for_trial(self.seed, i);
                    let p = simulate_pattern(&self.config, &mut rng);
                    s.push(&p);
                    obs.totals.push(&p);
                    obs.record_attempts(p.attempts, 1);
                }
                (s, obs)
            }
            Sampler::Silent(fp) => self.run_chunk_fast(fp, chunk_lo, lo, hi),
            Sampler::Mixed(fp) => self.run_chunk_fast(fp, chunk_lo, lo, hi),
            Sampler::Scenario { law, schedule } => {
                // Per-trial streams like the reference engine: thread
                // determinism and range-partition replay are automatic.
                let mut s = Summary::default();
                let mut obs = ChunkObs {
                    trials: hi - lo,
                    ..ChunkObs::default()
                };
                for i in lo..hi {
                    let mut rng = SimRng::for_trial(self.seed, i);
                    let p =
                        simulate_pattern_scenario(&self.config, *law, schedule.as_ref(), &mut rng);
                    s.push(&p);
                    obs.totals.push(&p);
                    obs.record_attempts(p.attempts, 1);
                }
                (s, obs)
            }
        }
    }

    /// The chunked fast-path hot loop, generic over the two closed-form
    /// samplers (they share the [`AttemptLaw`] surface: one draw per
    /// first-try success run, a bounded number per failed trial).
    fn run_chunk_fast<S: AttemptLaw>(
        &self,
        fp: &S,
        chunk_lo: u64,
        lo: u64,
        hi: u64,
    ) -> (Summary, ChunkObs) {
        // The geometric closed forms are only valid with a single
        // constant retry speed — the invariant the [`AttemptLaw`]
        // per-attempt-index hook lets us state (schedules resolve to the
        // scenario sampler instead).
        debug_assert!(
            fp.retry_speed(1).to_bits() == self.config.sigma2.to_bits()
                && fp.retry_speed(2).to_bits() == self.config.sigma2.to_bits(),
            "fast-path samplers must retry at the single sigma2"
        );
        let mut s = Summary::default();
        let mut obs = ChunkObs {
            trials: hi - lo,
            ..ChunkObs::default()
        };
        let mut draws = UniformStream::new(SimRng::for_chunk(self.seed, chunk_lo / Self::CHUNK));
        // Run-length batching: the count of consecutive trials
        // whose first attempt succeeds is geometric, so one
        // uniform samples the whole run (its identical outcomes
        // tally arithmetically), and a bounded number more sample
        // each failing trial's completion (re-execution count, and
        // for the mixed sampler each failure's cause and abort
        // duration) — no per-trial Welford updates for the dominant
        // single-attempt case. A range starting mid-chunk replays
        // the same draw sequence from the grid origin and only
        // counts trials in `[lo, hi)`.
        let mut first_try = 0u64;
        // Failed-trial moments accumulate as raw power sums — three adds
        // and a fused multiply-add per field — rather than per-trial
        // Welford pushes, whose running-mean division is a loop-carried
        // ~20-cycle chain threaded through the sampling loop. The sums
        // cover at most one chunk (≤ `CHUNK` same-scale outcomes), which
        // keeps [`Stats::from_power_sums`]'s cancellation bound tight.
        let mut failed = RetriedSums::default();
        let mut i = chunk_lo;
        while i < hi {
            let (_, ln_u) = draws.next_uniform_ln();
            let run = fp.success_run_len_ln(ln_u).min(hi - i);
            // Trials of [i, i+run) that fall inside [lo, hi).
            let counted_from = i.max(lo);
            first_try += (i + run).saturating_sub(counted_from);
            i += run;
            if i < hi {
                let p = fp.sample_failed_first(&mut draws);
                if i >= lo {
                    failed.push(&p);
                    obs.totals.push(&p);
                    obs.record_attempts(p.attempts, 1);
                }
                i += 1;
            }
        }
        let retried = failed.into_summary();
        let ft = fp.first_try_outcome();
        s.time = Stats::repeated(ft.time, first_try);
        s.energy = Stats::repeated(ft.energy, first_try);
        s.attempts = Stats::repeated(1.0, first_try);
        s = s.merge(retried);
        obs.totals.patterns += first_try;
        obs.totals.attempts += first_try;
        obs.record_attempts(1, first_try);
        (s, obs)
    }

    /// Runs all replications in parallel and aggregates.
    ///
    /// Instrumented: each worker fills a plain-integer [`ChunkObs`]
    /// (`runner.trials`, the `sim.*` totals, and the exact
    /// `runner.attempts_per_trial` histogram); the accumulators merge
    /// deterministically along the reduction and flush into the global
    /// registry once, so the aggregates are identical for any
    /// `RAYON_NUM_THREADS`. The wall-clock `runner.trials_per_sec` gauge
    /// is excluded from that guarantee.
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config (before
    /// any trial runs).
    pub fn run(&self) -> Result<Summary, EngineError> {
        let _timer = rexec_obs::span!("runner.run");
        let started = std::time::Instant::now();
        let summary = self.run_range(0, self.trials)?;
        self.record_throughput(started);
        Ok(summary)
    }

    /// Like [`run`](Self::run), invoking `progress(done, total)` after
    /// each slice of trials — for user-facing progress lines on long
    /// runs. Slices are aligned to the parallel chunk size, so the exact
    /// per-trial RNG streams (and all counter/histogram aggregates) match
    /// [`run`](Self::run); the float `Stats` moments may differ in the
    /// last bits because the merge tree is shaped differently.
    ///
    /// Each slice's wall time also feeds a [`rexec_obs::RollingWindow`],
    /// published after every slice as the `runner.window.p50` /
    /// `runner.window.p99` (slice seconds) and `runner.window.per_sec`
    /// (slices per second) gauges — a live latency/throughput view over
    /// the last ~10 s of the run. Gauges are wall-clock and sit outside
    /// the determinism guarantee.
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config (before
    /// any trial runs or progress is reported).
    pub fn run_with_progress(
        &self,
        progress: &mut dyn FnMut(u64, u64),
    ) -> Result<Summary, EngineError> {
        let _timer = rexec_obs::span!("runner.run");
        let started = std::time::Instant::now();
        // ~10 progress slices, each a multiple of CHUNK trials.
        let slice = (self.trials / 10)
            .next_multiple_of(Self::CHUNK)
            .max(Self::CHUNK);
        let window = rexec_obs::RollingWindow::new(10, 1.0);
        let mut summary = Summary::default();
        let mut done = 0;
        while done < self.trials {
            let slice_started = std::time::Instant::now();
            let end = (done + slice).min(self.trials);
            summary = summary.merge(self.run_range(done, end)?);
            done = end;
            window.record(slice_started.elapsed().as_secs_f64());
            window.publish(rexec_obs::global(), "runner.window");
            progress(done, self.trials);
        }
        self.record_throughput(started);
        Ok(summary)
    }

    /// Runs trial indices `[start, end)` in parallel (empty ranges
    /// return an empty [`Summary`] without touching the registry).
    ///
    /// Chunks align to the absolute `CHUNK` grid and their results merge
    /// in chunk order, so for any `RAYON_NUM_THREADS` the summary is
    /// bit-identical to a sequential evaluation, and any partition of
    /// `0..trials` replays exactly the trials of a single
    /// [`run`](Self::run): the reference engine re-derives per-trial
    /// streams, the fast path replays each partial chunk's stream prefix.
    /// Gluing range summaries left-to-right is bit-identical to
    /// [`run`](Self::run) when the splits are chunk-aligned and every
    /// range after the first is a single chunk (the glue then replays
    /// `run`'s exact left-fold); other partitions cover the same trials
    /// but regroup the non-associative float merges, so their moments
    /// agree only to ~1e-9 (counts and extremes stay exact).
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config — raised
    /// here at resolution, never from inside a rayon worker.
    pub fn run_range(&self, start: u64, end: u64) -> Result<Summary, EngineError> {
        if start >= end {
            return Ok(Summary::default());
        }
        let sampler = self.resolve()?;
        let (summary, obs) = Self::chunk_grid(start, end)
            .into_par_iter()
            .map(|(chunk_lo, lo, hi)| self.run_chunk(&sampler, chunk_lo, lo, hi))
            .reduce(
                || (Summary::default(), ChunkObs::default()),
                |(sa, oa), (sb, ob)| (sa.merge(sb), oa.merge(ob)),
            );
        rexec_obs::global().absorb(&obs.into_shard());
        Ok(summary)
    }

    /// Trials per chunk: the RNG-stream and reduction granule.
    const CHUNK: u64 = 256;

    fn record_throughput(&self, started: std::time::Instant) {
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 {
            rexec_obs::gauge!("runner.trials_per_sec").set(self.trials as f64 / secs);
        }
    }

    /// Runs all replications in parallel, additionally collecting full
    /// time/energy distributions (1 % relative resolution). Returns
    /// `(summary, time_histogram, energy_histogram)`.
    ///
    /// Always uses the per-trial reference/scenario engine: distribution
    /// studies want the historical bit-reproducible trial streams (the
    /// configured law and schedule are honoured — quantile studies of
    /// scenario runs ride the same per-trial streams).
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config.
    pub fn run_with_histograms(&self) -> Result<(Summary, Histogram, Histogram), EngineError> {
        ensure_scenario_completes(&self.config, self.law, self.schedule.as_ref())?;
        const CHUNK: u64 = 256;
        let chunks: Vec<(u64, u64)> = (0..self.trials)
            .step_by(CHUNK as usize)
            .map(|start| (start, (start + CHUNK).min(self.trials)))
            .collect();
        let (summary, th, eh, totals) = chunks
            .into_par_iter()
            .map(|(start, end)| {
                let mut s = Summary::default();
                let mut th = Histogram::with_default_resolution();
                let mut eh = Histogram::with_default_resolution();
                let mut totals = Totals::default();
                for i in start..end {
                    let mut rng = SimRng::for_trial(self.seed, i);
                    let p = simulate_pattern_scenario(
                        &self.config,
                        self.law,
                        self.schedule.as_ref(),
                        &mut rng,
                    );
                    s.push(&p);
                    totals.push(&p);
                    th.record(p.time);
                    eh.record(p.energy);
                }
                (s, th, eh, totals)
            })
            .reduce(
                || {
                    (
                        Summary::default(),
                        Histogram::with_default_resolution(),
                        Histogram::with_default_resolution(),
                        Totals::default(),
                    )
                },
                |(sa, mut tha, mut eha, ta), (sb, thb, ehb, tb)| {
                    tha.merge(&thb);
                    eha.merge(&ehb);
                    (
                        sa.merge(sb),
                        tha,
                        eha,
                        Totals {
                            patterns: ta.patterns + tb.patterns,
                            attempts: ta.attempts + tb.attempts,
                            silent: ta.silent + tb.silent,
                            fail_stop: ta.fail_stop + tb.fail_stop,
                        },
                    )
                },
            );
        let mut shard = Shard::new();
        totals.flush(&mut shard);
        rexec_obs::global().absorb(&shard);
        Ok((summary, th, eh))
    }

    /// Runs sequentially — no thread pool, same chunk grid. The summary
    /// *and* the absorbed obs aggregates are bit-identical to
    /// [`run`](Self::run) at any thread count (the baseline the
    /// determinism tests and the tracked bench compare against).
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config.
    pub fn run_sequential(&self) -> Result<Summary, EngineError> {
        let sampler = self.resolve()?;
        let mut summary = Summary::default();
        let mut obs = ChunkObs::default();
        for (chunk_lo, lo, hi) in Self::chunk_grid(0, self.trials) {
            let (s, o) = self.run_chunk(&sampler, chunk_lo, lo, hi);
            summary = summary.merge(s);
            obs = obs.merge(o);
        }
        rexec_obs::global().absorb(&obs.into_shard());
        Ok(summary)
    }

    /// Runs sequentially while recording every trial's events into one
    /// bounded trace (at most `capacity` events; the rest are counted as
    /// dropped and surfaced in [`Summary::dropped_events`]).
    ///
    /// Always uses the reference engine: the fast path never materializes
    /// events.
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config.
    pub fn run_with_trace(&self, capacity: usize) -> Result<(Summary, TraceRecorder), EngineError> {
        ensure_scenario_completes(&self.config, self.law, self.schedule.as_ref())?;
        let mut recorder = TraceRecorder::new(capacity);
        let mut s = Summary::default();
        let mut totals = Totals::default();
        for i in 0..self.trials {
            let mut rng = SimRng::for_trial(self.seed, i);
            let p = simulate_pattern_scenario_traced(
                &self.config,
                self.law,
                self.schedule.as_ref(),
                &mut rng,
                Some(&mut recorder),
            );
            s.push(&p);
            totals.push(&p);
        }
        s.dropped_events = recorder.dropped() as u64;
        let mut shard = Shard::new();
        totals.flush(&mut shard);
        rexec_obs::global().absorb(&shard);
        Ok((s, recorder))
    }

    /// Runs and compares the sampled means against analytic expectations.
    ///
    /// # Errors
    /// [`EngineError::NeverCompletes`] for a degenerate config.
    pub fn validate(
        &self,
        expected_time: f64,
        expected_energy: f64,
        z: f64,
    ) -> Result<ValidationReport, EngineError> {
        let summary = self.run()?;
        Ok(ValidationReport {
            summary,
            expected_time,
            expected_energy,
            z,
        })
    }
}

/// Sampled-vs-analytic comparison at `z` standard errors.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The sampled summary.
    pub summary: Summary,
    /// Analytic expected pattern time.
    pub expected_time: f64,
    /// Analytic expected pattern energy.
    pub expected_energy: f64,
    /// Number of standard errors for the acceptance interval.
    pub z: f64,
}

impl ValidationReport {
    /// Whether the analytic time lies inside the sampled CI.
    pub fn time_ok(&self) -> bool {
        self.summary.time.contains(self.expected_time, self.z)
    }

    /// Whether the analytic energy lies inside the sampled CI.
    pub fn energy_ok(&self) -> bool {
        self.summary.energy.contains(self.expected_energy, self.z)
    }

    /// Both checks.
    pub fn ok(&self) -> bool {
        self.time_ok() && self.energy_ok()
    }

    /// Relative gap between sampled mean time and the analytic value.
    pub fn time_rel_error(&self) -> f64 {
        (self.summary.time.mean() - self.expected_time).abs() / self.expected_time
    }

    /// Relative gap between sampled mean energy and the analytic value.
    pub fn energy_rel_error(&self) -> f64 {
        (self.summary.energy.mean() - self.expected_energy).abs() / self.expected_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_core::{ErrorRates, MixedModel, PowerModel, ResilienceCosts, SilentModel};

    fn silent_model(lambda: f64) -> SilentModel {
        SilentModel::new(
            lambda,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    fn mixed_config() -> SimConfig {
        let m = silent_model(1e-4);
        SimConfig {
            rates: rexec_core::ErrorRates::new(1e-4, 5e-5).unwrap(),
            ..SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8)
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let m = silent_model(1e-4);
        let silent = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        for cfg in [silent, mixed_config()] {
            for engine in [Engine::Reference, Engine::FastPath, Engine::Auto] {
                let mc = MonteCarlo::new(cfg, 2000, 42).with_engine(engine);
                let par = mc.run().unwrap();
                let seq = mc.run_sequential().unwrap();
                // Same chunk grid, same per-chunk streams, in-order merge:
                // parallel and sequential runs are bit-identical.
                assert_eq!(par, seq, "engine {engine:?}");
            }
        }
    }

    #[test]
    fn auto_engine_matches_explicit_selection() {
        let m = silent_model(1e-4);
        // Silent-only: Auto must resolve to the silent-only fast path...
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let auto = MonteCarlo::new(cfg, 1024, 9).run().unwrap();
        let fast = MonteCarlo::new(cfg, 1024, 9)
            .with_engine(Engine::FastPath)
            .run()
            .unwrap();
        assert_eq!(auto, fast);
        // ...and with fail-stop errors, to the mixed fast path (also what
        // forcing FastPath selects — the former panic path).
        let mixed = mixed_config();
        let auto = MonteCarlo::new(mixed, 1024, 9).run().unwrap();
        let forced = MonteCarlo::new(mixed, 1024, 9)
            .with_engine(Engine::FastPath)
            .run()
            .unwrap();
        assert_eq!(auto, forced);
    }

    #[test]
    fn forced_fast_path_accepts_mixed_configs() {
        // Regression: this used to panic inside resolve(); the mixed
        // attempt-law sampler now serves forced-FastPath runs.
        let summary = MonteCarlo::new(mixed_config(), 512, 1)
            .with_engine(Engine::FastPath)
            .run()
            .unwrap();
        assert_eq!(summary.time.count(), 512);
    }

    #[test]
    fn degenerate_configs_return_err_from_every_entry_point() {
        // λW/σ₂ ≈ 700 underflows the per-attempt success probability:
        // every engine must refuse up front instead of panicking (or
        // spinning for ~e⁷⁰⁰ attempts) inside a worker.
        let m = silent_model(1.0);
        let cfg = SimConfig::from_silent_model(&m, 700.0, 1.0, 1.0);
        for engine in [Engine::Auto, Engine::Reference, Engine::FastPath] {
            let mc = MonteCarlo::new(cfg, 16, 1).with_engine(engine);
            assert!(
                matches!(mc.run(), Err(EngineError::NeverCompletes { .. })),
                "engine {engine:?}"
            );
            assert!(mc.run_sequential().is_err(), "engine {engine:?}");
            assert!(mc.run_range(0, 8).is_err(), "engine {engine:?}");
            assert!(mc.validate(1.0, 1.0, 3.0).is_err(), "engine {engine:?}");
            assert!(mc.run_with_progress(&mut |_, _| {}).is_err());
        }
        let mc = MonteCarlo::new(cfg, 16, 1);
        assert!(mc.run_with_histograms().is_err());
        assert!(mc.run_with_trace(64).is_err());
        // Degenerate mixed configs are rejected the same way.
        let mixed = SimConfig {
            rates: rexec_core::ErrorRates::new(0.5, 0.5).unwrap(),
            ..cfg
        };
        assert!(matches!(
            MonteCarlo::new(mixed, 16, 1).run(),
            Err(EngineError::NeverCompletes { .. })
        ));
    }

    #[test]
    fn empty_range_yields_empty_summary() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        for engine in [Engine::Reference, Engine::FastPath] {
            let mc = MonteCarlo::new(cfg, 1000, 5).with_engine(engine);
            for start in [0, 100, 256, 1000] {
                let s = mc.run_range(start, start).unwrap();
                assert_eq!(s, Summary::default(), "engine {engine:?} start {start}");
                assert_eq!(s.time.count(), 0);
            }
        }
    }

    #[test]
    fn single_trial_ranges_compose_the_full_run() {
        let m = silent_model(2e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        for engine in [Engine::Reference, Engine::FastPath] {
            let mc = MonteCarlo::new(cfg, 40, 77).with_engine(engine);
            let whole = mc.run().unwrap();
            let mut glued = Summary::default();
            for i in 0..40 {
                let one = mc.run_range(i, i + 1).unwrap();
                assert_eq!(one.time.count(), 1, "engine {engine:?} trial {i}");
                glued = glued.merge(one);
            }
            // Same trials (single-trial ranges replay each chunk prefix),
            // so counts and exact extremes agree; the float moments see a
            // different merge tree, hence the tolerance.
            assert_eq!(glued.time.count(), whole.time.count());
            assert_eq!(glued.time.min(), whole.time.min());
            assert_eq!(glued.time.max(), whole.time.max());
            assert!((glued.time.mean() - whole.time.mean()).abs() < 1e-9);
            assert!((glued.energy.mean() - whole.energy.mean()).abs() < 1e-6);
        }
    }

    #[test]
    fn chunk_aligned_ranges_merge_to_exactly_run() {
        // 1000 trials = chunks [0,256) [256,512) [512,768) [768,1000).
        // Gluing left-to-right with chunk-aligned boundaries reproduces
        // run()'s exact left-fold over the chunk sequence (a leading
        // multi-chunk prefix plus single-chunk continuations), so the
        // glued summary is bit-identical — `Stats::merge` is not float-
        // associative, so arbitrary regrouping would only agree to ~1e-9.
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        for engine in [Engine::Reference, Engine::FastPath] {
            let mc = MonteCarlo::new(cfg, 1000, 21).with_engine(engine);
            let whole = mc.run().unwrap();
            let glued = mc
                .run_range(0, 512)
                .unwrap()
                .merge(mc.run_range(512, 768).unwrap())
                .merge(mc.run_range(768, 1000).unwrap());
            assert_eq!(glued, whole, "engine {engine:?}");
        }
    }

    #[test]
    fn unaligned_ranges_replay_the_same_trials() {
        let m = silent_model(1e-4);
        let silent = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        // The mixed fast path consumes a *variable* number of draws per
        // failed trial (cause + duration per failure), so replaying each
        // partial chunk's stream prefix from the grid origin is the only
        // thing keeping unaligned splits bit-identical — exercise it.
        for cfg in [silent, mixed_config()] {
            for engine in [Engine::Reference, Engine::FastPath] {
                let mc = MonteCarlo::new(cfg, 700, 33).with_engine(engine);
                let whole = mc.run().unwrap();
                // Splits inside chunks: the fast path must replay stream
                // prefixes so trial outcomes are identical.
                let glued = mc
                    .run_range(0, 100)
                    .unwrap()
                    .merge(mc.run_range(100, 300).unwrap())
                    .merge(mc.run_range(300, 700).unwrap());
                assert_eq!(glued.time.count(), whole.time.count());
                assert_eq!(glued.time.min(), whole.time.min());
                assert_eq!(glued.time.max(), whole.time.max());
                assert_eq!(glued.attempts.min(), whole.attempts.min());
                assert_eq!(glued.attempts.max(), whole.attempts.max());
                assert!((glued.time.mean() - whole.time.mean()).abs() < 1e-9);
                assert!((glued.attempts.mean() - whole.attempts.mean()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn progress_runs_publish_window_gauges() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let mut slices = 0;
        MonteCarlo::new(cfg, 2000, 4)
            .run_with_progress(&mut |_, _| slices += 1)
            .unwrap();
        assert!(slices > 0);
        // Every slice publishes the rolling-window gauges; the run just
        // finished, so its slices are still inside the 10 s window.
        let g = rexec_obs::global();
        assert!(g.gauge("runner.window.per_sec").get() > 0.0);
        assert!(g.gauge("runner.window.p99").get() >= g.gauge("runner.window.p50").get());
    }

    #[test]
    fn histograms_are_consistent_with_summary() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let mc = MonteCarlo::new(cfg, 5000, 42);
        let (summary, th, eh) = mc.run_with_histograms().unwrap();
        assert_eq!(th.count(), summary.time.count());
        assert_eq!(eh.count(), summary.energy.count());
        // Exact extremes agree; histogram median sits between them.
        assert_eq!(th.min(), summary.time.min());
        assert_eq!(th.max(), summary.time.max());
        let med = th.median().unwrap();
        assert!(summary.time.min() <= med && med <= summary.time.max());
        // With λW/σ1 ≈ 0.7 the distribution is multi-modal (0, 1, 2…
        // re-executions): p95 must exceed the error-free completion time.
        let error_free = (2764.0 + 15.4) / 0.4 + 300.0;
        assert!(th.quantile(0.95).unwrap() > error_free);
        // And the summary mean must be consistent with the histogram's
        // coarse view (between p25 and p75 would be too strict for a
        // skewed distribution; use min/max envelope).
        assert!(summary.time.mean() > th.min() && summary.time.mean() < th.max());
    }

    #[test]
    fn sampled_time_matches_proposition_2() {
        // λW/σ ≈ 0.7: errors are frequent, so the two-speed structure is
        // heavily exercised.
        let m = silent_model(1e-4);
        let (w, s1, s2) = (2764.0, 0.4, 0.8);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 60_000, 7);
        let report = mc
            .validate(
                m.expected_time(w, s1, s2),
                m.expected_energy(w, s1, s2),
                3.5,
            )
            .unwrap();
        assert!(
            report.ok(),
            "time: sampled {} vs analytic {} (rel {:.4}); energy: sampled {} vs analytic {} (rel {:.4})",
            report.summary.time.mean(),
            report.expected_time,
            report.time_rel_error(),
            report.summary.energy.mean(),
            report.expected_energy,
            report.energy_rel_error()
        );
    }

    #[test]
    fn sampled_attempts_match_expected_executions() {
        let m = silent_model(2e-4);
        let (w, s1, s2) = (2000.0, 0.4, 1.0);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let summary = MonteCarlo::new(cfg, 40_000, 11).run().unwrap();
        let expected = m.expected_executions(w, s1, s2);
        assert!(
            summary.attempts.contains(expected, 3.5),
            "sampled {} vs analytic {expected}",
            summary.attempts.mean()
        );
    }

    #[test]
    fn sampled_mixed_model_matches_propositions_4_and_5() {
        let mm = MixedModel::new(
            ErrorRates::new(8e-5, 5e-5).unwrap(),
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        );
        let (w, s1, s2) = (3000.0, 0.6, 1.0);
        let cfg = SimConfig::from_mixed_model(&mm, w, s1, s2);
        // Auto now resolves mixed configs to the mixed fast path, so this
        // pins the new sampler against the Props 4–5 recursion values.
        let mc = MonteCarlo::new(cfg, 60_000, 13);
        let report = mc
            .validate(
                mm.expected_time(w, s1, s2),
                mm.expected_energy(w, s1, s2),
                3.5,
            )
            .unwrap();
        assert!(
            report.ok(),
            "time rel {:.4}, energy rel {:.4}",
            report.time_rel_error(),
            report.energy_rel_error()
        );
    }

    fn weibull() -> ErrorLaw {
        ErrorLaw::Weibull { shape: 0.7 }
    }

    #[test]
    fn scenario_parallel_equals_sequential() {
        let m = silent_model(2e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let schedule = SpeedSchedule::new(0.4, vec![0.6, 1.0]).unwrap();
        let variants: Vec<MonteCarlo> = vec![
            MonteCarlo::new(cfg, 2000, 42).with_law(weibull()),
            MonteCarlo::new(cfg, 2000, 42).with_law(ErrorLaw::LogNormal { sigma: 1.2 }),
            MonteCarlo::new(cfg, 2000, 42).with_schedule(schedule.clone()),
            MonteCarlo::new(mixed_config(), 2000, 42)
                .with_law(weibull())
                .with_schedule(schedule),
        ];
        for mc in variants {
            let par = mc.run().unwrap();
            let seq = mc.run_sequential().unwrap();
            assert_eq!(par, seq, "law {:?} schedule {:?}", mc.law, mc.schedule);
        }
    }

    #[test]
    fn scenario_weibull_shape_one_is_bit_identical_to_reference() {
        // shape = 1 Weibull *is* the exponential law, and the scenario
        // engine shares the reference engine's per-trial streams — the
        // whole summary must agree bitwise.
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let reference = MonteCarlo::new(cfg, 2000, 7)
            .with_engine(Engine::Reference)
            .run()
            .unwrap();
        let scenario = MonteCarlo::new(cfg, 2000, 7)
            .with_law(ErrorLaw::Weibull { shape: 1.0 })
            .run()
            .unwrap();
        assert_eq!(reference, scenario);
    }

    #[test]
    fn forced_fast_path_rejects_scenarios() {
        let m = silent_model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let on_law = MonteCarlo::new(cfg, 64, 1)
            .with_engine(Engine::FastPath)
            .with_law(weibull());
        assert!(matches!(
            on_law.run(),
            Err(EngineError::UnsupportedScenario { .. })
        ));
        let on_schedule = MonteCarlo::new(cfg, 64, 1)
            .with_engine(Engine::FastPath)
            .with_schedule(SpeedSchedule::two_speed(0.4, 0.8).unwrap());
        assert!(matches!(
            on_schedule.run(),
            Err(EngineError::UnsupportedScenario { .. })
        ));
        // Auto degrades to the scenario engine instead of erroring.
        assert!(MonteCarlo::new(cfg, 64, 1)
            .with_law(weibull())
            .run()
            .is_ok());
    }

    #[test]
    fn scenario_histograms_and_trace_honour_the_law() {
        let m = silent_model(5e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        let mc = MonteCarlo::new(cfg, 2000, 3).with_law(weibull());
        let (summary, th, _eh) = mc.run_with_histograms().unwrap();
        assert_eq!(th.count(), summary.time.count());
        // Same per-trial streams as run(): identical summaries.
        assert_eq!(summary.time.mean(), mc.run().unwrap().time.mean());
        let (traced, recorder) = mc.run_with_trace(1 << 16).unwrap();
        assert_eq!(traced.time.count(), 2000);
        assert!(!recorder.events().is_empty());
        // Degenerate scenario configs are rejected up front, not mid-run.
        let bad = SimConfig::from_silent_model(&silent_model(1.0), 700.0, 1.0, 1.0);
        let bad_mc = MonteCarlo::new(bad, 16, 1).with_law(weibull());
        assert!(bad_mc.run().is_err());
        assert!(bad_mc.run_with_histograms().is_err());
        assert!(bad_mc.run_with_trace(64).is_err());
    }

    #[test]
    fn scheduled_runs_match_the_analytic_schedule_model() {
        // Silent-only, 3-speed schedule: the sampled means must match
        // the ScheduleModel prefix-sum closed forms.
        use rexec_core::ScheduleModel;
        let m = silent_model(2e-4);
        let w = 2764.0;
        let schedule = SpeedSchedule::new(0.4, vec![0.6, 1.0]).unwrap();
        let model = ScheduleModel::new(m, schedule.clone());
        let cfg = SimConfig::from_silent_model(&m, w, 0.4, 0.4);
        let mc = MonteCarlo::new(cfg, 60_000, 17).with_schedule(schedule);
        let summary = mc.run().unwrap();
        assert!(
            summary.time.contains(model.expected_time(w), 3.5),
            "time: sampled {} vs analytic {}",
            summary.time.mean(),
            model.expected_time(w)
        );
        assert!(
            summary.energy.contains(model.expected_energy(w), 3.5),
            "energy: sampled {} vs analytic {}",
            summary.energy.mean(),
            model.expected_energy(w)
        );
        assert!(
            summary.attempts.contains(model.expected_executions(w), 3.5),
            "attempts: sampled {} vs analytic {}",
            summary.attempts.mean(),
            model.expected_executions(w)
        );
    }

    #[test]
    fn validation_fails_for_wrong_expectation() {
        let m = silent_model(1e-4);
        let (w, s1, s2) = (2764.0, 0.4, 0.4);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let mc = MonteCarlo::new(cfg, 10_000, 3);
        let report = mc
            .validate(
                m.expected_time(w, s1, s2) * 1.2,
                m.expected_energy(w, s1, s2),
                3.0,
            )
            .unwrap();
        assert!(!report.time_ok());
    }
}
