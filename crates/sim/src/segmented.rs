//! Simulation of patterns with several verifications per checkpoint
//! (validates `rexec_core::multiverif`).
//!
//! The `W` work of a pattern is split into `q` equal segments, each
//! followed by a verification; the checkpoint is taken after the last
//! verification. A silent error is detected by the verification at the
//! end of the segment it struck (earlier segments' verifications cannot
//! see it); a fail-stop error aborts the attempt wherever it strikes.
//! `q = 1` is exactly [`simulate_pattern`](crate::engine::simulate_pattern).

use crate::energy::EnergyMeter;
use crate::engine::{PatternOutcome, SimConfig, MAX_ATTEMPTS};
use crate::rng::SimRng;

/// What ended one segmented attempt.
enum SegmentedEnd {
    /// All `q` verifications passed.
    Success,
    /// Fail-stop interrupt.
    FailStop,
    /// A verification detected a silent error.
    SilentDetected,
}

/// Runs one attempt of `q` segments at `sigma`, metering time and energy.
fn run_attempt(
    cfg: &SimConfig,
    q: u32,
    sigma: f64,
    clock: &mut f64,
    meter: &mut EnergyMeter,
    rng: &mut SimRng,
) -> SegmentedEnd {
    let seg_work_t = cfg.w / f64::from(q) / sigma;
    let verify_t = cfg.costs.verification / sigma;
    // First arrivals over the whole attempt, in *attempt-local* time.
    let t_fail = rng.exponential(cfg.rates.fail_stop);
    // Silent errors strike during work only; track accumulated work time.
    let t_silent_work = rng.exponential(cfg.rates.silent);

    let mut local = 0.0; // attempt-local wall time
    let mut worked = 0.0; // accumulated work time (excludes verifications)
    for _seg in 0..q {
        // Work portion of this segment.
        if t_fail < local + seg_work_t {
            let dt = t_fail - local;
            *clock += dt;
            meter.add_compute(dt, sigma);
            return SegmentedEnd::FailStop;
        }
        local += seg_work_t;
        *clock += seg_work_t;
        meter.add_compute(seg_work_t, sigma);
        let struck_this_segment = t_silent_work < worked + seg_work_t;
        worked += seg_work_t;
        // Verification of this segment.
        if t_fail < local + verify_t {
            let dt = t_fail - local;
            *clock += dt;
            meter.add_compute(dt, sigma);
            return SegmentedEnd::FailStop;
        }
        local += verify_t;
        *clock += verify_t;
        meter.add_compute(verify_t, sigma);
        if struck_this_segment {
            return SegmentedEnd::SilentDetected;
        }
    }
    SegmentedEnd::Success
}

/// Simulates one segmented pattern (`q` verifications, one checkpoint)
/// until it checkpoints successfully.
///
/// # Panics
/// If `q == 0`, or after [`MAX_ATTEMPTS`] failed executions.
pub fn simulate_pattern_segmented(cfg: &SimConfig, q: u32, rng: &mut SimRng) -> PatternOutcome {
    assert!(q >= 1, "need at least one verification per pattern");
    let mut clock = 0.0;
    let mut meter = EnergyMeter::new(cfg.power);
    let mut attempts = 0u32;
    let mut silent = 0u32;
    let mut fail_stop = 0u32;
    loop {
        let sigma = if attempts == 0 {
            cfg.sigma1
        } else {
            cfg.sigma2
        };
        assert!(attempts < MAX_ATTEMPTS, "segmented pattern never completes");
        attempts += 1;
        match run_attempt(cfg, q, sigma, &mut clock, &mut meter, rng) {
            SegmentedEnd::Success => break,
            SegmentedEnd::FailStop => {
                fail_stop += 1;
                clock += cfg.costs.recovery;
                meter.add_io(cfg.costs.recovery);
            }
            SegmentedEnd::SilentDetected => {
                silent += 1;
                clock += cfg.costs.recovery;
                meter.add_io(cfg.costs.recovery);
            }
        }
    }
    clock += cfg.costs.checkpoint;
    meter.add_io(cfg.costs.checkpoint);
    PatternOutcome {
        time: clock,
        energy: meter.total(),
        attempts,
        silent_errors: silent,
        fail_stop_errors: fail_stop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_pattern;
    use crate::stats::Stats;
    use rexec_core::{multiverif, ErrorRates, PowerModel, ResilienceCosts, SilentModel};

    fn model(lambda: f64) -> SilentModel {
        SilentModel::new(
            lambda,
            ResilienceCosts::symmetric(300.0, 15.4),
            PowerModel::with_default_io(1550.0, 60.0, 0.15).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn q1_equals_plain_pattern_simulation() {
        let m = model(1e-4);
        let cfg = SimConfig::from_silent_model(&m, 2764.0, 0.4, 0.8);
        for seed in 0..50 {
            let a = simulate_pattern_segmented(&cfg, 1, &mut SimRng::new(seed));
            let b = simulate_pattern(&cfg, &mut SimRng::new(seed));
            // Same RNG consumption order → identical outcomes.
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn error_free_q4_pays_three_extra_verifications() {
        let m = model(0.0);
        let cfg = SimConfig::from_silent_model(&m, 2000.0, 0.5, 0.5);
        let p1 = simulate_pattern_segmented(&cfg, 1, &mut SimRng::new(1));
        let p4 = simulate_pattern_segmented(&cfg, 4, &mut SimRng::new(1));
        let extra = 3.0 * m.costs.verification / 0.5;
        assert!((p4.time - p1.time - extra).abs() < 1e-9);
    }

    #[test]
    fn sampled_mean_matches_multiverif_expectations() {
        // Validates the analytic extension against the simulator, two
        // speeds, q = 3, frequent errors.
        let m = model(1e-4);
        let (w, q, s1, s2) = (3000.0, 3u32, 0.4, 0.8);
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let trials = 40_000u64;
        let mut time = Stats::new();
        let mut energy = Stats::new();
        for i in 0..trials {
            let mut rng = SimRng::for_trial(31337, i);
            let p = simulate_pattern_segmented(&cfg, q, &mut rng);
            time.push(p.time);
            energy.push(p.energy);
        }
        let t_expect = multiverif::expected_time(&m, w, q, s1, s2);
        let e_expect = multiverif::expected_energy(&m, w, q, s1, s2);
        assert!(
            time.contains(t_expect, 4.0),
            "time: sampled {} vs analytic {t_expect}",
            time.mean()
        );
        assert!(
            energy.contains(e_expect, 4.0),
            "energy: sampled {} vs analytic {e_expect}",
            energy.mean()
        );
    }

    #[test]
    fn detection_happens_at_segment_granularity() {
        // With huge q and frequent errors, failed attempts must be much
        // shorter on average than the full phase.
        let m = model(3e-4);
        let (w, s) = (4000.0, 0.5);
        let cfg = SimConfig::from_silent_model(&m, w, s, s);
        let full_phase = (w + m.costs.verification) / s;
        let mut saw_short_failure = false;
        for seed in 0..300 {
            let mut rng = SimRng::new(seed);
            let p = simulate_pattern_segmented(&cfg, 8, &mut rng);
            if p.silent_errors > 0 {
                // Time of a detected attempt is at most i/8 of the work +
                // verifications; the first attempt is shorter than the
                // full single-verification phase whenever i < 8.
                let _ = p;
                saw_short_failure = true;
            }
        }
        assert!(saw_short_failure);
        // Statistical check: mean time with q = 8 under frequent errors is
        // smaller than with q = 1 (earlier detection wins over extra V).
        let n = 5000u64;
        let avg = |q: u32| {
            let mut s = Stats::new();
            for i in 0..n {
                let mut rng = SimRng::for_trial(99, i);
                s.push(simulate_pattern_segmented(&cfg, q, &mut rng).time);
            }
            s.mean()
        };
        assert!(avg(8) < avg(1), "q=8 {} vs q=1 {}", avg(8), avg(1));
        let _ = full_phase;
    }

    #[test]
    fn fail_stop_interrupts_segmented_attempts() {
        let m = model(0.0);
        let mut cfg = SimConfig::from_silent_model(&m, 3000.0, 0.5, 1.0);
        cfg.rates = ErrorRates::fail_stop_only(2e-4).unwrap();
        let mut saw = false;
        for seed in 0..200 {
            let p = simulate_pattern_segmented(&cfg, 4, &mut SimRng::new(seed));
            if p.fail_stop_errors > 0 {
                saw = true;
            }
            assert_eq!(p.silent_errors, 0);
        }
        assert!(saw);
    }

    #[test]
    #[should_panic(expected = "at least one verification")]
    fn q_zero_panics() {
        let m = model(0.0);
        let cfg = SimConfig::from_silent_model(&m, 100.0, 1.0, 1.0);
        simulate_pattern_segmented(&cfg, 0, &mut SimRng::new(1));
    }
}
