//! Energy metering: accumulates time-at-power over a simulated execution.

use rexec_core::PowerModel;

/// Accumulates energy (mJ) from timed phases at known power states.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    power: PowerModel,
    compute_mj: f64,
    io_mj: f64,
    compute_s: f64,
    io_s: f64,
}

impl EnergyMeter {
    /// Creates a meter for a power model.
    pub fn new(power: PowerModel) -> Self {
        EnergyMeter {
            power,
            compute_mj: 0.0,
            io_mj: 0.0,
            compute_s: 0.0,
            io_s: 0.0,
        }
    }

    /// Meters `t` seconds of computation (or verification) at speed `sigma`.
    #[inline]
    pub fn add_compute(&mut self, t: f64, sigma: f64) {
        self.compute_mj += t * self.power.compute_power(sigma);
        self.compute_s += t;
    }

    /// Meters `t` seconds of I/O (checkpoint or recovery).
    #[inline]
    pub fn add_io(&mut self, t: f64) {
        self.io_mj += t * self.power.io_power();
        self.io_s += t;
    }

    /// Total energy so far (mJ).
    #[inline]
    pub fn total(&self) -> f64 {
        self.compute_mj + self.io_mj
    }

    /// Energy spent computing (mJ).
    #[inline]
    pub fn compute_energy(&self) -> f64 {
        self.compute_mj
    }

    /// Energy spent on I/O (mJ).
    #[inline]
    pub fn io_energy(&self) -> f64 {
        self.io_mj
    }

    /// Wall-clock seconds metered so far (compute + I/O).
    #[inline]
    pub fn elapsed(&self) -> f64 {
        self.compute_s + self.io_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> EnergyMeter {
        EnergyMeter::new(PowerModel::new(1550.0, 60.0, 5.0).unwrap())
    }

    #[test]
    fn compute_energy_matches_power_law() {
        let mut m = meter();
        m.add_compute(10.0, 0.5);
        let expected = 10.0 * (1550.0 * 0.125 + 60.0);
        assert!((m.total() - expected).abs() < 1e-9);
        assert!((m.compute_energy() - expected).abs() < 1e-9);
        assert_eq!(m.io_energy(), 0.0);
    }

    #[test]
    fn io_energy_uses_io_power() {
        let mut m = meter();
        m.add_io(300.0);
        assert!((m.total() - 300.0 * 65.0).abs() < 1e-9);
    }

    #[test]
    fn phases_accumulate() {
        let mut m = meter();
        m.add_compute(5.0, 1.0);
        m.add_io(2.0);
        m.add_compute(3.0, 0.4);
        assert!((m.elapsed() - 10.0).abs() < 1e-12);
        assert!(
            (m.total() - (5.0 * 1610.0 + 2.0 * 65.0 + 3.0 * (1550.0 * 0.064 + 60.0))).abs() < 1e-9
        );
    }

    #[test]
    fn fresh_meter_is_zero() {
        let m = meter();
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.elapsed(), 0.0);
    }
}
