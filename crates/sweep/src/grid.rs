//! Parameter grids for sweeps.

use serde::{Deserialize, Serialize};

/// A one-dimensional parameter grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    values: Vec<f64>,
}

impl Grid {
    /// `n` points linearly spaced over `[lo, hi]` (inclusive). Both
    /// endpoints are exact (no floating-point drift); `n = 1` yields
    /// `[lo]` and `lo == hi` yields `n` copies of `lo`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Grid {
        assert!(n >= 1, "grid must be non-empty");
        assert!(hi >= lo, "need lo <= hi");
        if n == 1 {
            return Grid { values: vec![lo] };
        }
        let step = (hi - lo) / (n - 1) as f64;
        let mut values: Vec<f64> = (0..n).map(|i| lo + step * i as f64).collect();
        values[0] = lo;
        values[n - 1] = hi;
        Grid { values }
    }

    /// `n` points logarithmically spaced over `[lo, hi]` (inclusive);
    /// requires `lo > 0`. Both endpoints are exact; `n = 1` yields `[lo]`
    /// and `lo == hi` yields `n` copies of `lo`.
    pub fn log(lo: f64, hi: f64, n: usize) -> Grid {
        assert!(n >= 1, "grid must be non-empty");
        assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
        if n == 1 {
            return Grid { values: vec![lo] };
        }
        let ratio = (hi / lo).ln();
        let mut values: Vec<f64> = (0..n)
            .map(|i| lo * (ratio * i as f64 / (n - 1) as f64).exp())
            .collect();
        values[0] = lo;
        values[n - 1] = hi;
        Grid { values }
    }

    /// An explicit list of points.
    pub fn explicit(values: Vec<f64>) -> Grid {
        assert!(!values.is_empty(), "grid must be non-empty");
        Grid { values }
    }

    /// The grid points.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<'a> IntoIterator for &'a Grid {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints_and_spacing() {
        let g = Grid::linear(0.0, 5000.0, 51);
        assert_eq!(g.len(), 51);
        assert_eq!(g.values()[0], 0.0);
        assert!((g.values()[50] - 5000.0).abs() < 1e-9);
        assert!((g.values()[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn log_endpoints_and_ratio() {
        let g = Grid::log(1e-6, 1e-2, 5);
        assert!((g.values()[0] - 1e-6).abs() < 1e-18);
        assert!((g.values()[4] - 1e-2).abs() < 1e-12);
        let r1 = g.values()[1] / g.values()[0];
        let r2 = g.values()[2] / g.values()[1];
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn explicit_keeps_order() {
        let g = Grid::explicit(vec![3.0, 1.0, 2.0]);
        assert_eq!(g.values(), &[3.0, 1.0, 2.0]);
        assert!(!g.is_empty());
    }

    #[test]
    fn iteration_matches_values() {
        let g = Grid::linear(1.0, 2.0, 3);
        let v: Vec<f64> = (&g).into_iter().collect();
        assert_eq!(v, g.values());
    }

    #[test]
    #[should_panic(expected = "0 < lo")]
    fn log_rejects_zero_lo() {
        Grid::log(0.0, 1.0, 3);
    }

    #[test]
    fn endpoints_are_exact() {
        // The last point must equal `hi` bit-for-bit — no `exp`-roundoff
        // drift — so sweep CSVs print the nominal bounds.
        for (lo, hi, n) in [(1e-6, 1e-2, 49), (1e-6, 1e-3, 7), (3.7e-5, 0.11, 23)] {
            let g = Grid::log(lo, hi, n);
            assert_eq!(g.values()[0], lo);
            assert_eq!(g.values()[n - 1], hi);
        }
        for (lo, hi, n) in [(0.0, 5000.0, 51), (1.0, 3.5, 51), (1.2, 6.0, 9)] {
            let g = Grid::linear(lo, hi, n);
            assert_eq!(g.values()[0], lo);
            assert_eq!(g.values()[n - 1], hi);
        }
    }

    #[test]
    fn single_point_grids() {
        assert_eq!(Grid::linear(2.5, 7.0, 1).values(), &[2.5]);
        assert_eq!(Grid::log(1e-4, 1e-2, 1).values(), &[1e-4]);
    }

    #[test]
    fn degenerate_lo_equals_hi_grids() {
        assert_eq!(Grid::linear(3.0, 3.0, 4).values(), &[3.0; 4]);
        assert_eq!(Grid::log(0.5, 0.5, 3).values(), &[0.5; 3]);
    }

    #[test]
    #[should_panic(expected = "grid must be non-empty")]
    fn linear_rejects_zero_points() {
        Grid::linear(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn linear_rejects_reversed_bounds() {
        Grid::linear(1.0, 0.0, 3);
    }
}
