//! Parameter grids for sweeps.

use serde::{Deserialize, Serialize};

/// A one-dimensional parameter grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    values: Vec<f64>,
}

impl Grid {
    /// `n` points linearly spaced over `[lo, hi]` (inclusive).
    pub fn linear(lo: f64, hi: f64, n: usize) -> Grid {
        assert!(n >= 2 && hi > lo, "need n >= 2 and hi > lo");
        let step = (hi - lo) / (n - 1) as f64;
        Grid {
            values: (0..n).map(|i| lo + step * i as f64).collect(),
        }
    }

    /// `n` points logarithmically spaced over `[lo, hi]` (inclusive);
    /// requires `lo > 0`.
    pub fn log(lo: f64, hi: f64, n: usize) -> Grid {
        assert!(n >= 2 && lo > 0.0 && hi > lo, "need n >= 2 and 0 < lo < hi");
        let ratio = (hi / lo).ln();
        Grid {
            values: (0..n)
                .map(|i| lo * (ratio * i as f64 / (n - 1) as f64).exp())
                .collect(),
        }
    }

    /// An explicit list of points.
    pub fn explicit(values: Vec<f64>) -> Grid {
        assert!(!values.is_empty(), "grid must be non-empty");
        Grid { values }
    }

    /// The grid points.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid is empty (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<'a> IntoIterator for &'a Grid {
    type Item = f64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, f64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints_and_spacing() {
        let g = Grid::linear(0.0, 5000.0, 51);
        assert_eq!(g.len(), 51);
        assert_eq!(g.values()[0], 0.0);
        assert!((g.values()[50] - 5000.0).abs() < 1e-9);
        assert!((g.values()[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn log_endpoints_and_ratio() {
        let g = Grid::log(1e-6, 1e-2, 5);
        assert!((g.values()[0] - 1e-6).abs() < 1e-18);
        assert!((g.values()[4] - 1e-2).abs() < 1e-12);
        let r1 = g.values()[1] / g.values()[0];
        let r2 = g.values()[2] / g.values()[1];
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn explicit_keeps_order() {
        let g = Grid::explicit(vec![3.0, 1.0, 2.0]);
        assert_eq!(g.values(), &[3.0, 1.0, 2.0]);
        assert!(!g.is_empty());
    }

    #[test]
    fn iteration_matches_values() {
        let g = Grid::linear(1.0, 2.0, 3);
        let v: Vec<f64> = (&g).into_iter().collect();
        assert_eq!(v, g.values());
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn linear_rejects_single_point() {
        Grid::linear(0.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "0 < lo")]
    fn log_rejects_zero_lo() {
        Grid::log(0.0, 1.0, 3);
    }
}
