//! # rexec-sweep
//!
//! Experiment harness regenerating **every table and figure** of the
//! paper's evaluation section (§4), the §5 extension experiments, and the
//! validation/ablation studies documented in DESIGN.md:
//!
//! * [`table_rho`] — the four §4.2 tables (Hera/XScale at ρ = 8, 3,
//!   1.775, 1.4);
//! * [`figure`] — the six parameter sweeps (C, V, λ, ρ, Pidle, Pio) of
//!   Figures 2–7 (Atlas/Crusoe) and Figures 8–14 (the other seven
//!   configurations);
//! * [`experiments`] — the experiment registry: one entry per paper
//!   artifact plus Theorem 2 scaling, the §5.2 validity window, the Monte
//!   Carlo validation and the exact-vs-first-order ablation;
//! * [`pipeline`] — the crash-tolerant runner behind the `experiments`
//!   binary: every unit is sealed in a verified-checkpoint run manifest
//!   (atomic artifact writes + content digests), `--resume` re-verifies
//!   and skips intact units, and `--fault-plan` injects deterministic
//!   write failures, corruptions and kills;
//! * [`grid`], [`series`], [`render`] — parameter grids, data series with
//!   CSV export, and ASCII rendering.
//!
//! The `experiments` binary (`cargo run -p rexec-sweep --bin experiments`)
//! prints any or all of them.

#![warn(missing_docs)]
pub mod experiments;
pub mod figure;
pub mod grid;
pub mod heatmap;
pub mod pipeline;
pub mod render;
pub mod series;
pub mod table_rho;

pub use experiments::{run_all, run_experiment, ExperimentId, ExperimentResult};
pub use figure::{sweep_figure, FigurePoint, FigureSeries, SolutionPoint, SweepParam};
pub use grid::Grid;
pub use heatmap::{Heatmap, HeatmapCell};
pub use pipeline::{PipelineConfig, PipelineSummary, UnitOutcome};
pub use table_rho::{rho_table, RhoTable};
