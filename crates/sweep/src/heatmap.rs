//! Two-dimensional maps of the optimal solution over (λ, ρ).
//!
//! The paper varies one parameter at a time; this module crosses the two
//! most influential ones — the error rate and the performance bound — and
//! records which speed pair wins in each cell, how large the optimal
//! pattern is, and how much the second speed saves. The resulting map
//! shows the *regions* of the parameter plane owned by each pair (the 2-D
//! generalization of the §4.2 observation).

use crate::figure::SolutionPoint;
use crate::grid::Grid;
use rayon::prelude::*;
use rexec_core::BiCritSolver;
use rexec_platforms::Configuration;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One cell of the map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatmapCell {
    /// Error rate of this cell.
    pub lambda: f64,
    /// Performance bound of this cell.
    pub rho: f64,
    /// Two-speed optimum, `None` when infeasible.
    pub solution: Option<SolutionPoint>,
    /// Energy saving of two speeds over one speed, `None` when infeasible.
    pub saving: Option<f64>,
}

/// The λ × ρ map for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Configuration name.
    pub config_name: String,
    /// λ grid (ascending).
    pub lambdas: Vec<f64>,
    /// ρ grid (ascending).
    pub rhos: Vec<f64>,
    /// Row-major cells: `cells[i * rhos.len() + j]` is `(λᵢ, ρⱼ)`.
    pub cells: Vec<HeatmapCell>,
}

impl Heatmap {
    /// Computes the map over the given grids.
    ///
    /// Rows (λ values) are evaluated in parallel — each row builds its
    /// solver's candidate table once and batches the whole ρ grid through
    /// [`BiCritSolver::solve_many_into`]. Each worker thread carries one
    /// pair of reusable solution buffers across all of its rows
    /// (`map_init` scratch), so the per-row cost is the column sweep
    /// itself, not a pair of fresh `Vec`s. Rows are collected in λ-index
    /// order, so the row-major `cells` layout (and the CSV rendered from
    /// it) is byte-identical to a serial evaluation for any
    /// `RAYON_NUM_THREADS`.
    pub fn compute(cfg: &Configuration, lambdas: &Grid, rhos: &Grid) -> Heatmap {
        let _timer = rexec_obs::span!("sweep.heatmap");
        let base = cfg.silent_model().expect("valid configuration");
        let speeds = cfg.speed_set().expect("valid speeds");
        let rows: Vec<Vec<HeatmapCell>> = lambdas
            .values()
            .to_vec()
            .into_par_iter()
            .map_init(
                || (Vec::new(), Vec::new()),
                |(two, one), lambda| {
                    let solver = BiCritSolver::new(base.with_lambda(lambda), speeds.clone());
                    solver.solve_many_into(rhos.values(), two);
                    solver.solve_one_speed_many_into(rhos.values(), one);
                    rhos.values()
                        .iter()
                        .zip(two.iter())
                        .zip(one.iter())
                        .map(|((&rho, t), o)| {
                            let saving = match (t, o) {
                                (Some(t), Some(o)) => {
                                    Some(1.0 - t.energy_overhead / o.energy_overhead)
                                }
                                _ => None,
                            };
                            HeatmapCell {
                                lambda,
                                rho,
                                solution: t.map(Into::into),
                                saving,
                            }
                        })
                        .collect()
                },
            )
            .collect();
        let cells: Vec<HeatmapCell> = rows.into_iter().flatten().collect();
        rexec_obs::counter!("sweep.heatmap_cells").add(cells.len() as u64);
        Heatmap {
            config_name: cfg.name(),
            lambdas: lambdas.values().to_vec(),
            rhos: rhos.values().to_vec(),
            cells,
        }
    }

    /// Cell at λ-index `i`, ρ-index `j`.
    pub fn cell(&self, i: usize, j: usize) -> &HeatmapCell {
        &self.cells[i * self.rhos.len() + j]
    }

    /// Distinct winning speed pairs across feasible cells.
    pub fn winning_pairs(&self) -> Vec<(f64, f64)> {
        let mut out: Vec<(f64, f64)> = vec![];
        for c in &self.cells {
            if let Some(s) = c.solution {
                let pair = (s.sigma1, s.sigma2);
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite speeds"));
        out
    }

    /// Fraction of feasible cells where σ₂ ≠ σ₁.
    pub fn two_speed_fraction(&self) -> f64 {
        let feasible: Vec<&HeatmapCell> =
            self.cells.iter().filter(|c| c.solution.is_some()).collect();
        if feasible.is_empty() {
            return 0.0;
        }
        let two = feasible
            .iter()
            .filter(|c| {
                let s = c.solution.unwrap();
                s.sigma1 != s.sigma2
            })
            .count();
        two as f64 / feasible.len() as f64
    }

    /// Renders the pair map as an ASCII grid (one glyph per winning pair,
    /// `.` for infeasible cells), with a legend.
    pub fn render_pair_map(&self) -> String {
        const GLYPHS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnop";
        let pairs = self.winning_pairs();
        let glyph_of = |pair: (f64, f64)| -> char {
            let idx = pairs.iter().position(|&p| p == pair).unwrap_or(0);
            GLYPHS[idx % GLYPHS.len()] as char
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — optimal pair per (λ row, ρ column); '.' = infeasible",
            self.config_name
        );
        for (i, &lambda) in self.lambdas.iter().enumerate() {
            let _ = write!(out, "λ={lambda:9.2e}  ");
            for j in 0..self.rhos.len() {
                match self.cell(i, j).solution {
                    Some(s) => out.push(glyph_of((s.sigma1, s.sigma2))),
                    None => out.push('.'),
                }
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "ρ from {:.2} to {:.2} (left to right)",
            self.rhos.first().unwrap(),
            self.rhos.last().unwrap()
        );
        out.push_str("legend: ");
        for (k, &(s1, s2)) in pairs.iter().enumerate() {
            let _ = write!(out, "{}=({s1},{s2}) ", GLYPHS[k % GLYPHS.len()] as char);
        }
        out.push('\n');
        out
    }

    /// CSV export: `lambda,rho,sigma1,sigma2,w_opt,e_over_w,saving`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lambda,rho,sigma1,sigma2,w_opt,energy_overhead,saving\n");
        for c in &self.cells {
            match (c.solution, c.saving) {
                (Some(s), Some(sv)) => {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{},{},{}",
                        c.lambda, c.rho, s.sigma1, s.sigma2, s.w_opt, s.energy_overhead, sv
                    );
                }
                _ => {
                    let _ = writeln!(out, "{},{},,,,,", c.lambda, c.rho);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_platforms::{configuration, ConfigId, PlatformId, ProcessorId};

    fn hera_xscale() -> Configuration {
        configuration(ConfigId {
            platform: PlatformId::Hera,
            processor: ProcessorId::IntelXScale,
        })
    }

    fn small_map() -> Heatmap {
        Heatmap::compute(
            &hera_xscale(),
            &Grid::log(1e-6, 1e-3, 7),
            &Grid::linear(1.2, 6.0, 9),
        )
    }

    #[test]
    fn map_has_full_dimensions() {
        let m = small_map();
        assert_eq!(m.cells.len(), 7 * 9);
        assert_eq!(m.cell(0, 0).lambda, 1e-6);
        assert_eq!(m.cell(0, 0).rho, 1.2);
        assert_eq!(m.cell(6, 8).rho, 6.0);
    }

    #[test]
    fn feasibility_is_monotone_in_rho_per_row() {
        let m = small_map();
        for i in 0..m.lambdas.len() {
            let mut seen = false;
            for j in 0..m.rhos.len() {
                let f = m.cell(i, j).solution.is_some();
                if f {
                    seen = true;
                } else {
                    assert!(!seen, "row {i}: feasibility must be monotone in ρ");
                }
            }
        }
    }

    #[test]
    fn several_pairs_win_and_savings_nonnegative() {
        let m = small_map();
        assert!(m.winning_pairs().len() >= 3, "{:?}", m.winning_pairs());
        for c in &m.cells {
            if let Some(sv) = c.saving {
                assert!(sv >= -1e-9);
            }
        }
        assert!(m.two_speed_fraction() > 0.0);
    }

    #[test]
    fn render_and_csv_are_well_formed() {
        let m = small_map();
        let map = m.render_pair_map();
        assert!(map.contains("legend:"));
        assert!(map.contains('.'), "tight-ρ cells must be infeasible");
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 1 + 7 * 9);
        assert!(csv.lines().nth(1).unwrap().starts_with("0.000001,1.2"));
    }
}
