//! Crash-tolerant experiment pipeline — the verified-checkpoint state
//! machine behind the `experiments` binary.
//!
//! Every experiment is one *work unit* registered in a [`RunManifest`]
//! (`<out>/manifest.json`). A unit executes, its artifacts (CSV datasets
//! plus the rendered report) land via temp-file + atomic rename, each is
//! sealed with an FNV-1a content digest, and the manifest is rewritten
//! atomically — so a crash, kill or full disk at any instant leaves a
//! loadable manifest describing exactly the completed prefix and never a
//! truncated artifact under its final name.
//!
//! On `--resume` the pipeline re-verifies the digests of every sealed
//! unit (the paper's verification step `V` applied to the runner
//! itself): intact units are skipped, missing or silently-corrupted ones
//! are detected and recomputed. Transient I/O failures are retried under
//! capped exponential backoff, and `--fault-plan` injects deterministic
//! faults (fail the Nth write, corrupt the Nth artifact, kill after unit
//! K) so the recovery paths are exercised in-tree.

use crate::experiments::{
    all_experiment_ids, id_string, parse_id, quick_experiment_ids, run_experiment_seeded,
    ExperimentId, DEFAULT_SEED,
};
use rexec_harness::{
    atomic_write, ArtifactRecord, FaultInjector, FaultPlan, HarnessError, RetryPolicy, RunManifest,
    UnitRecord, VerifyOutcome, MANIFEST_NAME,
};
use serde::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Tool name recorded in manifests (resume refuses to cross tools).
pub const TOOL_NAME: &str = "experiments";

/// Filename of the end-of-run metrics/run report inside the output
/// directory. Unlike the manifest it contains wall-clock data and is not
/// part of the resumable state.
pub const METRICS_NAME: &str = "metrics.json";

/// A parsed `experiments` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Output directory for artifacts, manifest and metrics.
    pub out_dir: PathBuf,
    /// Base Monte Carlo seed.
    pub seed: u64,
    /// Re-verify sealed units from an existing manifest and skip them.
    pub resume: bool,
    /// Experiments to run, in order.
    pub ids: Vec<ExperimentId>,
    /// Deterministic fault schedule (defaults to no faults).
    pub fault: FaultPlan,
    /// Retry policy for artifact/manifest writes.
    pub retry: RetryPolicy,
    /// Also write the metrics snapshot in Prometheus text exposition
    /// format to this path (`--metrics-prom`).
    pub metrics_prom: Option<PathBuf>,
    /// Record a span timeline for the run and write it as Chrome
    /// trace-event JSON to this path (`--trace-chrome`; open in
    /// Perfetto).
    pub trace_chrome: Option<PathBuf>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            out_dir: PathBuf::from("results"),
            seed: DEFAULT_SEED,
            resume: false,
            ids: all_experiment_ids(),
            fault: FaultPlan::default(),
            retry: RetryPolicy::default(),
            metrics_prom: None,
            trace_chrome: None,
        }
    }
}

/// What happened to one unit during a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitOutcome {
    /// Computed fresh (no resume, or not sealed before).
    Computed,
    /// Sealed by an earlier run, re-verified intact, skipped.
    SkippedVerified,
    /// Sealed before but failed re-verification; recomputed. The string
    /// says why, e.g. `digest mismatch on fig4_... .csv`.
    Recomputed(String),
}

/// Per-run outcome summary, keyed by unit id in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSummary {
    /// `(unit id, outcome)` in execution order.
    pub units: Vec<(String, UnitOutcome)>,
    /// Path of the run manifest.
    pub manifest_path: PathBuf,
    /// Path of the metrics report.
    pub metrics_path: PathBuf,
}

/// Usage text of the `experiments` binary.
pub const USAGE: &str = "\
usage: experiments [--out DIR] [--seed N] [--resume] [--quick]
                   [--fault-plan SPEC] [--metrics-prom PATH]
                   [--trace-chrome PATH] [IDS...]

  IDS          experiment ids to run (default: all), e.g.
               T-rho8 T-rho3 T-rho1.775 T-rho1.4 F1..F14 X-thm2 X-validity
               X-mc X-mc-mixed X-ablation X-pairs X-robust X-pareto
               X-multiverif X-continuous X-heatmap
  --out        directory for artifacts + run manifest (default: results/)
  --seed       base seed for Monte Carlo experiments (default: 2024)
  --quick      fast subset (tables, F4, X-thm2, X-validity) for smoke runs
  --resume     re-verify sealed units from <out>/manifest.json, skip the
               intact ones and recompute only what is missing or corrupt
  --fault-plan deterministic fault injection, comma-separated:
               fail-write=N, corrupt-artifact=N, kill-after-unit=K, seed=S
  --metrics-prom PATH  also write the metrics snapshot in Prometheus
               text exposition format
  --trace-chrome PATH  record a span timeline and write it as Chrome
               trace-event JSON (open in Perfetto / chrome://tracing)
";

/// Result of parsing the command line: run, or print help.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// Execute the pipeline.
    Run(Box<PipelineConfig>),
    /// Print [`USAGE`] and exit 0.
    Help,
}

fn invalid(what: &str, reason: String) -> HarnessError {
    HarnessError::InvalidArg {
        what: what.into(),
        reason,
    }
}

/// Parses the `experiments` command line (without the program name).
/// Numeric inputs are validated up front: a malformed or overflowing
/// `--seed` is rejected here with a clear message rather than surfacing
/// as downstream misbehavior.
pub fn parse_cli<I: IntoIterator<Item = String>>(raw: I) -> Result<CliCommand, HarnessError> {
    let mut cfg = PipelineConfig::default();
    let mut explicit_ids: Vec<ExperimentId> = vec![];
    let mut quick = false;
    let mut it = raw.into_iter().collect::<Vec<_>>().into_iter();
    let take = |opt: &str, it: &mut std::vec::IntoIter<String>| {
        it.next()
            .ok_or_else(|| invalid(opt, "requires a value".into()))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Ok(CliCommand::Help),
            "--resume" => cfg.resume = true,
            "--quick" => quick = true,
            "--out" => cfg.out_dir = PathBuf::from(take(&a, &mut it)?),
            "--seed" => {
                let v = take(&a, &mut it)?;
                cfg.seed = v.parse::<u64>().map_err(|_| {
                    invalid(
                        "--seed",
                        format!(
                            "`{v}` is not an unsigned 64-bit integer \
                             (0 ..= {}, no sign, no decimals)",
                            u64::MAX
                        ),
                    )
                })?;
            }
            "--fault-plan" => cfg.fault = FaultPlan::parse(&take(&a, &mut it)?)?,
            "--metrics-prom" => cfg.metrics_prom = Some(PathBuf::from(take(&a, &mut it)?)),
            "--trace-chrome" => cfg.trace_chrome = Some(PathBuf::from(take(&a, &mut it)?)),
            other if other.starts_with('-') => return Err(invalid(other, "unknown option".into())),
            other => match parse_id(other) {
                Some(id) => explicit_ids.push(id),
                None => return Err(HarnessError::UnknownExperiment(other.to_string())),
            },
        }
    }
    cfg.ids = match (quick, explicit_ids.is_empty()) {
        (true, false) => {
            return Err(invalid(
                "--quick",
                "cannot be combined with explicit experiment ids".into(),
            ))
        }
        (true, true) => quick_experiment_ids(),
        (false, false) => explicit_ids,
        (false, true) => all_experiment_ids(),
    };
    Ok(CliCommand::Run(Box::new(cfg)))
}

/// FNV-1a digest of every published configuration's parameters, so a
/// manifest records exactly which model constants produced its numbers
/// (and `--resume` refuses to mix numbers from different constants).
pub fn config_digest() -> String {
    let mut d = rexec_harness::Digest::new();
    for cfg in rexec_platforms::all_configurations() {
        d.update(format!("{cfg:?}").as_bytes());
    }
    d.finish()
}

fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Reason string for a failed verification (the unit will be recomputed).
fn verify_reason(outcome: &VerifyOutcome) -> String {
    match outcome {
        VerifyOutcome::Verified => unreachable!("verified units are skipped, not recomputed"),
        VerifyOutcome::NotRecorded => "not previously sealed".into(),
        VerifyOutcome::MissingArtifact(name) => format!("missing artifact {name}"),
        VerifyOutcome::DigestMismatch { name, .. } => format!("digest mismatch on {name}"),
    }
}

/// Seals one artifact: digests the intended bytes, lets the fault plan
/// corrupt what actually lands on disk (a *silent* error: the manifest
/// keeps the intended digest), then writes atomically under retry.
fn seal_artifact(
    dir: &Path,
    name: &str,
    bytes: &[u8],
    retry: &RetryPolicy,
    injector: &FaultInjector,
) -> Result<ArtifactRecord, HarnessError> {
    let record = ArtifactRecord {
        name: name.to_string(),
        bytes: bytes.len() as u64,
        digest: rexec_harness::digest_bytes(bytes),
    };
    let mut on_disk = bytes.to_vec();
    injector.corrupt_artifact(&mut on_disk);
    atomic_write(&dir.join(name), &on_disk, retry, injector)?;
    Ok(record)
}

/// Runs the pipeline: executes (or, on resume, verifies and skips) every
/// unit in `cfg.ids`, sealing artifacts and checkpointing the manifest
/// after each one, then writes the metrics report. Progress and unit
/// reports go to stdout.
///
/// The fault plan's `kill-after-unit=K` aborts with
/// [`HarnessError::KilledByFaultPlan`] after the K-th unit of *this
/// invocation* is sealed or skipped — the manifest is already on disk,
/// so a subsequent `--resume` continues from unit K+1.
pub fn run(cfg: &PipelineConfig) -> Result<PipelineSummary, HarnessError> {
    // The manifest wants per-experiment timings, so span timing is on.
    rexec_obs::set_spans_enabled(true);
    if cfg.trace_chrome.is_some() {
        // A Chrome trace was requested: record every span as a timeline
        // event (with parent nesting) on top of the aggregate timings.
        rexec_obs::set_timeline_enabled(true);
    }
    let injector = cfg.fault.injector();
    let started_unix = unix_secs();
    let run_started = Instant::now();
    let tool_version = env!("CARGO_PKG_VERSION");
    let digest = config_digest();

    std::fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| HarnessError::io("create output directory", &cfg.out_dir, &e))?;
    let manifest_path = cfg.out_dir.join(MANIFEST_NAME);
    let metrics_path = cfg.out_dir.join(METRICS_NAME);

    let mut manifest = if cfg.resume && manifest_path.exists() {
        let m = RunManifest::load(&manifest_path)?;
        m.check_resumable(TOOL_NAME, cfg.seed, &digest)?;
        println!(
            "resuming: manifest seals {} unit(s), re-verifying digests",
            m.units.len()
        );
        m
    } else {
        RunManifest::new(TOOL_NAME, tool_version, cfg.seed, digest.clone())
    };

    let mut summary = PipelineSummary {
        units: vec![],
        manifest_path: manifest_path.clone(),
        metrics_path: metrics_path.clone(),
    };

    for (idx, &id) in cfg.ids.iter().enumerate() {
        let key = id_string(id);
        let outcome = if cfg.resume {
            match manifest.verify_unit(&cfg.out_dir, &key) {
                VerifyOutcome::Verified => UnitOutcome::SkippedVerified,
                other => UnitOutcome::Recomputed(verify_reason(&other)),
            }
        } else {
            UnitOutcome::Computed
        };

        match &outcome {
            UnitOutcome::SkippedVerified => {
                println!("[{key}] verified intact, skipping (sealed by an earlier run)");
            }
            UnitOutcome::Recomputed(reason) => {
                println!("[{key}] re-verification failed ({reason}); recomputing");
                rexec_obs::counter!("harness.units_recomputed").incr();
            }
            UnitOutcome::Computed => {}
        }

        if outcome != UnitOutcome::SkippedVerified {
            let exp_started = Instant::now();
            let r = run_experiment_seeded(id, cfg.seed)?;
            debug_assert_eq!(r.id, key, "id_string must match the experiment's own id");
            let wall_secs = exp_started.elapsed().as_secs_f64();
            println!("================================================================");
            println!(
                "[{}] {}  ({:.2}s, {} points)",
                r.id,
                r.title,
                wall_secs,
                r.point_count()
            );
            println!("================================================================");
            println!("{}", r.report);

            let mut artifacts = vec![];
            for (name, csv) in &r.datasets {
                let file = format!("{name}.csv");
                artifacts.push(seal_artifact(
                    &cfg.out_dir,
                    &file,
                    csv.as_bytes(),
                    &cfg.retry,
                    &injector,
                )?);
                println!("  dataset written: {}", cfg.out_dir.join(&file).display());
            }
            artifacts.push(seal_artifact(
                &cfg.out_dir,
                &format!("report_{key}.txt"),
                r.report.as_bytes(),
                &cfg.retry,
                &injector,
            )?);
            println!();

            manifest.record_unit(UnitRecord {
                id: key.clone(),
                title: r.title.clone(),
                points: r.point_count() as u64,
                wall_secs,
                artifacts,
            });
            // Checkpoint: the manifest on disk always describes exactly
            // the sealed prefix.
            manifest.save(&manifest_path, &cfg.retry, &injector)?;
            rexec_obs::counter!("harness.units_sealed").incr();
        } else {
            rexec_obs::counter!("harness.units_skipped").incr();
        }

        summary.units.push((key, outcome));
        if injector.should_kill_after_unit(idx as u64 + 1) {
            return Err(HarnessError::KilledByFaultPlan {
                after_unit: idx as u64 + 1,
            });
        }
    }

    manifest.complete = true;
    manifest.save(&manifest_path, &cfg.retry, &injector)?;
    write_metrics(cfg, &manifest, started_unix, run_started, &injector)?;
    println!("run manifest written: {}", manifest_path.display());
    println!("run metrics written: {}", metrics_path.display());
    if let Some(path) = &cfg.metrics_prom {
        let text = rexec_obs::prometheus_text(rexec_obs::global());
        atomic_write(path, text.as_bytes(), &cfg.retry, &injector)?;
        println!("prometheus metrics written: {}", path.display());
    }
    if let Some(path) = &cfg.trace_chrome {
        let json = rexec_obs::chrome_trace_json();
        atomic_write(path, json.as_bytes(), &cfg.retry, &injector)?;
        println!("chrome trace written: {}", path.display());
    }
    Ok(summary)
}

/// Writes `<out>/metrics.json`: run metadata, per-unit manifest entries
/// and the full metrics-registry snapshot. Wall-clock values live here —
/// not in the resumable manifest state.
fn write_metrics(
    cfg: &PipelineConfig,
    manifest: &RunManifest,
    started_unix: u64,
    run_started: Instant,
    injector: &FaultInjector,
) -> Result<(), HarnessError> {
    use serde::Serialize as _;
    let mut run = BTreeMap::new();
    run.insert("tool".to_string(), TOOL_NAME.to_value());
    run.insert("version".to_string(), env!("CARGO_PKG_VERSION").to_value());
    run.insert("seed".to_string(), cfg.seed.to_value());
    run.insert(
        "config_digest".to_string(),
        manifest.config_digest.to_value(),
    );
    run.insert("resumed".to_string(), cfg.resume.to_value());
    run.insert("started_unix_secs".to_string(), started_unix.to_value());
    run.insert("finished_unix_secs".to_string(), unix_secs().to_value());
    run.insert(
        "wall_secs".to_string(),
        run_started.elapsed().as_secs_f64().to_value(),
    );

    let experiments: Vec<Value> = manifest
        .units
        .iter()
        .map(|u| {
            let mut entry = BTreeMap::new();
            entry.insert("id".to_string(), u.id.to_value());
            entry.insert("title".to_string(), u.title.to_value());
            entry.insert("wall_secs".to_string(), u.wall_secs.to_value());
            entry.insert("points".to_string(), u.points.to_value());
            entry.insert(
                "artifacts".to_string(),
                Value::Array(u.artifacts.iter().map(|a| a.name.to_value()).collect()),
            );
            Value::Object(entry)
        })
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert("run".to_string(), Value::Object(run));
    doc.insert("experiments".to_string(), Value::Array(experiments));
    doc.insert("metrics".to_string(), rexec_obs::global().snapshot_value());

    let json = serde_json::to_string_pretty(&Value::Object(doc))
        .expect("metrics document serializes infallibly");
    atomic_write(
        &cfg.out_dir.join(METRICS_NAME),
        json.as_bytes(),
        &cfg.retry,
        injector,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliCommand, HarnessError> {
        parse_cli(args.iter().map(|s| s.to_string()))
    }

    fn parsed_cfg(args: &[&str]) -> PipelineConfig {
        match parse(args).unwrap() {
            CliCommand::Run(cfg) => *cfg,
            CliCommand::Help => panic!("expected a run command"),
        }
    }

    #[test]
    fn defaults_cover_the_full_suite() {
        let cfg = parsed_cfg(&[]);
        assert_eq!(cfg.out_dir, PathBuf::from("results"));
        assert_eq!(cfg.seed, DEFAULT_SEED);
        assert!(!cfg.resume);
        assert_eq!(cfg.ids, all_experiment_ids());
        assert_eq!(cfg.fault, FaultPlan::default());
    }

    #[test]
    fn quick_resume_and_fault_plan_parse() {
        let cfg = parsed_cfg(&[
            "--quick",
            "--resume",
            "--out",
            "/tmp/r",
            "--seed",
            "7",
            "--fault-plan",
            "kill-after-unit=2,seed=3",
        ]);
        assert!(cfg.resume);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.ids, quick_experiment_ids());
        assert_eq!(cfg.fault.kill_after_unit, Some(2));
        assert_eq!(cfg.fault.seed, 3);
    }

    #[test]
    fn exporter_paths_parse() {
        let cfg = parsed_cfg(&[
            "--metrics-prom",
            "/tmp/m.prom",
            "--trace-chrome",
            "/tmp/t.trace.json",
        ]);
        assert_eq!(cfg.metrics_prom, Some(PathBuf::from("/tmp/m.prom")));
        assert_eq!(cfg.trace_chrome, Some(PathBuf::from("/tmp/t.trace.json")));
        assert!(parse(&["--trace-chrome"]).is_err());
        assert!(USAGE.contains("--metrics-prom") && USAGE.contains("--trace-chrome"));
    }

    #[test]
    fn explicit_ids_accept_both_spellings() {
        let cfg = parsed_cfg(&["T-rho1.775", "T-rho1_4", "F9", "X-heatmap"]);
        assert_eq!(
            cfg.ids,
            vec![
                ExperimentId::TableRho(1.775),
                ExperimentId::TableRho(1.4),
                ExperimentId::FigureConfig(9),
                ExperimentId::Heatmap,
            ]
        );
    }

    #[test]
    fn seed_overflow_is_rejected_up_front_with_a_clear_message() {
        for bad in ["18446744073709551616", "-1", "1.5", "0x10", "abc"] {
            let err = parse(&["--seed", bad]).unwrap_err();
            match err {
                HarnessError::InvalidArg { what, reason } => {
                    assert_eq!(what, "--seed");
                    assert!(reason.contains(bad), "reason must quote `{bad}`: {reason}");
                }
                other => panic!("expected InvalidArg for seed `{bad}`, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_ids_and_options_are_typed_errors() {
        assert!(matches!(
            parse(&["F99"]),
            Err(HarnessError::UnknownExperiment(id)) if id == "F99"
        ));
        assert!(matches!(
            parse(&["--frobnicate"]),
            Err(HarnessError::InvalidArg { .. })
        ));
        assert!(matches!(
            parse(&["--quick", "F4"]),
            Err(HarnessError::InvalidArg { what, .. }) if what == "--quick"
        ));
        assert!(matches!(
            parse(&["--fault-plan", "explode=1"]),
            Err(HarnessError::InvalidArg { .. })
        ));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), CliCommand::Help);
        assert_eq!(parse(&["-h"]).unwrap(), CliCommand::Help);
        assert!(USAGE.contains("--fault-plan") && USAGE.contains("--resume"));
    }

    #[test]
    fn id_string_round_trips_through_parse_id() {
        for id in all_experiment_ids() {
            let s = id_string(id);
            assert_eq!(parse_id(&s), Some(id), "{s} must round-trip");
        }
    }

    #[test]
    fn config_digest_is_stable_within_a_build() {
        assert_eq!(config_digest(), config_digest());
        assert!(config_digest().starts_with("fnv1a:"));
    }
}
