//! Crash-tolerant experiment pipeline — the glue binding the paper's
//! experiments to the verified-checkpoint lifecycle behind the
//! `experiments` binary.
//!
//! Every experiment is one *work unit* registered in a [`RunManifest`]
//! (`<out>/manifest.json`). The checkpoint state machine itself —
//! verify-or-compute, seal artifacts atomically (temp file + sync +
//! rename + parent-dir fsync), rewrite the manifest after every unit —
//! lives in [`rexec_harness::run_units`], generic over the
//! [`rexec_harness::Storage`] alphabet. This module supplies the
//! experiments as [`UnitPlan`]s, runs the lifecycle on the real
//! filesystem ([`StdFs`]), prints progress, and writes the
//! wall-clock-bearing `metrics.json`. The `rexec-check` model checker
//! drives the *same* lifecycle against a crash-simulating in-memory
//! filesystem, exhaustively crashing between every pair of storage
//! operations (DESIGN.md §10).
//!
//! On `--resume` the lifecycle re-verifies the digests of every sealed
//! unit (the paper's verification step `V` applied to the runner
//! itself): intact units are skipped, missing or silently-corrupted ones
//! are detected and recomputed. Transient I/O failures are retried under
//! capped exponential backoff, and `--fault-plan` injects deterministic
//! faults (fail the Nth write, corrupt the Nth artifact, kill after unit
//! K) so the recovery paths are exercised in-tree.

use crate::experiments::{
    all_experiment_ids, id_string, parse_id, quick_experiment_ids, run_experiment_seeded,
    ExperimentId, DEFAULT_SEED,
};
use rexec_harness::{
    atomic_write, run_units, FaultInjector, FaultPlan, HarnessError, LifecycleConfig,
    LifecycleEvent, RetryPolicy, RunManifest, StdFs, UnitOutput, UnitPlan, MANIFEST_NAME,
};
use serde::Value;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// What happened to one unit during a pipeline run (re-exported from the
/// lifecycle so existing `pipeline::UnitOutcome` call sites keep
/// working).
pub use rexec_harness::UnitDisposition as UnitOutcome;

/// Tool name recorded in manifests (resume refuses to cross tools).
pub const TOOL_NAME: &str = "experiments";

/// Filename of the end-of-run metrics/run report inside the output
/// directory. Unlike the manifest it contains wall-clock data and is not
/// part of the resumable state.
pub const METRICS_NAME: &str = "metrics.json";

/// A parsed `experiments` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Output directory for artifacts, manifest and metrics.
    pub out_dir: PathBuf,
    /// Base Monte Carlo seed.
    pub seed: u64,
    /// Re-verify sealed units from an existing manifest and skip them.
    pub resume: bool,
    /// Experiments to run, in order.
    pub ids: Vec<ExperimentId>,
    /// Deterministic fault schedule (defaults to no faults).
    pub fault: FaultPlan,
    /// Retry policy for artifact/manifest writes.
    pub retry: RetryPolicy,
    /// Also write the metrics snapshot in Prometheus text exposition
    /// format to this path (`--metrics-prom`).
    pub metrics_prom: Option<PathBuf>,
    /// Record a span timeline for the run and write it as Chrome
    /// trace-event JSON to this path (`--trace-chrome`; open in
    /// Perfetto).
    pub trace_chrome: Option<PathBuf>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            out_dir: PathBuf::from("results"),
            seed: DEFAULT_SEED,
            resume: false,
            ids: all_experiment_ids(),
            fault: FaultPlan::default(),
            retry: RetryPolicy::default(),
            metrics_prom: None,
            trace_chrome: None,
        }
    }
}

/// Per-run outcome summary, keyed by unit id in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSummary {
    /// `(unit id, outcome)` in execution order.
    pub units: Vec<(String, UnitOutcome)>,
    /// Path of the run manifest.
    pub manifest_path: PathBuf,
    /// Path of the metrics report.
    pub metrics_path: PathBuf,
}

/// Usage text of the `experiments` binary.
pub const USAGE: &str = "\
usage: experiments [--out DIR] [--seed N] [--resume] [--quick]
                   [--fault-plan SPEC] [--metrics-prom PATH]
                   [--trace-chrome PATH] [IDS...]

  IDS          experiment ids to run (default: all), e.g.
               T-rho8 T-rho3 T-rho1.775 T-rho1.4 F1..F14 X-thm2 X-validity
               X-mc X-mc-mixed X-ablation X-pairs X-robust X-pareto
               X-multiverif X-continuous X-heatmap X-laws
  --out        directory for artifacts + run manifest (default: results/)
  --seed       base seed for Monte Carlo experiments (default: 2024)
  --quick      fast subset (tables, F4, X-thm2, X-validity, X-laws) for
               smoke runs
  --resume     re-verify sealed units from <out>/manifest.json, skip the
               intact ones and recompute only what is missing or corrupt
  --fault-plan deterministic fault injection, comma-separated:
               fail-write=N, corrupt-artifact=N, kill-after-unit=K, seed=S
  --metrics-prom PATH  also write the metrics snapshot in Prometheus
               text exposition format
  --trace-chrome PATH  record a span timeline and write it as Chrome
               trace-event JSON (open in Perfetto / chrome://tracing)
";

/// Result of parsing the command line: run, or print help.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    /// Execute the pipeline.
    Run(Box<PipelineConfig>),
    /// Print [`USAGE`] and exit 0.
    Help,
}

fn invalid(what: &str, reason: String) -> HarnessError {
    HarnessError::InvalidArg {
        what: what.into(),
        reason,
    }
}

/// Parses the `experiments` command line (without the program name).
/// Numeric inputs are validated up front: a malformed or overflowing
/// `--seed` is rejected here with a clear message rather than surfacing
/// as downstream misbehavior.
pub fn parse_cli<I: IntoIterator<Item = String>>(raw: I) -> Result<CliCommand, HarnessError> {
    let mut cfg = PipelineConfig::default();
    let mut explicit_ids: Vec<ExperimentId> = vec![];
    let mut quick = false;
    let mut it = raw.into_iter().collect::<Vec<_>>().into_iter();
    let take = |opt: &str, it: &mut std::vec::IntoIter<String>| {
        it.next()
            .ok_or_else(|| invalid(opt, "requires a value".into()))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => return Ok(CliCommand::Help),
            "--resume" => cfg.resume = true,
            "--quick" => quick = true,
            "--out" => cfg.out_dir = PathBuf::from(take(&a, &mut it)?),
            "--seed" => {
                let v = take(&a, &mut it)?;
                cfg.seed = v.parse::<u64>().map_err(|_| {
                    invalid(
                        "--seed",
                        format!(
                            "`{v}` is not an unsigned 64-bit integer \
                             (0 ..= {}, no sign, no decimals)",
                            u64::MAX
                        ),
                    )
                })?;
            }
            "--fault-plan" => cfg.fault = FaultPlan::parse(&take(&a, &mut it)?)?,
            "--metrics-prom" => cfg.metrics_prom = Some(PathBuf::from(take(&a, &mut it)?)),
            "--trace-chrome" => cfg.trace_chrome = Some(PathBuf::from(take(&a, &mut it)?)),
            other if other.starts_with('-') => return Err(invalid(other, "unknown option".into())),
            other => match parse_id(other) {
                Some(id) => explicit_ids.push(id),
                None => return Err(HarnessError::UnknownExperiment(other.to_string())),
            },
        }
    }
    cfg.ids = match (quick, explicit_ids.is_empty()) {
        (true, false) => {
            return Err(invalid(
                "--quick",
                "cannot be combined with explicit experiment ids".into(),
            ))
        }
        (true, true) => quick_experiment_ids(),
        (false, false) => explicit_ids,
        (false, true) => all_experiment_ids(),
    };
    Ok(CliCommand::Run(Box::new(cfg)))
}

/// FNV-1a digest of every published configuration's parameters, so a
/// manifest records exactly which model constants produced its numbers
/// (and `--resume` refuses to mix numbers from different constants).
pub fn config_digest() -> String {
    let mut d = rexec_harness::Digest::new();
    for cfg in rexec_platforms::all_configurations() {
        d.update(format!("{cfg:?}").as_bytes());
    }
    d.finish()
}

fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Runs the pipeline: executes (or, on resume, verifies and skips) every
/// unit in `cfg.ids` through the storage-generic lifecycle
/// ([`rexec_harness::run_units`]) on the real filesystem, then writes
/// the metrics report. Progress and unit reports go to stdout.
///
/// The fault plan's `kill-after-unit=K` aborts with
/// [`HarnessError::KilledByFaultPlan`] after the K-th unit of *this
/// invocation* is sealed or skipped — the manifest is already on disk,
/// so a subsequent `--resume` continues from unit K+1.
pub fn run(cfg: &PipelineConfig) -> Result<PipelineSummary, HarnessError> {
    // The manifest wants per-experiment timings, so span timing is on.
    rexec_obs::set_spans_enabled(true);
    if cfg.trace_chrome.is_some() {
        // A Chrome trace was requested: record every span as a timeline
        // event (with parent nesting) on top of the aggregate timings.
        rexec_obs::set_timeline_enabled(true);
    }
    let injector = cfg.fault.injector();
    let started_unix = unix_secs();
    let run_started = Instant::now();

    let lifecycle_cfg = LifecycleConfig {
        out_dir: cfg.out_dir.clone(),
        tool: TOOL_NAME.into(),
        tool_version: env!("CARGO_PKG_VERSION").into(),
        seed: cfg.seed,
        config_digest: config_digest(),
        resume: cfg.resume,
        retry: cfg.retry,
    };
    let mut units: Vec<UnitPlan<'_>> = cfg
        .ids
        .iter()
        .map(|&id| {
            let key = id_string(id);
            let seed = cfg.seed;
            UnitPlan {
                id: key.clone(),
                compute: Box::new(move || {
                    let exp_started = Instant::now();
                    let r = run_experiment_seeded(id, seed)?;
                    debug_assert_eq!(r.id, key, "id_string must match the experiment's own id");
                    let wall_secs = exp_started.elapsed().as_secs_f64();
                    println!("================================================================");
                    println!(
                        "[{}] {}  ({:.2}s, {} points)",
                        r.id,
                        r.title,
                        wall_secs,
                        r.point_count()
                    );
                    println!("================================================================");
                    println!("{}", r.report);
                    let points = r.point_count() as u64;
                    let mut artifacts: Vec<(String, Vec<u8>)> = r
                        .datasets
                        .iter()
                        .map(|(name, csv)| (format!("{name}.csv"), csv.as_bytes().to_vec()))
                        .collect();
                    artifacts.push((format!("report_{key}.txt"), r.report.into_bytes()));
                    Ok(UnitOutput {
                        title: r.title,
                        points,
                        wall_secs,
                        artifacts,
                    })
                }),
            }
        })
        .collect();

    let out_dir = cfg.out_dir.clone();
    let outcome = run_units(
        &StdFs,
        &lifecycle_cfg,
        &mut units,
        &injector,
        &mut |event| match event {
            LifecycleEvent::ResumeLoaded { sealed_units } => {
                println!("resuming: manifest seals {sealed_units} unit(s), re-verifying digests");
            }
            LifecycleEvent::UnitStarting { id, disposition } => match disposition {
                UnitOutcome::SkippedVerified => {
                    println!("[{id}] verified intact, skipping (sealed by an earlier run)");
                }
                UnitOutcome::Recomputed(reason) => {
                    println!("[{id}] re-verification failed ({reason}); recomputing");
                }
                UnitOutcome::Computed => {}
            },
            LifecycleEvent::UnitSealed { unit, .. } => {
                for a in &unit.artifacts {
                    if a.name.ends_with(".csv") {
                        println!("  dataset written: {}", out_dir.join(&a.name).display());
                    }
                }
                println!();
            }
        },
    )?;

    let manifest_path = cfg.out_dir.join(MANIFEST_NAME);
    let metrics_path = cfg.out_dir.join(METRICS_NAME);
    let summary = PipelineSummary {
        units: outcome.units,
        manifest_path: manifest_path.clone(),
        metrics_path: metrics_path.clone(),
    };
    write_metrics(cfg, &outcome.manifest, started_unix, run_started, &injector)?;
    println!("run manifest written: {}", manifest_path.display());
    println!("run metrics written: {}", metrics_path.display());
    if let Some(path) = &cfg.metrics_prom {
        let text = rexec_obs::prometheus_text(rexec_obs::global());
        atomic_write(path, text.as_bytes(), &cfg.retry, &injector)?;
        println!("prometheus metrics written: {}", path.display());
    }
    if let Some(path) = &cfg.trace_chrome {
        let json = rexec_obs::chrome_trace_json();
        atomic_write(path, json.as_bytes(), &cfg.retry, &injector)?;
        println!("chrome trace written: {}", path.display());
    }
    Ok(summary)
}

/// Writes `<out>/metrics.json`: run metadata, per-unit manifest entries
/// and the full metrics-registry snapshot. Wall-clock values live here —
/// not in the resumable manifest state.
fn write_metrics(
    cfg: &PipelineConfig,
    manifest: &RunManifest,
    started_unix: u64,
    run_started: Instant,
    injector: &FaultInjector,
) -> Result<(), HarnessError> {
    use serde::Serialize as _;
    let mut run = BTreeMap::new();
    run.insert("tool".to_string(), TOOL_NAME.to_value());
    run.insert("version".to_string(), env!("CARGO_PKG_VERSION").to_value());
    run.insert("seed".to_string(), cfg.seed.to_value());
    run.insert(
        "config_digest".to_string(),
        manifest.config_digest.to_value(),
    );
    run.insert("resumed".to_string(), cfg.resume.to_value());
    run.insert("started_unix_secs".to_string(), started_unix.to_value());
    run.insert("finished_unix_secs".to_string(), unix_secs().to_value());
    run.insert(
        "wall_secs".to_string(),
        run_started.elapsed().as_secs_f64().to_value(),
    );

    let experiments: Vec<Value> = manifest
        .units
        .iter()
        .map(|u| {
            let mut entry = BTreeMap::new();
            entry.insert("id".to_string(), u.id.to_value());
            entry.insert("title".to_string(), u.title.to_value());
            entry.insert("wall_secs".to_string(), u.wall_secs.to_value());
            entry.insert("points".to_string(), u.points.to_value());
            entry.insert(
                "artifacts".to_string(),
                Value::Array(u.artifacts.iter().map(|a| a.name.to_value()).collect()),
            );
            Value::Object(entry)
        })
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert("run".to_string(), Value::Object(run));
    doc.insert("experiments".to_string(), Value::Array(experiments));
    doc.insert("metrics".to_string(), rexec_obs::global().snapshot_value());

    let json = serde_json::to_string_pretty(&Value::Object(doc))
        .expect("metrics document serializes infallibly");
    atomic_write(
        &cfg.out_dir.join(METRICS_NAME),
        json.as_bytes(),
        &cfg.retry,
        injector,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliCommand, HarnessError> {
        parse_cli(args.iter().map(|s| s.to_string()))
    }

    fn parsed_cfg(args: &[&str]) -> PipelineConfig {
        match parse(args).unwrap() {
            CliCommand::Run(cfg) => *cfg,
            CliCommand::Help => panic!("expected a run command"),
        }
    }

    #[test]
    fn defaults_cover_the_full_suite() {
        let cfg = parsed_cfg(&[]);
        assert_eq!(cfg.out_dir, PathBuf::from("results"));
        assert_eq!(cfg.seed, DEFAULT_SEED);
        assert!(!cfg.resume);
        assert_eq!(cfg.ids, all_experiment_ids());
        assert_eq!(cfg.fault, FaultPlan::default());
    }

    #[test]
    fn quick_resume_and_fault_plan_parse() {
        let cfg = parsed_cfg(&[
            "--quick",
            "--resume",
            "--out",
            "/tmp/r",
            "--seed",
            "7",
            "--fault-plan",
            "kill-after-unit=2,seed=3",
        ]);
        assert!(cfg.resume);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.ids, quick_experiment_ids());
        assert_eq!(cfg.fault.kill_after_unit, Some(2));
        assert_eq!(cfg.fault.seed, 3);
    }

    #[test]
    fn exporter_paths_parse() {
        let cfg = parsed_cfg(&[
            "--metrics-prom",
            "/tmp/m.prom",
            "--trace-chrome",
            "/tmp/t.trace.json",
        ]);
        assert_eq!(cfg.metrics_prom, Some(PathBuf::from("/tmp/m.prom")));
        assert_eq!(cfg.trace_chrome, Some(PathBuf::from("/tmp/t.trace.json")));
        assert!(parse(&["--trace-chrome"]).is_err());
        assert!(USAGE.contains("--metrics-prom") && USAGE.contains("--trace-chrome"));
    }

    #[test]
    fn explicit_ids_accept_both_spellings() {
        let cfg = parsed_cfg(&["T-rho1.775", "T-rho1_4", "F9", "X-heatmap"]);
        assert_eq!(
            cfg.ids,
            vec![
                ExperimentId::TableRho(1.775),
                ExperimentId::TableRho(1.4),
                ExperimentId::FigureConfig(9),
                ExperimentId::Heatmap,
            ]
        );
    }

    #[test]
    fn seed_overflow_is_rejected_up_front_with_a_clear_message() {
        for bad in ["18446744073709551616", "-1", "1.5", "0x10", "abc"] {
            let err = parse(&["--seed", bad]).unwrap_err();
            match err {
                HarnessError::InvalidArg { what, reason } => {
                    assert_eq!(what, "--seed");
                    assert!(reason.contains(bad), "reason must quote `{bad}`: {reason}");
                }
                other => panic!("expected InvalidArg for seed `{bad}`, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_ids_and_options_are_typed_errors() {
        assert!(matches!(
            parse(&["F99"]),
            Err(HarnessError::UnknownExperiment(id)) if id == "F99"
        ));
        assert!(matches!(
            parse(&["--frobnicate"]),
            Err(HarnessError::InvalidArg { .. })
        ));
        assert!(matches!(
            parse(&["--quick", "F4"]),
            Err(HarnessError::InvalidArg { what, .. }) if what == "--quick"
        ));
        assert!(matches!(
            parse(&["--fault-plan", "explode=1"]),
            Err(HarnessError::InvalidArg { .. })
        ));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), CliCommand::Help);
        assert_eq!(parse(&["-h"]).unwrap(), CliCommand::Help);
        assert!(USAGE.contains("--fault-plan") && USAGE.contains("--resume"));
    }

    #[test]
    fn id_string_round_trips_through_parse_id() {
        for id in all_experiment_ids() {
            let s = id_string(id);
            assert_eq!(parse_id(&s), Some(id), "{s} must round-trip");
        }
    }

    #[test]
    fn config_digest_is_stable_within_a_build() {
        assert_eq!(config_digest(), config_digest());
        assert!(config_digest().starts_with("fnv1a:"));
    }
}
