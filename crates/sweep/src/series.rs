//! CSV / gnuplot export of figure series.

use crate::figure::{FigureSeries, SolutionPoint};
use std::fmt::Write as _;

fn push_solution(line: &mut String, sol: Option<&SolutionPoint>) {
    match sol {
        Some(s) => {
            let _ = write!(
                line,
                ",{},{},{:.6},{:.6}",
                s.sigma1, s.sigma2, s.w_opt, s.energy_overhead
            );
        }
        None => line.push_str(",,,,"),
    }
}

/// Renders a figure series as CSV with the columns
/// `x, sigma1, sigma2, w_two, e_two, sigma, sigma(dup), w_one, e_one`
/// (one-speed columns repeat σ twice to keep the schema uniform).
/// Infeasible points have empty cells.
pub fn to_csv(series: &FigureSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — sweep of {} (rho = {})",
        series.config_name,
        series.param.label(),
        series.rho
    );
    out.push_str("x,sigma1,sigma2,w_two,e_two,sigma1_one,sigma2_one,w_one,e_one\n");
    for p in &series.points {
        let mut line = format!("{}", p.x);
        push_solution(&mut line, p.two_speed.as_ref());
        push_solution(&mut line, p.one_speed.as_ref());
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders the series as whitespace-separated columns for gnuplot, with
/// `?` for missing (infeasible) values — the format the paper's plots
/// would consume.
pub fn to_gnuplot(series: &FigureSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} {} sweep: x sigma1 sigma2 Wopt2 E2 sigma Wopt1 E1",
        series.config_name,
        series.param.label()
    );
    for p in &series.points {
        let two = p.two_speed;
        let one = p.one_speed;
        let fmt = |v: Option<f64>| v.map_or("?".to_string(), |x| format!("{x:.6}"));
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {}",
            p.x,
            fmt(two.map(|s| s.sigma1)),
            fmt(two.map(|s| s.sigma2)),
            fmt(two.map(|s| s.w_opt)),
            fmt(two.map(|s| s.energy_overhead)),
            fmt(one.map(|s| s.sigma1)),
            fmt(one.map(|s| s.w_opt)),
            fmt(one.map(|s| s.energy_overhead)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::{sweep_figure, SweepParam};
    use crate::grid::Grid;
    use rexec_platforms::{configuration, ConfigId, PlatformId, ProcessorId};

    fn series() -> FigureSeries {
        let cfg = configuration(ConfigId {
            platform: PlatformId::Hera,
            processor: ProcessorId::IntelXScale,
        });
        sweep_figure(&cfg, SweepParam::Rho, &Grid::explicit(vec![1.0, 3.0]))
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = series();
        let csv = to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("# Hera/XScale"));
        assert!(lines[1].starts_with("x,sigma1"));
        assert_eq!(lines.len(), 2 + 2);
        // ρ = 1 infeasible → empty cells; ρ = 3 feasible → numbers.
        assert!(lines[2].starts_with("1,,,"));
        assert!(lines[3].starts_with("3,0.4,0.4,"));
    }

    #[test]
    fn gnuplot_marks_missing_with_question_marks() {
        let s = series();
        let g = to_gnuplot(&s);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[1].contains('?'));
        assert!(!lines[2].contains('?'));
    }
}
