//! Regenerates every table and figure of the paper through the
//! crash-tolerant pipeline in [`rexec_sweep::pipeline`].
//!
//! Run `experiments --help` for the full CLI. Every run seals its
//! artifacts in `<out>/manifest.json` (atomic writes + content digests);
//! `--resume` re-verifies that manifest and recomputes only what is
//! missing or corrupt, and `--fault-plan` injects deterministic write
//! failures, corruptions and kills for crash-recovery testing.
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error, 137 killed
//! by an injected `kill-after-unit` fault.

use rexec_sweep::pipeline::{parse_cli, run, CliCommand, USAGE};

fn main() {
    let cmd = match parse_cli(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(e.exit_code());
        }
    };
    let cfg = match cmd {
        CliCommand::Help => {
            println!("{USAGE}");
            return;
        }
        CliCommand::Run(cfg) => *cfg,
    };
    if let Err(e) = run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
