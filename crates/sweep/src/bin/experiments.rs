//! Regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--out DIR] [--seed N] [IDS...]
//!
//!   IDS      experiment ids to run (default: all), e.g.
//!            T-rho3 F1 F2 ... F14 X-thm2 X-validity X-mc X-ablation
//!   --out    directory for CSV datasets (default: results/)
//!   --seed   base seed for Monte Carlo experiments (default: 2024)
//! ```
//!
//! Besides the CSV datasets, every run writes `<out>/metrics.json`: a
//! run manifest with per-experiment wall time and point counts, the run
//! metadata (seed, configuration digest, timestamps) and the full
//! metrics-registry snapshot.

use rexec_sweep::experiments::{
    all_experiment_ids, run_experiment_seeded, ExperimentId, DEFAULT_SEED,
};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn parse_id(s: &str) -> Option<ExperimentId> {
    match s {
        "T-rho8" => Some(ExperimentId::TableRho(8.0)),
        "T-rho3" => Some(ExperimentId::TableRho(3.0)),
        "T-rho1_775" | "T-rho1.775" => Some(ExperimentId::TableRho(1.775)),
        "T-rho1_4" | "T-rho1.4" => Some(ExperimentId::TableRho(1.4)),
        "F1" => Some(ExperimentId::Figure1),
        "X-thm2" => Some(ExperimentId::Theorem2),
        "X-validity" => Some(ExperimentId::ValidityWindow),
        "X-mc" => Some(ExperimentId::MonteCarloValidation),
        "X-ablation" => Some(ExperimentId::ExactVsFirstOrder),
        "X-pairs" => Some(ExperimentId::OptimalPairRegions),
        "X-robust" => Some(ExperimentId::LambdaRobustness),
        "X-pareto" => Some(ExperimentId::Pareto),
        "X-multiverif" => Some(ExperimentId::MultiVerification),
        "X-continuous" => Some(ExperimentId::ContinuousSpeeds),
        "X-heatmap" => Some(ExperimentId::Heatmap),
        _ => {
            let n: u8 = s.strip_prefix('F')?.parse().ok()?;
            match n {
                2..=7 => Some(ExperimentId::Figure(n)),
                8..=14 => Some(ExperimentId::FigureConfig(n)),
                _ => None,
            }
        }
    }
}

fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// FNV-1a digest of every published configuration's parameters, so a
/// manifest records exactly which model constants produced its numbers.
fn config_digest() -> String {
    let mut hash: u64 = 0xcbf29ce484222325;
    for cfg in rexec_platforms::all_configurations() {
        for byte in format!("{cfg:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    format!("fnv1a:{hash:016x}")
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut seed = DEFAULT_SEED;
    let mut ids: Vec<ExperimentId> = vec![];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => die("--out needs a directory"),
            },
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => seed = n,
                Some(Err(_)) => die("--seed needs an unsigned integer"),
                None => die("--seed needs a value"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--out DIR] [--seed N] [IDS...]\n\
                     ids: T-rho8 T-rho3 T-rho1.775 T-rho1.4 F1..F14 \
                     X-thm2 X-validity X-mc X-ablation X-pairs X-robust X-pareto X-multiverif X-continuous X-heatmap"
                );
                return;
            }
            other => match parse_id(other) {
                Some(id) => ids.push(id),
                None => {
                    eprintln!("unknown experiment id: {other}");
                    std::process::exit(2);
                }
            },
        }
    }
    if ids.is_empty() {
        ids = all_experiment_ids();
    }

    // The manifest wants per-experiment timings, so span timing is on.
    rexec_obs::set_spans_enabled(true);
    let started_unix = unix_secs();
    let run_started = Instant::now();

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mut manifest_experiments: Vec<Value> = vec![];
    for id in ids {
        let exp_started = Instant::now();
        let r = run_experiment_seeded(id, seed);
        let wall_secs = exp_started.elapsed().as_secs_f64();
        println!("================================================================");
        println!(
            "[{}] {}  ({:.2}s, {} points)",
            r.id,
            r.title,
            wall_secs,
            r.point_count()
        );
        println!("================================================================");
        println!("{}", r.report);
        let mut dataset_names: Vec<Value> = vec![];
        for (name, csv) in &r.datasets {
            let path = out_dir.join(format!("{name}.csv"));
            std::fs::write(&path, csv).expect("write dataset");
            println!("  dataset written: {}", path.display());
            dataset_names.push(format!("{name}.csv").to_value());
        }
        println!();

        let mut entry = BTreeMap::new();
        entry.insert("id".to_string(), r.id.to_value());
        entry.insert("title".to_string(), r.title.to_value());
        entry.insert("wall_secs".to_string(), wall_secs.to_value());
        entry.insert("points".to_string(), (r.point_count() as u64).to_value());
        entry.insert("datasets".to_string(), Value::Array(dataset_names));
        manifest_experiments.push(Value::Object(entry));
    }

    let mut run = BTreeMap::new();
    run.insert("tool".to_string(), "experiments".to_value());
    run.insert("version".to_string(), env!("CARGO_PKG_VERSION").to_value());
    run.insert("seed".to_string(), seed.to_value());
    run.insert("config_digest".to_string(), config_digest().to_value());
    run.insert("started_unix_secs".to_string(), started_unix.to_value());
    run.insert("finished_unix_secs".to_string(), unix_secs().to_value());
    run.insert(
        "wall_secs".to_string(),
        run_started.elapsed().as_secs_f64().to_value(),
    );

    let mut manifest = BTreeMap::new();
    manifest.insert("run".to_string(), Value::Object(run));
    manifest.insert(
        "experiments".to_string(),
        Value::Array(manifest_experiments),
    );
    manifest.insert("metrics".to_string(), rexec_obs::global().snapshot_value());

    let manifest_path = out_dir.join("metrics.json");
    let json = serde_json::to_string_pretty(&Value::Object(manifest))
        .expect("manifest serializes infallibly");
    std::fs::write(&manifest_path, json).expect("write run manifest");
    println!("run manifest written: {}", manifest_path.display());
}
