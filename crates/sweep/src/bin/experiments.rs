//! Regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--out DIR] [IDS...]
//!
//!   IDS      experiment ids to run (default: all), e.g.
//!            T-rho3 F1 F2 ... F14 X-thm2 X-validity X-mc X-ablation
//!   --out    directory for CSV datasets (default: results/)
//! ```

use rexec_sweep::experiments::{all_experiment_ids, run_experiment, ExperimentId};
use std::path::PathBuf;

fn parse_id(s: &str) -> Option<ExperimentId> {
    match s {
        "T-rho8" => Some(ExperimentId::TableRho(8.0)),
        "T-rho3" => Some(ExperimentId::TableRho(3.0)),
        "T-rho1_775" | "T-rho1.775" => Some(ExperimentId::TableRho(1.775)),
        "T-rho1_4" | "T-rho1.4" => Some(ExperimentId::TableRho(1.4)),
        "F1" => Some(ExperimentId::Figure1),
        "X-thm2" => Some(ExperimentId::Theorem2),
        "X-validity" => Some(ExperimentId::ValidityWindow),
        "X-mc" => Some(ExperimentId::MonteCarloValidation),
        "X-ablation" => Some(ExperimentId::ExactVsFirstOrder),
        "X-pairs" => Some(ExperimentId::OptimalPairRegions),
        "X-robust" => Some(ExperimentId::LambdaRobustness),
        "X-pareto" => Some(ExperimentId::Pareto),
        "X-multiverif" => Some(ExperimentId::MultiVerification),
        "X-continuous" => Some(ExperimentId::ContinuousSpeeds),
        "X-heatmap" => Some(ExperimentId::Heatmap),
        _ => {
            let n: u8 = s.strip_prefix('F')?.parse().ok()?;
            match n {
                2..=7 => Some(ExperimentId::Figure(n)),
                8..=14 => Some(ExperimentId::FigureConfig(n)),
                _ => None,
            }
        }
    }
}

fn main() {
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<ExperimentId> = vec![];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--out DIR] [IDS...]\n\
                     ids: T-rho8 T-rho3 T-rho1.775 T-rho1.4 F1..F14 \
                     X-thm2 X-validity X-mc X-ablation X-pairs X-robust X-pareto X-multiverif X-continuous X-heatmap"
                );
                return;
            }
            other => match parse_id(other) {
                Some(id) => ids.push(id),
                None => {
                    eprintln!("unknown experiment id: {other}");
                    std::process::exit(2);
                }
            },
        }
    }
    if ids.is_empty() {
        ids = all_experiment_ids();
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for id in ids {
        let r = run_experiment(id);
        println!("================================================================");
        println!("[{}] {}", r.id, r.title);
        println!("================================================================");
        println!("{}", r.report);
        for (name, csv) in &r.datasets {
            let path = out_dir.join(format!("{name}.csv"));
            std::fs::write(&path, csv).expect("write dataset");
            println!("  dataset written: {}", path.display());
        }
        println!();
    }
}
