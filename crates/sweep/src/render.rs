//! Minimal fixed-width ASCII table rendering.

/// A simple ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` with `digits` decimals, trimming trailing zeros
/// (`0.4` not `0.400`).
pub fn fmt_num(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]).row(vec!["100", "20000"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    bb"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[3], "100  20000");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_mismatched_row() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn fmt_num_trims_zeros() {
        assert_eq!(fmt_num(0.4, 3), "0.4");
        assert_eq!(fmt_num(2764.0, 0), "2764");
        assert_eq!(fmt_num(1.775, 3), "1.775");
        assert_eq!(fmt_num(3.0, 2), "3");
    }
}
