//! The §4.2 tables: best `σ₂`, `Wopt` and energy overhead per `σ₁`.

use crate::render::{fmt_num, Table};
use rexec_core::SpeedPairReport;
use rexec_platforms::Configuration;
use serde::{Deserialize, Serialize};

/// One of the paper's §4.2 tables for a configuration and bound `ρ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RhoTable {
    /// Configuration name (the paper uses Hera/XScale).
    pub config_name: String,
    /// Performance bound of this table.
    pub rho: f64,
    /// Per-σ₁ rows (dashes where infeasible).
    pub rows: Vec<SpeedPairReport>,
}

impl RhoTable {
    /// The overall best row (bold in the paper): the feasible row with the
    /// smallest energy overhead.
    pub fn best(&self) -> Option<&SpeedPairReport> {
        self.rows
            .iter()
            .filter(|r| r.best.is_some())
            .min_by(|a, b| {
                let ea = a.best.unwrap().energy_overhead;
                let eb = b.best.unwrap().energy_overhead;
                ea.partial_cmp(&eb).expect("finite overheads")
            })
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let best_sigma1 = self.best().map(|r| r.sigma1);
        let mut t = Table::new(vec!["sigma1", "best sigma2", "Wopt", "E(Wopt)/Wopt", ""]);
        for r in &self.rows {
            let marker = if Some(r.sigma1) == best_sigma1 {
                "<= best"
            } else {
                ""
            };
            match r.best {
                // The paper truncates (3639.76 → 3639, 1625.73 → 1625).
                Some(sol) => t.row(vec![
                    fmt_num(r.sigma1, 2),
                    fmt_num(sol.sigma2, 2),
                    fmt_num(sol.w_opt.trunc(), 0),
                    fmt_num(sol.energy_overhead.trunc(), 0),
                    marker.to_string(),
                ]),
                None => t.row(vec![
                    fmt_num(r.sigma1, 2),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    String::new(),
                ]),
            };
        }
        format!(
            "{} — rho = {}\n{}",
            self.config_name,
            fmt_num(self.rho, 3),
            t.render()
        )
    }
}

/// Computes the §4.2 table for a configuration and bound.
pub fn rho_table(cfg: &Configuration, rho: f64) -> RhoTable {
    let solver = cfg.solver().expect("valid configuration");
    RhoTable {
        config_name: cfg.name(),
        rho,
        rows: solver.per_sigma1(rho),
    }
}

/// The four bounds the paper tabulates.
pub const PAPER_RHOS: [f64; 4] = [8.0, 3.0, 1.775, 1.4];

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_platforms::{configuration, ConfigId, PlatformId, ProcessorId};

    fn hera_xscale() -> Configuration {
        configuration(ConfigId {
            platform: PlatformId::Hera,
            processor: ProcessorId::IntelXScale,
        })
    }

    #[test]
    fn table_rho3_matches_paper() {
        let t = rho_table(&hera_xscale(), 3.0);
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows[0].best.is_none(), "σ1 = 0.15 infeasible at ρ = 3");
        let best = t.best().unwrap();
        assert_eq!(best.sigma1, 0.4);
        let sol = best.best.unwrap();
        assert_eq!(sol.sigma2, 0.4);
        assert!((sol.w_opt - 2764.0).abs() < 1.0);
        assert!((sol.energy_overhead - 416.0).abs() < 1.0);
    }

    #[test]
    fn rendered_table_contains_paper_values() {
        let t = rho_table(&hera_xscale(), 3.0);
        let s = t.render();
        assert!(s.contains("Hera/XScale"));
        assert!(s.contains("2764"));
        assert!(s.contains("416"));
        assert!(s.contains('-'), "infeasible row renders as dashes");
        assert!(s.contains("<= best"));
    }

    #[test]
    fn all_paper_rhos_produce_tables() {
        for rho in PAPER_RHOS {
            let t = rho_table(&hera_xscale(), rho);
            assert_eq!(t.rows.len(), 5, "rho = {rho}");
            assert!(t.best().is_some(), "rho = {rho} must have a best row");
        }
    }

    #[test]
    fn rho_1_4_leaves_only_fast_sigma1() {
        let t = rho_table(&hera_xscale(), 1.4);
        let feasible: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r.best.is_some())
            .map(|r| r.sigma1)
            .collect();
        assert_eq!(feasible, vec![0.8, 1.0]);
    }
}
