//! Parameter sweeps reproducing Figures 2–14.
//!
//! Each figure plots, against one swept parameter, the optimal solution of
//! BiCrit for (a) the two-speed model and (b) the one-speed baseline
//! (σ₂ = σ₁): the chosen speeds, the optimal pattern size `Wopt`, and the
//! energy overhead `E(Wopt)/Wopt`. Everything else stays at the paper
//! defaults (`ρ = 3`, `R = C`, `Pio = κσ_min³`).

use crate::grid::Grid;
use rayon::prelude::*;
use rexec_core::{BiCritSolution, BiCritSolver, SilentModel};
use rexec_platforms::Configuration;
use serde::{Deserialize, Serialize};

/// Which model parameter a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepParam {
    /// Checkpoint time `C` (keeping `R = C`).
    Checkpoint,
    /// Verification time `V` (at full speed).
    Verification,
    /// Silent-error rate `λ`.
    Lambda,
    /// Performance bound `ρ`.
    Rho,
    /// Static power `Pidle`.
    PIdle,
    /// Dynamic I/O power `Pio`.
    PIo,
}

impl SweepParam {
    /// All six sweeps, in the order the paper presents them (Figures 2–7).
    pub const ALL: [SweepParam; 6] = [
        SweepParam::Checkpoint,
        SweepParam::Verification,
        SweepParam::Lambda,
        SweepParam::Rho,
        SweepParam::PIdle,
        SweepParam::PIo,
    ];

    /// Axis label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SweepParam::Checkpoint => "C",
            SweepParam::Verification => "V",
            SweepParam::Lambda => "lambda",
            SweepParam::Rho => "rho",
            SweepParam::PIdle => "Pidle",
            SweepParam::PIo => "Pio",
        }
    }

    /// The paper's sweep grid for this parameter.
    ///
    /// `lambda_hi` bounds the λ sweep: Figures 4, 8, 9 and 12 sweep up to
    /// `1e-2`, while the Coastal-based Figures 10, 11, 13 and 14 stop at
    /// `1e-3` (the larger checkpoint costs make higher rates infeasible).
    pub fn paper_grid(self, lambda_hi: f64) -> Grid {
        match self {
            SweepParam::Checkpoint | SweepParam::Verification => Grid::linear(0.0, 5000.0, 51),
            SweepParam::Lambda => Grid::log(1e-6, lambda_hi, 49),
            SweepParam::Rho => Grid::linear(1.0, 3.5, 51),
            SweepParam::PIdle | SweepParam::PIo => Grid::linear(0.0, 5000.0, 51),
        }
    }
}

impl std::fmt::Display for SweepParam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One solved optimum (two-speed or one-speed) at a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolutionPoint {
    /// First-execution speed.
    pub sigma1: f64,
    /// Re-execution speed.
    pub sigma2: f64,
    /// Optimal pattern size.
    pub w_opt: f64,
    /// First-order energy overhead at the optimum.
    pub energy_overhead: f64,
    /// First-order time overhead at the optimum.
    pub time_overhead: f64,
}

impl From<BiCritSolution> for SolutionPoint {
    fn from(s: BiCritSolution) -> Self {
        SolutionPoint {
            sigma1: s.sigma1,
            sigma2: s.sigma2,
            w_opt: s.w_opt,
            energy_overhead: s.energy_overhead,
            time_overhead: s.time_overhead,
        }
    }
}

/// One x-position of a figure: the two optima (if feasible).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigurePoint {
    /// Swept parameter value.
    pub x: f64,
    /// Two-speed optimum, `None` if infeasible at this `x`.
    pub two_speed: Option<SolutionPoint>,
    /// One-speed optimum (σ₂ = σ₁ forced), `None` if infeasible.
    pub one_speed: Option<SolutionPoint>,
}

impl FigurePoint {
    /// Relative energy saving of two speeds over one speed at this point.
    pub fn saving(&self) -> Option<f64> {
        match (self.two_speed, self.one_speed) {
            (Some(two), Some(one)) => Some(1.0 - two.energy_overhead / one.energy_overhead),
            _ => None,
        }
    }
}

/// A full figure data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Configuration name, e.g. "Atlas/Crusoe".
    pub config_name: String,
    /// Which parameter is swept.
    pub param: SweepParam,
    /// Performance bound in effect (the swept value for a ρ sweep).
    pub rho: f64,
    /// The sweep data.
    pub points: Vec<FigurePoint>,
}

impl FigureSeries {
    /// Largest two-over-one-speed energy saving across the series.
    pub fn max_saving(&self) -> Option<f64> {
        self.points
            .iter()
            .filter_map(FigurePoint::saving)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// Number of points where the two-speed optimum actually uses two
    /// distinct speeds.
    pub fn two_distinct_speed_points(&self) -> usize {
        self.points
            .iter()
            .filter_map(|p| p.two_speed)
            .filter(|s| s.sigma1 != s.sigma2)
            .count()
    }

    /// Number of feasible points.
    pub fn feasible_points(&self) -> usize {
        self.points.iter().filter(|p| p.two_speed.is_some()).count()
    }
}

/// Applies a sweep value to the configuration's model, returning the
/// solver and the bound `ρ` in effect.
pub fn apply_param(cfg: &Configuration, param: SweepParam, x: f64) -> (BiCritSolver, f64) {
    let base: SilentModel = cfg.silent_model().expect("valid configuration");
    let speeds = cfg.speed_set().expect("valid speeds");
    let mut rho = Configuration::DEFAULT_RHO;
    let model = match param {
        SweepParam::Checkpoint => base.with_costs(base.costs.with_checkpoint(x)),
        SweepParam::Verification => base.with_costs(base.costs.with_verification(x)),
        SweepParam::Lambda => base.with_lambda(x),
        SweepParam::Rho => {
            rho = x;
            base
        }
        SweepParam::PIdle => base.with_power(base.power.with_p_idle(x)),
        SweepParam::PIo => base.with_power(base.power.with_p_io(x)),
    };
    (BiCritSolver::new(model, speeds), rho)
}

/// Sweeps one parameter over a grid for a configuration, producing the
/// figure's data series (two-speed and one-speed optima at each point).
///
/// Evaluation is parallel across grid points (contiguous index-ordered
/// chunks), so the series — and any CSV rendered from it — is
/// byte-identical to a serial run for every `RAYON_NUM_THREADS`. A ρ
/// sweep leaves the model untouched, so it builds the solver's candidate
/// table once and batches the whole grid through
/// [`BiCritSolver::solve_many_into`] instead of rebuilding per point,
/// with both solution buffers filled in place.
pub fn sweep_figure(cfg: &Configuration, param: SweepParam, grid: &Grid) -> FigureSeries {
    let _timer = rexec_obs::span!("sweep.figure");
    let points: Vec<FigurePoint> = if param == SweepParam::Rho {
        let (solver, _) = apply_param(cfg, param, Configuration::DEFAULT_RHO);
        let mut two = Vec::new();
        let mut one = Vec::new();
        solver.solve_many_into(grid.values(), &mut two);
        solver.solve_one_speed_many_into(grid.values(), &mut one);
        grid.values()
            .iter()
            .zip(two)
            .zip(one)
            .map(|((&x, t), o)| FigurePoint {
                x,
                two_speed: t.map(Into::into),
                one_speed: o.map(Into::into),
            })
            .collect()
    } else {
        grid.values()
            .to_vec()
            .into_par_iter()
            .map(|x| {
                let (solver, rho) = apply_param(cfg, param, x);
                FigurePoint {
                    x,
                    two_speed: solver.solve(rho).map(Into::into),
                    one_speed: solver.solve_one_speed(rho).map(Into::into),
                }
            })
            .collect()
    };
    rexec_obs::counter!("sweep.figure_points").add(points.len() as u64);
    FigureSeries {
        config_name: cfg.name(),
        param,
        rho: Configuration::DEFAULT_RHO,
        points,
    }
}

/// Sweeps one parameter using the paper's grid for that parameter.
pub fn sweep_figure_paper_grid(
    cfg: &Configuration,
    param: SweepParam,
    lambda_hi: f64,
) -> FigureSeries {
    sweep_figure(cfg, param, &param.paper_grid(lambda_hi))
}

/// The paper's λ-sweep upper bound for a configuration: `1e-3` for the
/// Coastal-based platforms (Figures 10, 11, 13, 14), `1e-2` otherwise.
pub fn lambda_hi_for(cfg: &Configuration) -> f64 {
    use rexec_platforms::PlatformId;
    match cfg.platform.id {
        PlatformId::Coastal | PlatformId::CoastalSsd => 1e-3,
        PlatformId::Hera | PlatformId::Atlas => 1e-2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_platforms::{all_configurations, configuration, ConfigId};
    use rexec_platforms::{PlatformId, ProcessorId};

    fn atlas_crusoe() -> Configuration {
        configuration(ConfigId {
            platform: PlatformId::Atlas,
            processor: ProcessorId::TransmetaCrusoe,
        })
    }

    #[test]
    fn figure2_checkpoint_sweep_shapes() {
        // Figure 2 (Atlas/Crusoe, C sweep): Wopt grows with C; the optimal
        // pair starts at (0.45, 0.45) for small C.
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::Checkpoint,
            &Grid::linear(10.0, 5000.0, 25),
        );
        assert_eq!(s.feasible_points(), 25);
        let first = s.points.first().unwrap().two_speed.unwrap();
        assert_eq!((first.sigma1, first.sigma2), (0.45, 0.45));
        // Wopt is non-decreasing in C while the speed pair stays the same
        // (when the pair adapts, Wopt legitimately jumps — the kinks in
        // the paper's middle panel).
        for pair in s.points.windows(2) {
            let (a, b) = (pair[0].two_speed.unwrap(), pair[1].two_speed.unwrap());
            if (a.sigma1, a.sigma2) == (b.sigma1, b.sigma2) {
                assert!(
                    b.w_opt >= a.w_opt * 0.999,
                    "Wopt must grow with C for a fixed pair: {a:?} -> {b:?}"
                );
            }
        }
        // Energy overhead grows with C.
        let es: Vec<f64> = s
            .points
            .iter()
            .map(|p| p.two_speed.unwrap().energy_overhead)
            .collect();
        assert!(es.last().unwrap() > es.first().unwrap());
    }

    #[test]
    fn figure2_reaches_two_distinct_speeds_at_large_c() {
        // Paper: the pair reaches (0.45, 0.8) by C = 5000.
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::Checkpoint,
            &Grid::explicit(vec![5000.0]),
        );
        let sol = s.points[0].two_speed.unwrap();
        assert_eq!(sol.sigma1, 0.45, "σ1 at C = 5000");
        assert_eq!(sol.sigma2, 0.8, "σ2 at C = 5000");
        assert!(s.points[0].saving().unwrap() > 0.0);
    }

    #[test]
    fn figure3_verification_sweep_stabilizes_at_06_045() {
        // Paper: the pair stabilizes at (0.6, 0.45) as V → 5000.
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::Verification,
            &Grid::explicit(vec![5000.0]),
        );
        let sol = s.points[0].two_speed.unwrap();
        assert_eq!((sol.sigma1, sol.sigma2), (0.6, 0.45));
    }

    #[test]
    fn figure4_lambda_sweep_speeds_increase_and_w_decreases() {
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::Lambda,
            &Grid::log(1e-6, 1e-2, 25),
        );
        // ρ = 3 becomes infeasible beyond λ ≈ 1.2e-3 (ρ_min of the fastest
        // pair crosses 3), so the series is truncated like the paper's.
        let feasible: Vec<&FigurePoint> =
            s.points.iter().filter(|p| p.two_speed.is_some()).collect();
        assert!(feasible.len() >= 15, "feasible points: {}", feasible.len());
        assert!(
            feasible.len() < s.points.len(),
            "the top of the λ sweep must be infeasible at ρ = 3"
        );
        let first = feasible.first().unwrap().two_speed.unwrap();
        let last = feasible.last().unwrap().two_speed.unwrap();
        assert!(last.w_opt < first.w_opt, "Wopt must shrink with λ");
        assert!(
            last.sigma1 >= first.sigma1 && last.sigma2 >= first.sigma2,
            "speeds must rise with λ"
        );
        // At the top of the sweep σ1 is maximal and σ2 is near-maximal
        // (paper Fig 4; exactly at the feasibility edge a slightly slower
        // σ2 can still win on energy).
        assert_eq!(last.sigma1, 1.0);
        assert!(last.sigma2 >= 0.8);
    }

    #[test]
    fn figure5_rho_sweep_speeds_increase_as_rho_tightens() {
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::Rho,
            &Grid::linear(1.0, 3.5, 26),
        );
        // Infeasible near ρ = 1, feasible at ρ = 3.5.
        assert!(s.points.first().unwrap().two_speed.is_none());
        assert!(s.points.last().unwrap().two_speed.is_some());
        // σ1 is non-increasing in ρ (looser bound → slower speeds).
        let sols: Vec<SolutionPoint> = s.points.iter().filter_map(|p| p.two_speed).collect();
        for w in sols.windows(2) {
            assert!(w[1].sigma1 <= w[0].sigma1 + 1e-12);
        }
    }

    #[test]
    fn figure7_pio_does_not_change_speeds_on_atlas_crusoe() {
        // Paper §4.3.3: speeds are not affected by Pio (and σ2 = σ1).
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::PIo,
            &Grid::linear(0.0, 5000.0, 11),
        );
        let speeds: Vec<(f64, f64)> = s
            .points
            .iter()
            .map(|p| {
                let t = p.two_speed.unwrap();
                (t.sigma1, t.sigma2)
            })
            .collect();
        for &(s1, s2) in &speeds {
            assert_eq!((s1, s2), speeds[0]);
            assert_eq!(s1, s2, "one speed suffices when sweeping Pio");
        }
        // Energy overhead still rises with Pio.
        let first = s.points.first().unwrap().two_speed.unwrap().energy_overhead;
        let last = s.points.last().unwrap().two_speed.unwrap().energy_overhead;
        assert!(last > first);
    }

    #[test]
    fn figure6_pidle_speeds_increase() {
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::PIdle,
            &Grid::linear(0.0, 5000.0, 11),
        );
        let first = s.points.first().unwrap().two_speed.unwrap();
        let last = s.points.last().unwrap().two_speed.unwrap();
        assert!(last.sigma1 >= first.sigma1);
        assert!(last.energy_overhead > first.energy_overhead);
    }

    #[test]
    fn two_speed_beats_or_matches_one_speed_everywhere() {
        let cfg = atlas_crusoe();
        for param in SweepParam::ALL {
            let s = sweep_figure_paper_grid(&cfg, param, 1e-2);
            for p in &s.points {
                if let Some(saving) = p.saving() {
                    assert!(saving >= -1e-9, "{param}: two-speed worse at x = {}", p.x);
                }
                // One-speed feasible ⇒ two-speed feasible.
                if p.one_speed.is_some() {
                    assert!(p.two_speed.is_some());
                }
            }
        }
    }

    #[test]
    fn all_eight_configurations_sweep_without_panicking() {
        for cfg in all_configurations() {
            let lambda_hi = lambda_hi_for(&cfg);
            for param in SweepParam::ALL {
                let g = match param {
                    SweepParam::Lambda => Grid::log(1e-6, lambda_hi, 7),
                    SweepParam::Rho => Grid::linear(1.0, 3.5, 7),
                    _ => Grid::linear(0.0, 5000.0, 7),
                };
                let s = sweep_figure(&cfg, param, &g);
                assert_eq!(s.points.len(), 7, "{} {param}", cfg.name());
                assert!(s.feasible_points() > 0, "{} {param}", cfg.name());
            }
        }
    }

    #[test]
    fn lambda_hi_matches_paper_figures() {
        for cfg in all_configurations() {
            let hi = lambda_hi_for(&cfg);
            match cfg.platform.id {
                PlatformId::Coastal | PlatformId::CoastalSsd => assert_eq!(hi, 1e-3),
                _ => assert_eq!(hi, 1e-2),
            }
        }
    }

    #[test]
    fn max_saving_is_substantial_on_atlas_crusoe_checkpoint_sweep() {
        // The paper reports up to ~35 % savings (Figure 2).
        let s = sweep_figure_paper_grid(&atlas_crusoe(), SweepParam::Checkpoint, 1e-2);
        let max = s.max_saving().unwrap();
        assert!(
            max > 0.25,
            "expected ≳ 25-35 % max saving on the C sweep, got {max}"
        );
        assert!(max < 0.5, "savings beyond ~35 % would be suspicious: {max}");
    }

    #[test]
    fn serde_round_trip() {
        let s = sweep_figure(
            &atlas_crusoe(),
            SweepParam::Checkpoint,
            &Grid::explicit(vec![100.0, 1000.0]),
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: FigureSeries = serde_json::from_str(&json).unwrap();
        // f64 text round-trips can differ by one ulp; compare structurally
        // with a tolerance.
        assert_eq!(s.config_name, back.config_name);
        assert_eq!(s.param, back.param);
        assert_eq!(s.points.len(), back.points.len());
        for (a, b) in s.points.iter().zip(&back.points) {
            assert_eq!(a.x, b.x);
            let (ta, tb) = (a.two_speed.unwrap(), b.two_speed.unwrap());
            assert_eq!((ta.sigma1, ta.sigma2), (tb.sigma1, tb.sigma2));
            assert!((ta.w_opt - tb.w_opt).abs() <= 1e-9 * ta.w_opt);
            assert!((ta.energy_overhead - tb.energy_overhead).abs() <= 1e-9 * ta.energy_overhead);
        }
    }
}
