//! Experiment registry: one entry per paper artifact (tables and figures)
//! plus the §5 extension studies and the validation/ablation experiments
//! documented in DESIGN.md.

use crate::figure::{lambda_hi_for, sweep_figure_paper_grid, FigureSeries, SweepParam};
use crate::render::{fmt_num, Table};
use crate::series::to_csv;
use crate::table_rho::{rho_table, PAPER_RHOS};
use rexec_core::prelude::*;
use rexec_harness::HarnessError;
use rexec_platforms::{all_configurations, configuration, ConfigId, Configuration};
use rexec_platforms::{PlatformId, ProcessorId};
use rexec_sim::{
    render_timeline, Engine, MonteCarlo, SimConfig, SimRng, TraceRecorder, ValidationReport,
};
use std::fmt::Write as _;

/// Identifier of a runnable experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExperimentId {
    /// §4.2 table at the given bound (8, 3, 1.775 or 1.4).
    TableRho(f64),
    /// Figure 1: simulated execution timelines (schematic reproduction).
    Figure1,
    /// Figures 2–7: one Atlas/Crusoe sweep each (C, V, λ, ρ, Pidle, Pio).
    Figure(u8),
    /// Figures 8–14: all six sweeps for one of the other configurations.
    FigureConfig(u8),
    /// §5.3 Theorem 2: the λ^{-2/3} checkpointing law.
    Theorem2,
    /// §5.2: validity window of the first-order approximation.
    ValidityWindow,
    /// Monte Carlo validation of Propositions 2–5.
    MonteCarloValidation,
    /// Mixed fast path: Props 4–5 validation plus the Theorem 2
    /// Θ(λ^{-2/3}) slope recovered from simulation.
    MonteCarloMixed,
    /// Ablation: Theorem 1 (first-order closed form) vs exact numeric
    /// optimization.
    ExactVsFirstOrder,
    /// §4.2 claim: which speed pairs win as ρ varies (optimal-pair map).
    OptimalPairRegions,
    /// Robustness: energy penalty of planning with a misestimated λ.
    LambdaRobustness,
    /// Time/energy Pareto frontier per configuration.
    Pareto,
    /// Extension: several verifications per checkpoint (q ≥ 1), combined
    /// with two-speed re-execution.
    MultiVerification,
    /// Extension: continuous-speed relaxation and the discretization gap.
    ContinuousSpeeds,
    /// 2-D map of the optimal pair over (λ, ρ).
    Heatmap,
    /// Extension: non-memoryless error laws (Weibull, lognormal) and
    /// re-execution speed schedules, validated against the scenario
    /// engine (moments, p99 quantile, CRN bit-identity anchor).
    Laws,
}

/// A rendered experiment: human-readable report plus CSV datasets.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Short id, e.g. "T-rho3" or "F4".
    pub id: String,
    /// Title describing the paper artifact.
    pub title: String,
    /// Human-readable report (ASCII tables / summaries).
    pub report: String,
    /// Named CSV datasets (filename stem → contents).
    pub datasets: Vec<(String, String)>,
}

impl ExperimentResult {
    /// Number of data points this experiment produced: CSV rows across
    /// its datasets (headers excluded), or — for report-only experiments
    /// without datasets — the non-empty lines of the rendered report.
    pub fn point_count(&self) -> usize {
        if self.datasets.is_empty() {
            self.report.lines().filter(|l| !l.trim().is_empty()).count()
        } else {
            self.datasets
                .iter()
                .map(|(_, csv)| csv.lines().count().saturating_sub(1))
                .sum()
        }
    }
}

fn hera_xscale() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Hera,
        processor: ProcessorId::IntelXScale,
    })
}

fn atlas_crusoe() -> Configuration {
    configuration(ConfigId {
        platform: PlatformId::Atlas,
        processor: ProcessorId::TransmetaCrusoe,
    })
}

/// Maps figure numbers 2–7 to the Atlas/Crusoe sweep parameter.
fn figure_param(n: u8) -> Result<SweepParam, HarnessError> {
    match n {
        2 => Ok(SweepParam::Checkpoint),
        3 => Ok(SweepParam::Verification),
        4 => Ok(SweepParam::Lambda),
        5 => Ok(SweepParam::Rho),
        6 => Ok(SweepParam::PIdle),
        7 => Ok(SweepParam::PIo),
        _ => Err(HarnessError::UnknownExperiment(format!(
            "F{n} (figures 2-7 are the Atlas/Crusoe sweeps)"
        ))),
    }
}

/// Maps figure numbers 8–14 to their configuration.
fn figure_config(n: u8) -> Result<Configuration, HarnessError> {
    let id = match n {
        8 => (PlatformId::Hera, ProcessorId::IntelXScale),
        9 => (PlatformId::Atlas, ProcessorId::IntelXScale),
        10 => (PlatformId::Coastal, ProcessorId::IntelXScale),
        11 => (PlatformId::CoastalSsd, ProcessorId::IntelXScale),
        12 => (PlatformId::Hera, ProcessorId::TransmetaCrusoe),
        13 => (PlatformId::Coastal, ProcessorId::TransmetaCrusoe),
        14 => (PlatformId::CoastalSsd, ProcessorId::TransmetaCrusoe),
        _ => {
            return Err(HarnessError::UnknownExperiment(format!(
                "F{n} (figures 8-14 are the per-configuration panels)"
            )))
        }
    };
    Ok(configuration(ConfigId {
        platform: id.0,
        processor: id.1,
    }))
}

/// Degrades one failed sweep point to a tagged row instead of aborting
/// the whole experiment: label, dashes, and an `ERR(tag)` marker in the
/// last column. Counted in `sweep.point_errors`, and per cause in
/// `sweep.err.<tag>` so a metrics snapshot says *which* degradations a
/// run hit, not just how many.
fn tagged_error_row(label: String, ncols: usize, tag: &str) -> Vec<String> {
    rexec_obs::counter!("sweep.point_errors").incr();
    // Dynamic name: the tag varies per failure cause, so this bypasses
    // the handle-caching macro on purpose (see `counter!`'s docs).
    rexec_obs::global()
        .counter(&format!("sweep.err.{tag}"))
        .incr();
    let mut row = vec![label];
    row.extend(std::iter::repeat_n(
        "-".to_string(),
        ncols.saturating_sub(2),
    ));
    row.push(format!("ERR({tag})"));
    row
}

/// Summarizes one figure series as a few key rows.
fn series_summary(s: &FigureSeries) -> String {
    let mut t = Table::new(vec![
        "x", "sigma1", "sigma2", "Wopt(2)", "E/W(2)", "sigma", "Wopt(1)", "E/W(1)", "saving",
    ]);
    let n = s.points.len();
    let picks: Vec<usize> = [0, n / 4, n / 2, 3 * n / 4, n - 1]
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for &i in &picks {
        let p = &s.points[i];
        let (a, b, c, d) =
            p.two_speed
                .map_or(("-".into(), "-".into(), "-".into(), "-".into()), |x| {
                    (
                        fmt_num(x.sigma1, 2),
                        fmt_num(x.sigma2, 2),
                        fmt_num(x.w_opt.round(), 0),
                        fmt_num(x.energy_overhead, 1),
                    )
                });
        let (e, f, g) = p
            .one_speed
            .map_or(("-".into(), "-".into(), "-".into()), |x| {
                (
                    fmt_num(x.sigma1, 2),
                    fmt_num(x.w_opt.round(), 0),
                    fmt_num(x.energy_overhead, 1),
                )
            });
        let sv = p
            .saving()
            .map_or("-".into(), |v| format!("{:.1}%", 100.0 * v));
        t.row(vec![fmt_num(p.x, 4), a, b, c, d, e, f, g, sv]);
    }
    let mut out = t.render();
    if let Some(max) = s.max_saving() {
        let _ = writeln!(
            out,
            "max two-speed saving over this sweep: {:.1}% ({} of {} points use two distinct speeds)",
            100.0 * max,
            s.two_distinct_speed_points(),
            s.points.len()
        );
    }
    out
}

fn run_table(rho: f64) -> ExperimentResult {
    let t = rho_table(&hera_xscale(), rho);
    ExperimentResult {
        id: format!("T-rho{}", fmt_num(rho, 3).replace('.', "_")),
        title: format!("Section 4.2 table, Hera/XScale, rho = {}", fmt_num(rho, 3)),
        report: t.render(),
        datasets: vec![],
    }
}

fn run_figure1() -> ExperimentResult {
    // Reproduce the three schematic executions of Figure 1 from real
    // simulated traces: error-free, fail-stop, and silent-error patterns
    // with σ2 = 2σ1.
    let costs = ResilienceCosts::symmetric(100.0, 20.0);
    let power = PowerModel::new(1550.0, 60.0, 5.0).unwrap();
    let mut report = String::new();
    let mut render_case = |name: &str, rates: ErrorRates, want_errors: bool| {
        let cfg = SimConfig {
            w: 1000.0,
            sigma1: 0.5,
            sigma2: 1.0,
            rates,
            costs,
            power,
        };
        for seed in 0..1000 {
            let mut tr = TraceRecorder::new(128);
            let p = rexec_sim::engine::simulate_pattern_traced(
                &cfg,
                &mut SimRng::new(seed),
                Some(&mut tr),
            );
            let had_errors = p.attempts > 1;
            if had_errors == want_errors && p.attempts <= 2 {
                let _ = writeln!(report, "({name})  {}", render_timeline(tr.events()));
                return;
            }
        }
        let _ = writeln!(report, "({name})  <no matching trace found>");
    };
    render_case("a: no error", ErrorRates::new(0.0, 0.0).unwrap(), false);
    render_case(
        "b: fail-stop error",
        ErrorRates::fail_stop_only(5e-4).unwrap(),
        true,
    );
    render_case(
        "c: silent error",
        ErrorRates::silent_only(5e-4).unwrap(),
        true,
    );
    report.push_str(
        "\nLegend: [W σ=s ...] one attempt at speed s; * silent error struck (latent);\n\
         X fail-stop interrupt; |V verification (v+ pass / v- fail); |R recovery; |C checkpoint.\n\
         As in Figure 1, re-executions run at σ2 = 2σ1.\n",
    );
    ExperimentResult {
        id: "F1".into(),
        title: "Figure 1: periodic pattern timelines (simulated)".into(),
        report,
        datasets: vec![],
    }
}

fn run_figure_2_to_7(n: u8) -> Result<ExperimentResult, HarnessError> {
    let cfg = atlas_crusoe();
    let param = figure_param(n)?;
    let s = sweep_figure_paper_grid(&cfg, param, lambda_hi_for(&cfg));
    Ok(ExperimentResult {
        id: format!("F{n}"),
        title: format!("Figure {n}: Atlas/Crusoe, sweep of {}", param.label()),
        report: series_summary(&s),
        datasets: vec![(format!("fig{n}_atlas_crusoe_{}", param.label()), to_csv(&s))],
    })
}

fn run_figure_config(n: u8) -> Result<ExperimentResult, HarnessError> {
    let cfg = figure_config(n)?;
    let mut report = String::new();
    let mut datasets = vec![];
    for param in SweepParam::ALL {
        let s = sweep_figure_paper_grid(&cfg, param, lambda_hi_for(&cfg));
        let _ = writeln!(report, "--- sweep of {} ---", param.label());
        report.push_str(&series_summary(&s));
        report.push('\n');
        datasets.push((
            format!(
                "fig{n}_{}_{}",
                cfg.name().to_lowercase().replace(['/', ' '], "_"),
                param.label()
            ),
            to_csv(&s),
        ));
    }
    Ok(ExperimentResult {
        id: format!("F{n}"),
        title: format!("Figure {n}: {}, all six sweeps", cfg.name()),
        report,
        datasets,
    })
}

fn run_theorem2() -> ExperimentResult {
    let c = 300.0;
    let sigma = 0.5;
    let pts = theorem2::wopt_samples(c, sigma, 1e-7, 1e-3, 25);
    let slope = theorem2::loglog_slope(&pts);
    let yd_pts: Vec<(f64, f64)> = pts
        .iter()
        .map(|&(l, _)| (l, daly::young_daly_work(c, l, sigma)))
        .collect();
    let yd_slope = theorem2::loglog_slope(&yd_pts);

    // Numeric cross-check on the exact mixed model at three rates.
    let mut t = Table::new(vec![
        "lambda",
        "Wopt (Thm 2)",
        "Wopt (exact numeric)",
        "rel err",
    ]);
    for &lambda in &[1e-6, 1e-5, 1e-4] {
        let mm = MixedModel::new(
            ErrorRates::fail_stop_only(lambda).unwrap(),
            ResilienceCosts::new(c, 0.0, c).unwrap(),
            PowerModel::new(1550.0, 60.0, 5.0).unwrap(),
        );
        let (w_num, _) = numeric::exact_time_minimizer_mixed(&mm, sigma, 2.0 * sigma);
        let w_thm = theorem2::optimal_work(c, lambda, sigma);
        t.row(vec![
            format!("{lambda:.0e}"),
            fmt_num(w_thm.round(), 0),
            fmt_num(w_num.round(), 0),
            format!("{:.2}%", 100.0 * (w_num - w_thm).abs() / w_thm),
        ]);
    }
    let report = format!(
        "Fail-stop errors only, re-execution twice faster (σ2 = 2σ1):\n\
         fitted log-log slope of Wopt(λ):   {slope:.4}  (Theorem 2 predicts -2/3)\n\
         Young/Daly slope for comparison:   {yd_slope:.4}  (predicts -1/2)\n\n{}",
        t.render()
    );
    let mut csv = String::from("lambda,wopt_theorem2,wopt_young_daly\n");
    for (p, y) in pts.iter().zip(&yd_pts) {
        let _ = writeln!(csv, "{},{},{}", p.0, p.1, y.1);
    }
    ExperimentResult {
        id: "X-thm2".into(),
        title: "Theorem 2: Θ(λ^{-2/3}) optimal checkpointing (σ2 = 2σ1, fail-stop)".into(),
        report,
        datasets: vec![("theorem2_scaling".into(), csv)],
    }
}

fn run_validity_window() -> ExperimentResult {
    let mut t = Table::new(vec![
        "fail-stop fraction f",
        "lower bound on σ2/σ1",
        "upper bound",
    ]);
    for f in [1.0, 0.75, 0.5, 0.25, 0.1, 0.01] {
        let (lo, hi) = FirstOrder::validity_window(f);
        t.row(vec![fmt_num(f, 2), format!("{lo:.4}"), format!("{hi:.2}")]);
    }
    let report = format!(
        "First-order approximation validity (§5.2): the approach admits a\n\
         solution iff (2(1+s/f))^(-1/2) < σ2/σ1 < 2(1+s/f).\n\n{}\n\
         With silent errors only (f = 0) the window is unbounded; the more\n\
         fail-stop errors dominate, the narrower the admissible speed ratio.\n",
        t.render()
    );
    ExperimentResult {
        id: "X-validity".into(),
        title: "Section 5.2: validity window of the first-order approximation".into(),
        report,
        datasets: vec![],
    }
}

fn run_monte_carlo(seed: u64) -> ExperimentResult {
    let trials = 40_000;
    let mut t = Table::new(vec![
        "config",
        "model",
        "T analytic",
        "T sampled",
        "rel",
        "E analytic",
        "E sampled",
        "rel",
    ]);
    // Silent-only on Hera/XScale at the paper's ρ = 3 optimum, with an
    // inflated λ so errors are actually exercised.
    let hx = hera_xscale();
    let m = hx.silent_model().unwrap().with_lambda(1e-4);
    let (w, s1, s2) = (2764.0, 0.4, 0.8);
    let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
    // Formats one validation row, degrading an engine refusal (e.g. a
    // degenerate never-completes config) to a tagged ERR row per the
    // sweep policy instead of aborting the experiment. Returns whether
    // the row validated.
    let validation_row = |t: &mut Table,
                          model: &str,
                          rep: Result<ValidationReport, rexec_sim::EngineError>|
     -> bool {
        match rep {
            Ok(rep) => {
                t.row(vec![
                    "Hera/XScale".to_string(),
                    model.to_string(),
                    fmt_num(rep.expected_time, 1),
                    fmt_num(rep.summary.time.mean(), 1),
                    format!("{:.3}%", 100.0 * rep.time_rel_error()),
                    fmt_num(rep.expected_energy, 0),
                    fmt_num(rep.summary.energy.mean(), 0),
                    format!("{:.3}%", 100.0 * rep.energy_rel_error()),
                ]);
                rep.ok()
            }
            Err(_) => {
                t.row(tagged_error_row("Hera/XScale".to_string(), 8, "engine"));
                false
            }
        }
    };
    // Silent-only, so the geometric fast path applies; select it
    // explicitly so the validation row keeps exercising it even if the
    // `Engine::Auto` heuristic changes.
    let rep = MonteCarlo::new(cfg, trials, seed)
        .with_engine(Engine::FastPath)
        .validate(
            m.expected_time(w, s1, s2),
            m.expected_energy(w, s1, s2),
            3.29,
        );
    let ok1 = validation_row(&mut t, "silent (Props 2-3)", rep);

    // Mixed errors, kept on the per-attempt reference engine so this row
    // stays bit-reproducible against historical runs (the mixed fast
    // path has its own dedicated X-mc-mixed experiment).
    let mm = MixedModel::new(ErrorRates::new(8e-5, 5e-5).unwrap(), m.costs, m.power);
    let cfg2 = SimConfig::from_mixed_model(&mm, 3000.0, 0.6, 1.0);
    let rep2 = MonteCarlo::new(cfg2, trials, seed.wrapping_mul(2))
        .with_engine(Engine::Reference)
        .validate(
            mm.expected_time(3000.0, 0.6, 1.0),
            mm.expected_energy(3000.0, 0.6, 1.0),
            3.29,
        );
    let ok2 = validation_row(&mut t, "mixed (Props 4-5)", rep2);

    let report = format!(
        "{}\n{} independent pattern simulations per row; analytic values\n\
         {} inside the 99.9% CI of the sampled mean.\n",
        t.render(),
        trials,
        if ok1 && ok2 { "lie" } else { "DO NOT lie" }
    );
    ExperimentResult {
        id: "X-mc".into(),
        title: "Monte Carlo validation of the analytic expectations".into(),
        report,
        datasets: vec![],
    }
}

/// Vertex of the parabola through the discrete argmin of a sampled
/// `(x, y)` curve and its two neighbours (`x` uniformly spaced). Falls
/// back to the raw argmin when it sits on the grid edge or the 3-point
/// stencil is not convex (noise can produce a flat or concave stencil).
fn parabola_argmin(curve: &[(f64, f64)]) -> f64 {
    let i = curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("curve must be non-empty");
    if i == 0 || i + 1 == curve.len() {
        return curve[i].0;
    }
    let h = curve[i].0 - curve[i - 1].0;
    let (ym, y0, yp) = (curve[i - 1].1, curve[i].1, curve[i + 1].1);
    let denom = ym - 2.0 * y0 + yp;
    if denom <= 0.0 {
        return curve[i].0;
    }
    curve[i].0 + 0.5 * h * (ym - yp) / denom
}

/// Recovers the Theorem 2 scaling law from *simulation*: for each
/// log-spaced λ (fail-stop errors only, σ₂ = 2σ₁ — the model of
/// Theorem 2) the mixed fast path samples the expected time overhead
/// `T/W` on a geometric `W` grid around the analytic optimum, and the
/// minimizer is refined with a 3-point parabola fit in `(ln W, T/W)`.
/// Returns the fitted log–log slope of the simulated `Wopt(λ)` (Theorem
/// 2 predicts −2/3) plus per-λ rows `(λ, Some(wopt_sim), wopt_theory)`;
/// a point the engine refuses degrades to `None` and is excluded from
/// the fit.
fn simulated_theorem2_slope(seed: u64, trials: u64) -> (f64, Vec<(f64, Option<f64>, f64)>) {
    let c = 300.0;
    let (sigma1, sigma2) = (0.5, 1.0);
    let costs = ResilienceCosts::new(c, 0.0, c).unwrap();
    let power = PowerModel::new(1550.0, 60.0, 5.0).unwrap();

    let n_lambda = 8u32;
    let (l_lo, l_hi): (f64, f64) = (1e-5, 3e-4);
    let l_ratio = (l_hi / l_lo).powf(1.0 / f64::from(n_lambda - 1));

    // W grid: geometric, wide enough to bracket the exact minimizer even
    // where it drifts below the first-order optimum at the high-λ end.
    let n_w = 13u32;
    let (f_lo, f_hi): (f64, f64) = (0.45, 2.2);
    let f_ratio = (f_hi / f_lo).powf(1.0 / f64::from(n_w - 1));

    let mut rows = Vec::with_capacity(n_lambda as usize);
    let mut fit: Vec<(f64, f64)> = Vec::with_capacity(n_lambda as usize);
    for i in 0..n_lambda {
        let lambda = l_lo * l_ratio.powi(i as i32);
        let w_theory = theorem2::optimal_work(c, lambda, sigma1);
        let mm = MixedModel::new(ErrorRates::fail_stop_only(lambda).unwrap(), costs, power);
        // One seed per λ, shared by the whole W grid: common random
        // numbers keep the sampled overhead curves correlated across W,
        // which stabilizes the argmin far better than fresh draws would.
        let lambda_seed = seed.wrapping_add(u64::from(i));
        let mut curve: Vec<(f64, f64)> = Vec::with_capacity(n_w as usize);
        for j in 0..n_w {
            let w = w_theory * f_lo * f_ratio.powi(j as i32);
            let cfg = SimConfig::from_mixed_model(&mm, w, sigma1, sigma2);
            let run = MonteCarlo::new(cfg, trials, lambda_seed)
                .with_engine(Engine::FastPath)
                .run();
            match run {
                Ok(summary) => curve.push((w.ln(), summary.time.mean() / w)),
                // An engine refusal (degenerate never-completes point)
                // drops this λ from the fit instead of aborting the
                // sweep; the caller renders it as a tagged row.
                Err(_) => {
                    curve.clear();
                    break;
                }
            }
        }
        if curve.len() < 3 {
            rows.push((lambda, None, w_theory));
            continue;
        }
        let wopt_sim = parabola_argmin(&curve).exp();
        rows.push((lambda, Some(wopt_sim), w_theory));
        fit.push((lambda, wopt_sim));
    }
    (theorem2::loglog_slope(&fit), rows)
}

fn run_monte_carlo_mixed(seed: u64) -> ExperimentResult {
    // Part 1: the mixed fast path against the closed forms of
    // Propositions 4-5 (the z = 4 statistical-identity version lives in
    // the integration suite; this row pins the experiment artifact).
    let trials = 60_000;
    let hx = hera_xscale();
    let m = hx.silent_model().unwrap().with_lambda(1e-4);
    let mm = MixedModel::new(ErrorRates::new(8e-5, 5e-5).unwrap(), m.costs, m.power);
    let (w, s1, s2) = (3000.0, 0.6, 1.0);
    let cfg = SimConfig::from_mixed_model(&mm, w, s1, s2);
    let mut t = Table::new(vec![
        "config",
        "model",
        "T analytic",
        "T sampled",
        "rel",
        "E analytic",
        "E sampled",
        "rel",
    ]);
    // Forced FastPath on a mixed config: before the mixed fast path this
    // exact call panicked inside the rayon workers.
    let rep = MonteCarlo::new(cfg, trials, seed)
        .with_engine(Engine::FastPath)
        .validate(
            mm.expected_time(w, s1, s2),
            mm.expected_energy(w, s1, s2),
            3.29,
        );
    let ok = match rep {
        Ok(rep) => {
            t.row(vec![
                "Hera/XScale".to_string(),
                "mixed fast path (Props 4-5)".to_string(),
                fmt_num(rep.expected_time, 1),
                fmt_num(rep.summary.time.mean(), 1),
                format!("{:.3}%", 100.0 * rep.time_rel_error()),
                fmt_num(rep.expected_energy, 0),
                fmt_num(rep.summary.energy.mean(), 0),
                format!("{:.3}%", 100.0 * rep.energy_rel_error()),
            ]);
            rep.ok()
        }
        Err(_) => {
            t.row(tagged_error_row("Hera/XScale".to_string(), 8, "engine"));
            false
        }
    };

    // Part 2: the simulated Theorem 2 slope.
    let (slope, rows) = simulated_theorem2_slope(seed, 100_000);
    let mut st = Table::new(vec!["lambda", "Wopt (simulated)", "Wopt (Thm 2)", "ratio"]);
    let mut csv = String::from("lambda,wopt_sim,wopt_theory\n");
    for &(lambda, wopt_sim, w_theory) in &rows {
        match wopt_sim {
            Some(ws) => {
                st.row(vec![
                    format!("{lambda:.2e}"),
                    fmt_num(ws.round(), 0),
                    fmt_num(w_theory.round(), 0),
                    format!("{:.3}", ws / w_theory),
                ]);
                let _ = writeln!(csv, "{lambda},{ws},{w_theory}");
            }
            None => {
                st.row(tagged_error_row(format!("{lambda:.2e}"), 4, "engine"));
            }
        }
    }
    let report = format!(
        "{}\n{} independent pattern simulations; analytic values {} inside\n\
         the 99.9% CI of the sampled mean.\n\n\
         Simulated Theorem 2 law (fail-stop only, σ2 = 2σ1):\n\
         fitted log-log slope of simulated Wopt(λ): {slope:.4}  (Theorem 2\n\
         predicts -2/3)\n\n{}",
        t.render(),
        trials,
        if ok { "lie" } else { "DO NOT lie" },
        st.render()
    );
    ExperimentResult {
        id: "X-mc-mixed".into(),
        title: "Mixed fast path: Props 4-5 validation + simulated Theorem 2 slope".into(),
        report,
        datasets: vec![("mc_mixed_scaling".into(), csv)],
    }
}

/// Closed-form pattern expectations for a silent-only two-speed config
/// under an arbitrary [`ErrorLaw`]. The simulator rolls back to pristine
/// state after every detected error, so each attempt draws a *fresh*
/// inter-error time (renewal semantics): the retry count is geometric in
/// the law's per-attempt survival even when the law itself is not
/// memoryless, and every expectation keeps a closed form. Returns
/// `(E[T], E[E], E[attempts], [quantile of T at each q in qs])`.
fn law_expectations(
    m: &SilentModel,
    law: ErrorLaw,
    w: f64,
    s1: f64,
    s2: f64,
    qs: [f64; 3],
) -> (f64, f64, f64, [f64; 3]) {
    let (c, r, v) = (m.costs.checkpoint, m.costs.recovery, m.costs.verification);
    let p1 = 1.0 - law.survival(w / s1, m.lambda);
    let p2 = 1.0 - law.survival(w / s2, m.lambda);
    let retries = p1 / (1.0 - p2);
    let attempt1 = (w + v) / s1;
    let retry = (w + v) / s2;
    let time = c + attempt1 + retries * (r + retry);
    let p_io = m.power.io_power();
    let energy = c * p_io
        + attempt1 * m.power.compute_power(s1)
        + retries * (r * p_io + retry * m.power.compute_power(s2));
    // T is deterministic given the retry count M (silent errors are only
    // caught at the verification), and P(M > m) = p1·p2^m, so the
    // quantile inverts the geometric tail exactly.
    let quantiles = qs.map(|q| {
        let mut tail = p1;
        let mut mth = 0u32;
        while tail > 1.0 - q {
            tail *= p2;
            mth += 1;
        }
        c + attempt1 + f64::from(mth) * (r + retry)
    });
    (time, energy, 1.0 + retries, quantiles)
}

fn run_laws(seed: u64) -> ExperimentResult {
    let trials: u64 = 40_000;
    let z = 3.29;
    let hx = hera_xscale();
    let m = hx.silent_model().unwrap().with_lambda(1e-4);
    let (w, s1, s2) = (2764.0, 0.4, 0.8);
    let n = trials as f64;
    // T's distribution is a lattice (deterministic given the retry
    // count), so when the analytic tail sits right on 1-q the sampled
    // quantile legitimately lands one attempt over. Bracket the target
    // level by the sampling noise of an order statistic at q and accept
    // anything inside [quantile(q-dq), quantile(q+dq)], padded by the
    // 1% histogram resolution.
    let q99 = 0.99;
    let dq = z * (q99 * (1.0 - q99) / n).sqrt();
    let q_bracket = [q99 - dq, q99, q99 + dq];

    let mut t = Table::new(vec![
        "scenario",
        "T analytic",
        "T sampled",
        "T rel",
        "E rel",
        "N rel",
        "p99 analytic",
        "p99 sampled",
        "check",
    ]);
    let mut csv = String::from("scenario,stat,analytic,sampled\n");
    let mut all_ok = true;

    // One row per scenario: analytic values from the renewal closed
    // forms, sampled values from the per-attempt scenario engine. All
    // scenarios share one seed (common random numbers), so cross-law
    // differences in the table are distributional, not sampling noise.
    let law_row =
        |t: &mut Table, csv: &mut String, name: &str, expected: (f64, f64, f64, [f64; 3]), run| {
            let (te, ee, ne, [p99_lo, p99, p99_hi]) = expected;
            match run {
                Ok((summary, th, _)) => {
                    let (summary, th): (rexec_sim::Summary, rexec_sim::Histogram) = (summary, th);
                    let p99_s = th.quantile(q99).unwrap_or(f64::NAN);
                    let ok = (summary.time.mean() - te).abs()
                        <= z * summary.time.std_dev() / n.sqrt()
                        && (summary.energy.mean() - ee).abs()
                            <= z * summary.energy.std_dev() / n.sqrt()
                        && (summary.attempts.mean() - ne).abs()
                            <= z * summary.attempts.std_dev() / n.sqrt()
                        && p99_s >= 0.97 * p99_lo
                        && p99_s <= 1.03 * p99_hi;
                    t.row(vec![
                        name.to_string(),
                        fmt_num(te, 1),
                        fmt_num(summary.time.mean(), 1),
                        format!("{:.3}%", 100.0 * (summary.time.mean() / te - 1.0).abs()),
                        format!("{:.3}%", 100.0 * (summary.energy.mean() / ee - 1.0).abs()),
                        format!("{:.3}%", 100.0 * (summary.attempts.mean() / ne - 1.0).abs()),
                        fmt_num(p99, 1),
                        fmt_num(p99_s, 1),
                        if ok { "OK".into() } else { "MISS".into() },
                    ]);
                    for (stat, a, s) in [
                        ("time", te, summary.time.mean()),
                        ("energy", ee, summary.energy.mean()),
                        ("attempts", ne, summary.attempts.mean()),
                        ("p99_time", p99, p99_s),
                    ] {
                        let _ = writeln!(csv, "{name},{stat},{a},{s}");
                    }
                    ok
                }
                Err(_) => {
                    t.row(tagged_error_row(name.to_string(), 9, "engine"));
                    false
                }
            }
        };

    for (name, law) in [
        ("exponential", ErrorLaw::Exponential),
        ("weibull k=0.7", ErrorLaw::Weibull { shape: 0.7 }),
        ("weibull k=1.5", ErrorLaw::Weibull { shape: 1.5 }),
        ("lognormal s=1", ErrorLaw::LogNormal { sigma: 1.0 }),
    ] {
        let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
        let run = MonteCarlo::new(cfg, trials, seed)
            .with_law(law)
            .run_with_histograms();
        all_ok &= law_row(
            &mut t,
            &mut csv,
            name,
            law_expectations(&m, law, w, s1, s2, q_bracket),
            run,
        );
    }

    // A 3-speed schedule under the exponential law, against the exact
    // generalized-geometric closed forms of ScheduleModel.
    let schedule = SpeedSchedule::new(s1, vec![0.6, 1.0]).unwrap();
    let sm = ScheduleModel::new(m, schedule.clone());
    let run = MonteCarlo::new(SimConfig::from_silent_model(&m, w, s1, 1.0), trials, seed)
        .with_schedule(schedule)
        .run_with_histograms();
    all_ok &= law_row(
        &mut t,
        &mut csv,
        "schedule (0.4,0.6,1)",
        (
            sm.expected_time(w),
            sm.expected_energy(w),
            sm.expected_executions(w),
            q_bracket.map(|q| sm.quantile_time(w, q)),
        ),
        run,
    );

    // CRN sanity anchor: Weibull with shape 1 *is* the exponential law,
    // and its sampler consumes the uniform stream identically, so the
    // scenario engine must reproduce the reference engine bit for bit.
    let cfg = SimConfig::from_silent_model(&m, w, s1, s2);
    let shape_one = MonteCarlo::new(cfg, 10_000, seed)
        .with_law(ErrorLaw::Weibull { shape: 1.0 })
        .run();
    let reference = MonteCarlo::new(cfg, 10_000, seed)
        .with_engine(Engine::Reference)
        .run();
    let identical = match (shape_one, reference) {
        (Ok(a), Ok(b)) => {
            a.time.mean().to_bits() == b.time.mean().to_bits()
                && a.energy.mean().to_bits() == b.energy.mean().to_bits()
                && a.attempts.mean().to_bits() == b.attempts.mean().to_bits()
        }
        _ => false,
    };
    all_ok &= identical;

    // Deadline-constrained schedule search, validated in-distribution:
    // the solver bounds the analytic p99 of T/W; the simulated p99 of
    // the winning schedule must respect the same bound.
    let rho = 3.0;
    let speeds = hx.speed_set().unwrap();
    let mut deadline_note = String::new();
    match solve_quantile(&m, &speeds, rho, 0.99, 2) {
        Some(sol) => {
            let cfg = SimConfig::from_silent_model(
                &m,
                sol.w_opt,
                sol.schedule.sigma1,
                sol.schedule.settled(),
            );
            let run = MonteCarlo::new(cfg, trials, seed)
                .with_schedule(sol.schedule.clone())
                .run_with_histograms();
            match run {
                Ok((_, th, _)) => {
                    let p99 = th.quantile(0.99).unwrap_or(f64::NAN) / sol.w_opt;
                    // 1% histogram resolution + discrete attempt grid.
                    let ok = p99 <= rho * 1.02;
                    all_ok &= ok;
                    let _ = writeln!(
                        deadline_note,
                        "deadline solve (p99 of T/W <= {rho}, depth 2): schedule {}, Wopt = {:.0};\n\
                         simulated p99(T)/W = {p99:.4} [{}]",
                        sol.schedule,
                        sol.w_opt,
                        if ok { "OK" } else { "MISS" }
                    );
                }
                Err(_) => {
                    all_ok = false;
                    let _ = writeln!(deadline_note, "deadline solve: ERR(engine)");
                }
            }
        }
        None => {
            all_ok = false;
            let _ = writeln!(deadline_note, "deadline solve: ERR(infeasible)");
        }
    }

    let report = format!(
        "Hera/XScale, λ = 1e-4 (silent only), W = {w}, σ = ({s1}, {s2});\n\
         {trials} scenario-engine simulations per row, one shared seed (CRN):\n\n{}\n\
         weibull(shape=1) vs exponential reference engine: {}\n\n{}\n\
         All checks {}: sampled means inside the 99.9% CI of the renewal\n\
         closed forms, sampled p99 within 3% of the exact discrete quantile\n\
         bracketed at q = 0.99 ± {dq:.2e} (order-statistic noise).\n",
        t.render(),
        if identical {
            "bit-identical"
        } else {
            "DIVERGED (CRN contract broken)"
        },
        deadline_note,
        if all_ok { "passed" } else { "FAILED" }
    );
    ExperimentResult {
        id: "X-laws".into(),
        title: "Extension: non-memoryless error laws + re-execution speed schedules".into(),
        report,
        datasets: vec![("laws_validation".into(), csv)],
    }
}

fn run_exact_vs_first_order() -> ExperimentResult {
    let mut t = Table::new(vec![
        "config",
        "pair (FO)",
        "Wopt (FO)",
        "Wopt (exact)",
        "E/W (FO)",
        "E/W (exact)",
        "gap",
    ]);
    for cfg in all_configurations() {
        let m = cfg.silent_model().unwrap();
        let speeds = cfg.speed_set().unwrap();
        let solver = cfg.solver().unwrap();
        let rho = Configuration::DEFAULT_RHO;
        // A solver failure on one configuration degrades to a tagged row
        // instead of aborting the other seven.
        let (Some(fo), Some((s1, s2, ex))) = (
            solver.solve(rho),
            numeric::exact_bicrit_solve(&m, &speeds, rho),
        ) else {
            t.row(tagged_error_row(cfg.name(), 7, "infeasible"));
            continue;
        };
        let gap = (fo.energy_overhead - ex.objective).abs() / ex.objective;
        if (s1, s2) != (fo.sigma1, fo.sigma2) {
            t.row(tagged_error_row(cfg.name(), 7, "pair-mismatch"));
            continue;
        }
        t.row(vec![
            cfg.name(),
            format!("({}, {})", fmt_num(fo.sigma1, 2), fmt_num(fo.sigma2, 2)),
            fmt_num(fo.w_opt.round(), 0),
            fmt_num(ex.w.round(), 0),
            fmt_num(fo.energy_overhead, 1),
            fmt_num(ex.objective, 1),
            format!("{:.3}%", 100.0 * gap),
        ]);
    }
    ExperimentResult {
        id: "X-ablation".into(),
        title: "Ablation: Theorem 1 closed form vs exact numeric optimization (rho = 3)".into(),
        report: t.render(),
        datasets: vec![],
    }
}

fn run_optimal_pair_regions() -> ExperimentResult {
    // §4.2: "it is possible, for a well-chosen ρ, to have almost any speed
    // pair as the optimal solution (except the pairs with very low
    // speeds)". Scan ρ geometrically and record the winner's region.
    let solver = hera_xscale().solver().unwrap();
    let mut regions: Vec<(f64, f64, (f64, f64))> = vec![]; // [rho_lo, rho_hi] -> pair
    let mut rho = solver.min_feasible_rho() * 1.0001;
    let mut current: Option<(f64, f64, (f64, f64))> = None;
    while rho < 12.0 {
        if let Some(best) = solver.solve(rho) {
            let pair = (best.sigma1, best.sigma2);
            match current.as_mut() {
                Some(region) if region.2 == pair => region.1 = rho,
                _ => {
                    if let Some(region) = current.take() {
                        regions.push(region);
                    }
                    current = Some((rho, rho, pair));
                }
            }
        }
        rho *= 1.001;
    }
    if let Some(region) = current.take() {
        regions.push(region);
    }
    let mut t = Table::new(vec!["rho from", "rho to", "optimal (sigma1, sigma2)"]);
    for (lo, hi, (s1, s2)) in &regions {
        t.row(vec![
            format!("{lo:.4}"),
            format!("{hi:.4}"),
            format!("({}, {})", fmt_num(*s1, 2), fmt_num(*s2, 2)),
        ]);
    }
    let distinct: std::collections::BTreeSet<(i64, i64)> = regions
        .iter()
        .map(|r| ((r.2 .0 * 100.0) as i64, (r.2 .1 * 100.0) as i64))
        .collect();
    let report = format!(
        "Hera/XScale, ρ scanned geometrically over [ρ*, 12]:\n\n{}\n\
         {} distinct optimal pairs; none uses σ1 = 0.15 (the paper's\n\
         'pairs with very low speeds' exclusion).\n",
        t.render(),
        distinct.len()
    );
    assert!(distinct.iter().all(|&(s1, _)| s1 != 15));
    ExperimentResult {
        id: "X-pairs".into(),
        title: "Section 4.2: optimal speed-pair regions as rho varies".into(),
        report,
        datasets: vec![],
    }
}

fn run_lambda_robustness() -> ExperimentResult {
    // If the true error rate is λ but the plan was computed with x·λ, how
    // much energy does the mis-planned execution actually cost? Evaluate
    // the mis-planned (W, σ1, σ2) under the *true* exact model.
    let cfg = hera_xscale();
    let true_model = cfg.silent_model().unwrap();
    let speeds = cfg.speed_set().unwrap();
    let rho = Configuration::DEFAULT_RHO;
    let Some(oracle) = BiCritSolver::new(true_model, speeds.clone()).solve(rho) else {
        rexec_obs::counter!("sweep.point_errors").incr();
        return ExperimentResult {
            id: "X-robust".into(),
            title: "Robustness of the plan to misestimated error rates".into(),
            report: format!("ERR(infeasible): Hera/XScale has no plan at rho = {rho}\n"),
            datasets: vec![],
        };
    };
    let oracle_e = true_model.energy_overhead(oracle.w_opt, oracle.sigma1, oracle.sigma2);

    let mut t = Table::new(vec![
        "assumed λ / true λ",
        "planned pair",
        "planned W",
        "true E/W",
        "penalty",
        "true T/W",
    ]);
    let mut max_penalty: f64 = 0.0;
    for factor in [0.1, 0.3, 1.0, 3.0, 10.0] {
        let wrong = true_model.with_lambda(true_model.lambda * factor);
        let Some(plan) = BiCritSolver::new(wrong, speeds.clone()).solve(rho) else {
            t.row(tagged_error_row(format!("{factor}"), 6, "infeasible"));
            continue;
        };
        let e = true_model.energy_overhead(plan.w_opt, plan.sigma1, plan.sigma2);
        let time = true_model.time_overhead(plan.w_opt, plan.sigma1, plan.sigma2);
        let penalty = e / oracle_e - 1.0;
        max_penalty = max_penalty.max(penalty);
        t.row(vec![
            format!("{factor}"),
            format!("({}, {})", fmt_num(plan.sigma1, 2), fmt_num(plan.sigma2, 2)),
            fmt_num(plan.w_opt.round(), 0),
            fmt_num(e, 2),
            format!("{:+.2}%", 100.0 * penalty),
            fmt_num(time, 3),
        ]);
    }
    let report = format!(
        "Hera/XScale, ρ = 3; plans computed with a misestimated λ are\n\
         re-evaluated under the true exact model (oracle E/W = {:.2}):\n\n{}\n\
         Square-root-flat optimum: even a 10× rate misestimate costs only\n\
         {:.1}% extra energy — the Young/Daly-style robustness carries over.\n",
        oracle_e,
        t.render(),
        100.0 * max_penalty
    );
    ExperimentResult {
        id: "X-robust".into(),
        title: "Robustness of the plan to misestimated error rates".into(),
        report,
        datasets: vec![],
    }
}

fn run_pareto() -> ExperimentResult {
    use rexec_core::ParetoFrontier;
    let mut report = String::new();
    let mut datasets = vec![];
    for cfg in [hera_xscale(), atlas_crusoe()] {
        let solver = cfg.solver().unwrap();
        let frontier = ParetoFrontier::compute(&solver, 10.0, 300);
        let _ = writeln!(
            report,
            "--- {} : {} non-dominated points, pairs along the frontier: {:?} ---",
            cfg.name(),
            frontier.len(),
            frontier.speed_pairs()
        );
        let mut t = Table::new(vec!["T/W", "E/W", "sigma1", "sigma2", "Wopt"]);
        let n = frontier.len();
        for idx in [0, n / 4, n / 2, 3 * n / 4, n.saturating_sub(1)] {
            let p = &frontier.points[idx.min(n - 1)];
            t.row(vec![
                format!("{:.3}", p.time_overhead),
                format!("{:.1}", p.energy_overhead),
                fmt_num(p.sigma1, 2),
                fmt_num(p.sigma2, 2),
                fmt_num(p.w_opt.round(), 0),
            ]);
        }
        report.push_str(&t.render());
        report.push('\n');
        let mut csv = String::from("rho,time_overhead,energy_overhead,sigma1,sigma2,w_opt\n");
        for p in &frontier.points {
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{}",
                p.rho, p.time_overhead, p.energy_overhead, p.sigma1, p.sigma2, p.w_opt
            );
        }
        datasets.push((
            format!(
                "pareto_{}",
                cfg.name().to_lowercase().replace(['/', ' '], "_")
            ),
            csv,
        ));
    }
    ExperimentResult {
        id: "X-pareto".into(),
        title: "Time/energy Pareto frontier (trade-off curve of BiCrit)".into(),
        report,
        datasets,
    }
}

fn run_multi_verification() -> ExperimentResult {
    use rexec_core::multiverif;
    let cfg = hera_xscale();
    let base = cfg.silent_model().unwrap();
    let speeds = cfg.speed_set().unwrap();
    let rho = Configuration::DEFAULT_RHO;
    let mut t = Table::new(vec![
        "lambda",
        "best q",
        "pair",
        "Wopt",
        "E/W (multi)",
        "E/W (q=1)",
        "gain",
    ]);
    for factor in [1.0, 10.0, 30.0, 100.0] {
        let m = base.with_lambda(base.lambda * factor);
        let (Some(multi), Some(single)) = (
            multiverif::optimize(&m, &speeds, rho, 8),
            numeric::exact_bicrit_solve(&m, &speeds, rho),
        ) else {
            t.row(tagged_error_row(
                format!("{:.2e}", m.lambda),
                7,
                "infeasible",
            ));
            continue;
        };
        let gain = 1.0 - multi.energy_overhead / single.2.objective;
        t.row(vec![
            format!("{:.2e}", m.lambda),
            multi.q.to_string(),
            format!(
                "({}, {})",
                fmt_num(multi.sigma1, 2),
                fmt_num(multi.sigma2, 2)
            ),
            fmt_num(multi.w_opt.round(), 0),
            fmt_num(multi.energy_overhead, 2),
            fmt_num(single.2.objective, 2),
            format!("{:.2}%", 100.0 * gain),
        ]);
    }
    let report = format!(
        "Hera/XScale, ρ = 3, q ∈ [1, 8] verifications per checkpoint\n\
         (extension of §6's interleaved-verification patterns [6] to the\n\
         two-speed re-execution model; q = 1 is the paper's model):\n\n{}\n\
         Early detection trims the re-executed work; with V ≪ C the\n\
         optimal q exceeds 1, and the gain grows with the error rate.\n",
        t.render()
    );
    ExperimentResult {
        id: "X-multiverif".into(),
        title: "Extension: multiple verifications per checkpoint + two speeds".into(),
        report,
        datasets: vec![],
    }
}

fn run_continuous_speeds() -> ExperimentResult {
    use rexec_core::continuous;
    let rho = Configuration::DEFAULT_RHO;
    let mut t = Table::new(vec![
        "config",
        "discrete pair",
        "E/W discrete",
        "continuous pair",
        "E/W continuous",
        "gap",
    ]);
    for cfg in all_configurations() {
        let m = cfg.silent_model().unwrap();
        let speeds = cfg.speed_set().unwrap();
        let (Some(discrete), Some(cont)) = (
            cfg.solver().unwrap().solve(rho),
            continuous::solve(&m, speeds.min(), speeds.max(), rho),
        ) else {
            t.row(tagged_error_row(cfg.name(), 6, "infeasible"));
            continue;
        };
        let gap = 1.0 - cont.energy_overhead / discrete.energy_overhead;
        t.row(vec![
            cfg.name(),
            format!(
                "({}, {})",
                fmt_num(discrete.sigma1, 2),
                fmt_num(discrete.sigma2, 2)
            ),
            fmt_num(discrete.energy_overhead, 1),
            format!("({:.3}, {:.3})", cont.sigma1, cont.sigma2),
            fmt_num(cont.energy_overhead, 1),
            format!("{:.2}%", 100.0 * gap),
        ]);
    }
    let report = format!(
        "Continuous-speed relaxation over [σ_min, σ_max] vs the paper's\n\
         discrete DVFS steps (ρ = 3): the gap is the energy left on the\n\
         table by discreteness.\n\n{}",
        t.render()
    );
    ExperimentResult {
        id: "X-continuous".into(),
        title: "Extension: continuous-speed relaxation (discretization gap)".into(),
        report,
        datasets: vec![],
    }
}

fn run_heatmap() -> ExperimentResult {
    use crate::grid::Grid;
    use crate::heatmap::Heatmap;
    let cfg = hera_xscale();
    let map = Heatmap::compute(
        &cfg,
        &Grid::log(1e-6, 2e-3, 16),
        &Grid::linear(1.1, 8.0, 40),
    );
    let report = format!(
        "{}\ntwo distinct speeds win in {:.1}% of feasible cells; {} pairs appear.\n",
        map.render_pair_map(),
        100.0 * map.two_speed_fraction(),
        map.winning_pairs().len()
    );
    ExperimentResult {
        id: "X-heatmap".into(),
        title: "2-D map: optimal speed pair over (lambda, rho), Hera/XScale".into(),
        report,
        datasets: vec![("heatmap_hera_xscale".into(), map.to_csv())],
    }
}

/// Base seed used by [`run_experiment`] for Monte Carlo experiments
/// (kept at the historical value so golden reports stay stable).
pub const DEFAULT_SEED: u64 = 2024;

/// Runs one experiment with the default Monte Carlo seed.
pub fn run_experiment(id: ExperimentId) -> Result<ExperimentResult, HarnessError> {
    run_experiment_seeded(id, DEFAULT_SEED)
}

/// Runs one experiment; `seed` drives its Monte Carlo sampling (most
/// experiments are deterministic and ignore it). An out-of-range figure
/// number surfaces as [`HarnessError::UnknownExperiment`]; per-point
/// solver failures degrade to `ERR(...)`-tagged rows inside the result.
///
/// Instrumented: each run is timed under an `experiment.<id>` span,
/// `sweep.experiments_run` counts completions and `sweep.points` sums
/// the produced data points.
pub fn run_experiment_seeded(
    id: ExperimentId,
    seed: u64,
) -> Result<ExperimentResult, HarnessError> {
    let result = {
        let _timer = rexec_obs::global().span(&format!("experiment.{}", id_string(id)));
        match id {
            ExperimentId::TableRho(rho) => run_table(rho),
            ExperimentId::Figure1 => run_figure1(),
            ExperimentId::Figure(n) => run_figure_2_to_7(n)?,
            ExperimentId::FigureConfig(n) => run_figure_config(n)?,
            ExperimentId::Theorem2 => run_theorem2(),
            ExperimentId::ValidityWindow => run_validity_window(),
            ExperimentId::MonteCarloValidation => run_monte_carlo(seed),
            ExperimentId::MonteCarloMixed => run_monte_carlo_mixed(seed),
            ExperimentId::ExactVsFirstOrder => run_exact_vs_first_order(),
            ExperimentId::OptimalPairRegions => run_optimal_pair_regions(),
            ExperimentId::LambdaRobustness => run_lambda_robustness(),
            ExperimentId::Pareto => run_pareto(),
            ExperimentId::MultiVerification => run_multi_verification(),
            ExperimentId::ContinuousSpeeds => run_continuous_speeds(),
            ExperimentId::Heatmap => run_heatmap(),
            ExperimentId::Laws => run_laws(seed),
        }
    };
    rexec_obs::counter!("sweep.experiments_run").incr();
    rexec_obs::counter!("sweep.points").add(result.point_count() as u64);
    Ok(result)
}

/// Canonical short id of an experiment — the work-unit key used by the
/// run manifest, the CLI and report filenames. Matches the `id` field of
/// the [`ExperimentResult`] the experiment produces (pinned by a test).
pub fn id_string(id: ExperimentId) -> String {
    match id {
        ExperimentId::TableRho(rho) => format!("T-rho{}", fmt_num(rho, 3).replace('.', "_")),
        ExperimentId::Figure1 => "F1".into(),
        ExperimentId::Figure(n) | ExperimentId::FigureConfig(n) => format!("F{n}"),
        ExperimentId::Theorem2 => "X-thm2".into(),
        ExperimentId::ValidityWindow => "X-validity".into(),
        ExperimentId::MonteCarloValidation => "X-mc".into(),
        ExperimentId::MonteCarloMixed => "X-mc-mixed".into(),
        ExperimentId::ExactVsFirstOrder => "X-ablation".into(),
        ExperimentId::OptimalPairRegions => "X-pairs".into(),
        ExperimentId::LambdaRobustness => "X-robust".into(),
        ExperimentId::Pareto => "X-pareto".into(),
        ExperimentId::MultiVerification => "X-multiverif".into(),
        ExperimentId::ContinuousSpeeds => "X-continuous".into(),
        ExperimentId::Heatmap => "X-heatmap".into(),
        ExperimentId::Laws => "X-laws".into(),
    }
}

/// Parses a canonical id (as printed by [`id_string`]) back into an
/// [`ExperimentId`]; dots are accepted where ids use underscores
/// (`T-rho1.775` ≡ `T-rho1_775`).
pub fn parse_id(s: &str) -> Option<ExperimentId> {
    match s {
        "T-rho8" => Some(ExperimentId::TableRho(8.0)),
        "T-rho3" => Some(ExperimentId::TableRho(3.0)),
        "T-rho1_775" | "T-rho1.775" => Some(ExperimentId::TableRho(1.775)),
        "T-rho1_4" | "T-rho1.4" => Some(ExperimentId::TableRho(1.4)),
        "F1" => Some(ExperimentId::Figure1),
        "X-thm2" => Some(ExperimentId::Theorem2),
        "X-validity" => Some(ExperimentId::ValidityWindow),
        "X-mc" => Some(ExperimentId::MonteCarloValidation),
        "X-mc-mixed" => Some(ExperimentId::MonteCarloMixed),
        "X-ablation" => Some(ExperimentId::ExactVsFirstOrder),
        "X-pairs" => Some(ExperimentId::OptimalPairRegions),
        "X-robust" => Some(ExperimentId::LambdaRobustness),
        "X-pareto" => Some(ExperimentId::Pareto),
        "X-multiverif" => Some(ExperimentId::MultiVerification),
        "X-continuous" => Some(ExperimentId::ContinuousSpeeds),
        "X-heatmap" => Some(ExperimentId::Heatmap),
        "X-laws" => Some(ExperimentId::Laws),
        _ => {
            let n: u8 = s.strip_prefix('F')?.parse().ok()?;
            match n {
                2..=7 => Some(ExperimentId::Figure(n)),
                8..=14 => Some(ExperimentId::FigureConfig(n)),
                _ => None,
            }
        }
    }
}

/// Every experiment, in paper order.
pub fn all_experiment_ids() -> Vec<ExperimentId> {
    let mut ids = vec![];
    ids.extend(PAPER_RHOS.map(ExperimentId::TableRho));
    ids.push(ExperimentId::Figure1);
    ids.extend((2..=7).map(ExperimentId::Figure));
    ids.extend((8..=14).map(ExperimentId::FigureConfig));
    ids.push(ExperimentId::Theorem2);
    ids.push(ExperimentId::ValidityWindow);
    ids.push(ExperimentId::MonteCarloValidation);
    ids.push(ExperimentId::MonteCarloMixed);
    ids.push(ExperimentId::ExactVsFirstOrder);
    ids.push(ExperimentId::OptimalPairRegions);
    ids.push(ExperimentId::LambdaRobustness);
    ids.push(ExperimentId::Pareto);
    ids.push(ExperimentId::MultiVerification);
    ids.push(ExperimentId::ContinuousSpeeds);
    ids.push(ExperimentId::Heatmap);
    ids.push(ExperimentId::Laws);
    ids
}

/// The fast subset used by `experiments --quick`: small enough for CI
/// fault-injection smoke runs and in-tree crash/resume tests, while
/// still covering both report-only and dataset-producing units.
pub fn quick_experiment_ids() -> Vec<ExperimentId> {
    vec![
        ExperimentId::TableRho(8.0),
        ExperimentId::TableRho(3.0),
        ExperimentId::ValidityWindow,
        ExperimentId::Figure(4),
        ExperimentId::Theorem2,
        ExperimentId::Laws,
    ]
}

/// Runs the full suite.
pub fn run_all() -> Result<Vec<ExperimentResult>, HarnessError> {
    all_experiment_ids()
        .into_iter()
        .map(run_experiment)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_error_rows_count_per_cause() {
        let g = rexec_obs::global();
        let total_before = g.counter("sweep.point_errors").get();
        let tag_before = g.counter("sweep.err.test-cause").get();
        let row = tagged_error_row("point".into(), 4, "test-cause");
        assert_eq!(row, vec!["point", "-", "-", "ERR(test-cause)"]);
        assert_eq!(g.counter("sweep.point_errors").get(), total_before + 1);
        assert_eq!(g.counter("sweep.err.test-cause").get(), tag_before + 1);
    }

    #[test]
    fn table_experiments_reproduce_paper() {
        let r = run_experiment(ExperimentId::TableRho(3.0)).unwrap();
        assert_eq!(r.id, "T-rho3");
        assert!(r.report.contains("2764"));
        assert!(r.report.contains("416"));
    }

    #[test]
    fn figure1_produces_three_timelines() {
        let r = run_experiment(ExperimentId::Figure1).unwrap();
        assert!(r.report.contains("(a: no error)"));
        assert!(r.report.contains("(b: fail-stop error)"));
        assert!(r.report.contains("(c: silent error)"));
        assert!(r.report.contains("v+"));
        assert!(!r.report.contains("<no matching trace found>"));
    }

    #[test]
    fn figure_experiments_have_csv_datasets() {
        let r = run_experiment(ExperimentId::Figure(4)).unwrap();
        assert_eq!(r.id, "F4");
        assert_eq!(r.datasets.len(), 1);
        assert!(r.datasets[0].1.contains("x,sigma1"));
    }

    #[test]
    fn figure_config_runs_all_six_sweeps() {
        let r = run_experiment(ExperimentId::FigureConfig(8)).unwrap();
        assert_eq!(r.datasets.len(), 6);
        assert!(r.title.contains("Hera/XScale"));
    }

    #[test]
    fn theorem2_slopes_in_report() {
        let r = run_experiment(ExperimentId::Theorem2).unwrap();
        assert!(r.report.contains("-0.6667"), "report: {}", r.report);
        assert!(r.report.contains("-0.5000"));
    }

    #[test]
    fn validity_window_report_has_fail_stop_row() {
        let r = run_experiment(ExperimentId::ValidityWindow).unwrap();
        assert!(r.report.contains("0.7071"), "1/√2 lower bound for f = 1");
    }

    #[test]
    fn ablation_gap_is_small() {
        let r = run_experiment(ExperimentId::ExactVsFirstOrder).unwrap();
        // All eight configs present.
        assert_eq!(r.report.lines().count(), 2 + 8);
    }

    #[test]
    fn point_count_counts_csv_rows_or_report_lines() {
        let r = run_experiment(ExperimentId::Figure(4)).unwrap();
        assert_eq!(r.point_count(), r.datasets[0].1.lines().count() - 1);
        let t = run_experiment(ExperimentId::TableRho(3.0)).unwrap();
        assert!(t.datasets.is_empty() && t.point_count() > 0);
    }

    #[test]
    fn seeded_monte_carlo_is_reproducible() {
        let a = run_experiment_seeded(ExperimentId::MonteCarloValidation, 7).unwrap();
        let b = run_experiment_seeded(ExperimentId::MonteCarloValidation, 7).unwrap();
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn simulated_theorem2_slope_matches_prediction() {
        // Fewer trials than the shipped X-mc-mixed experiment: common
        // random numbers plus the parabola refinement keep the fit
        // tight enough for the ±0.05 acceptance band at debug-build
        // speed.
        let (slope, rows) = simulated_theorem2_slope(DEFAULT_SEED, 20_000);
        assert!(rows.iter().all(|r| r.1.is_some()), "rows: {rows:?}");
        assert!(
            (slope + 2.0 / 3.0).abs() <= 0.05,
            "simulated slope {slope:.4} outside -2/3 +/- 0.05"
        );
    }

    #[test]
    fn id_list_covers_all_artifacts() {
        let ids = all_experiment_ids();
        // 4 tables + F1 + 6 figures + 7 config panels + 12 extras.
        assert_eq!(ids.len(), 4 + 1 + 6 + 7 + 12);
    }

    #[test]
    fn optimal_pair_regions_finds_many_winners() {
        let r = run_experiment(ExperimentId::OptimalPairRegions).unwrap();
        assert!(r.report.contains("distinct optimal pairs"));
        assert!(!r.report.contains("(0.15"));
    }

    #[test]
    fn lambda_robustness_penalties_are_small() {
        let r = run_experiment(ExperimentId::LambdaRobustness).unwrap();
        // The factor-1 row must show a zero penalty.
        assert!(r.report.contains("+0.00%"), "report: {}", r.report);
    }

    #[test]
    fn multi_verification_reports_q_greater_than_one() {
        let r = run_experiment(ExperimentId::MultiVerification).unwrap();
        assert!(r.report.contains("verifications per checkpoint"));
        // At inflated rates the best q must exceed 1 somewhere.
        let qs: Vec<u32> = r
            .report
            .lines()
            .filter(|l| l.contains('('))
            .filter_map(|l| l.split_whitespace().nth(1)?.parse().ok())
            .collect();
        assert!(qs.iter().any(|&q| q > 1), "qs = {qs:?}\n{}", r.report);
    }

    #[test]
    fn continuous_speeds_gap_is_nonnegative() {
        let r = run_experiment(ExperimentId::ContinuousSpeeds).unwrap();
        assert!(r.report.contains("discretization") || r.title.contains("discretization"));
        assert!(
            !r.report.contains("-0."),
            "gaps must be >= 0:\n{}",
            r.report
        );
    }

    #[test]
    fn heatmap_experiment_has_map_and_csv() {
        let r = run_experiment(ExperimentId::Heatmap).unwrap();
        assert!(r.report.contains("legend:"));
        assert_eq!(r.datasets.len(), 1);
    }

    #[test]
    fn laws_experiment_validates_every_scenario() {
        let r = run_experiment_seeded(ExperimentId::Laws, DEFAULT_SEED).unwrap();
        for row in [
            "exponential",
            "weibull k=0.7",
            "weibull k=1.5",
            "lognormal s=1",
            "schedule (0.4,0.6,1)",
            "deadline solve",
        ] {
            assert!(r.report.contains(row), "missing `{row}`:\n{}", r.report);
        }
        assert!(r.report.contains("bit-identical"), "{}", r.report);
        assert!(
            !r.report.contains("MISS") && !r.report.contains("ERR"),
            "{}",
            r.report
        );
        assert!(r.report.contains("All checks passed"), "{}", r.report);
        assert_eq!(r.datasets.len(), 1);
        // Seeded reproducibility: the whole report, CSV included, is a
        // pure function of the seed.
        let again = run_experiment_seeded(ExperimentId::Laws, DEFAULT_SEED).unwrap();
        assert_eq!(r.report, again.report);
        assert_eq!(r.datasets, again.datasets);
    }

    #[test]
    fn pareto_experiment_produces_two_datasets() {
        let r = run_experiment(ExperimentId::Pareto).unwrap();
        assert_eq!(r.datasets.len(), 2);
        assert!(r.report.contains("Hera/XScale"));
        assert!(r.report.contains("Atlas/Crusoe"));
    }
}
