//! The sharded plan cache.
//!
//! Keyed by the table hash plus quantized ρ; values are fully solved
//! plans. Because quantization happens *before* solving (see
//! [`crate::quant`]), a cached value is byte-for-byte what a fresh
//! solve of the same key would produce — the cache can change latency,
//! never answers.
//!
//! Sharding bounds lock contention: a query locks exactly one shard,
//! chosen by the key hash. Each shard is FIFO-bounded; eviction order
//! is the shard's insertion order, so with a single writer the victim
//! sequence is fully deterministic (pinned by a test in
//! `service.rs`). Hash collisions are survivable by construction:
//! buckets compare the full table params and ρ bits before declaring a
//! hit, so a collision costs a compare, not a wrong plan.

use crate::quant::{plan_hash, TableParams};
use rexec_core::BiCritSolution;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A solved, cacheable plan: the answer to one `(table, ρ)` key.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The table digest (`fnv1a:<16 hex>`), shared across all plans of
    /// one table.
    pub digest: Arc<str>,
    /// The solution; `None` when ρ is infeasible for the table.
    pub solution: Option<BiCritSolution>,
    /// Smallest feasible ρ, reported when `solution` is `None`.
    pub min_rho: Option<f64>,
}

struct Entry {
    rho_bits: u64,
    table: TableParams,
    plan: CachedPlan,
}

#[derive(Default)]
struct Shard {
    /// Key-hash → entries (len > 1 only under a 64-bit collision).
    buckets: HashMap<u64, Vec<Entry>>,
    /// Insertion order of key hashes — the FIFO eviction queue.
    order: VecDeque<u64>,
}

/// Monotonic cache counters (also mirrored into rexec-obs by the
/// service layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a solve.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

/// Sharded, capacity-bounded plan cache.
pub struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans across `shards` shards
    /// (each shard bounded by its share, rounded up).
    pub fn new(capacity: usize, shards: usize) -> PlanCache {
        let shards = shards.max(1);
        let shard_cap = capacity.div_ceil(shards).max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Looks up the plan for `(table, ρ)`; counts a hit or a miss.
    pub fn get(&self, table: &TableParams, table_hash: u64, rho: f64) -> Option<CachedPlan> {
        let key = plan_hash(table_hash, rho);
        let rho_bits = rho.to_bits();
        let shard = self.shard_for(key).lock().expect("cache shard poisoned");
        let hit = shard.buckets.get(&key).and_then(|bucket| {
            bucket
                .iter()
                .find(|e| e.rho_bits == rho_bits && e.table.same(table))
                .map(|e| e.plan.clone())
        });
        drop(shard);
        match hit {
            Some(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts the plan for `(table, ρ)` unless an entry already exists
    /// (concurrent solvers of the same key insert identical values, so
    /// first-wins keeps the FIFO queue duplicate-free). Evicts the
    /// shard's oldest entry when over capacity.
    pub fn insert(&self, table: &TableParams, table_hash: u64, rho: f64, plan: CachedPlan) {
        let key = plan_hash(table_hash, rho);
        let rho_bits = rho.to_bits();
        let mut shard = self.shard_for(key).lock().expect("cache shard poisoned");
        let bucket = shard.buckets.entry(key).or_default();
        if bucket
            .iter()
            .any(|e| e.rho_bits == rho_bits && e.table.same(table))
        {
            return;
        }
        bucket.push(Entry {
            rho_bits,
            table: table.clone(),
            plan,
        });
        shard.order.push_back(key);
        while shard.order.len() > self.shard_cap {
            let victim = shard.order.pop_front().expect("order non-empty over cap");
            if let Some(bucket) = shard.buckets.get_mut(&victim) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                if bucket.is_empty() {
                    shard.buckets.remove(&victim);
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached plans (test/diagnostic use; takes every shard
    /// lock).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").order.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rexec_core::{PowerModel, ResilienceCosts, SilentModel, SpeedSet};

    fn table(lambda: f64) -> TableParams {
        let model = SilentModel::new(
            lambda,
            ResilienceCosts::new(300.0, 15.4, 300.0).unwrap(),
            PowerModel::new(1550.0, 60.0, 5.23).unwrap(),
        )
        .unwrap();
        TableParams::new(&model, &SpeedSet::new(vec![0.15, 1.0]).unwrap())
    }

    fn plan(tag: f64) -> CachedPlan {
        CachedPlan {
            digest: Arc::from("fnv1a:0000000000000000"),
            solution: None,
            min_rho: Some(tag),
        }
    }

    #[test]
    fn get_insert_round_trip_and_counters() {
        let cache = PlanCache::new(8, 2);
        let t = table(1e-6);
        let h = t.hash64();
        assert!(cache.get(&t, h, 3.0).is_none());
        cache.insert(&t, h, 3.0, plan(1.0));
        let hit = cache.get(&t, h, 3.0).expect("inserted key hits");
        assert_eq!(hit.min_rho, Some(1.0));
        assert!(cache.get(&t, h, 2.0).is_none(), "other rho misses");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                evictions: 0
            }
        );
    }

    #[test]
    fn capacity_bound_evicts_fifo_per_shard() {
        // One shard makes the global FIFO order observable.
        let cache = PlanCache::new(2, 1);
        let t = table(1e-6);
        let h = t.hash64();
        cache.insert(&t, h, 1.0, plan(1.0));
        cache.insert(&t, h, 2.0, plan(2.0));
        cache.insert(&t, h, 3.0, plan(3.0)); // evicts rho=1.0
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&t, h, 1.0).is_none(), "oldest entry evicted");
        assert!(cache.get(&t, h, 2.0).is_some());
        assert!(cache.get(&t, h, 3.0).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn duplicate_insert_is_a_no_op() {
        let cache = PlanCache::new(4, 1);
        let t = table(1e-6);
        let h = t.hash64();
        cache.insert(&t, h, 1.0, plan(1.0));
        cache.insert(&t, h, 1.0, plan(99.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&t, h, 1.0).unwrap().min_rho, Some(1.0));
    }

    #[test]
    fn distinct_tables_do_not_collide() {
        let cache = PlanCache::new(8, 4);
        let (a, b) = (table(1e-6), table(2e-6));
        cache.insert(&a, a.hash64(), 3.0, plan(1.0));
        assert!(cache.get(&b, b.hash64(), 3.0).is_none());
        cache.insert(&b, b.hash64(), 3.0, plan(2.0));
        assert_eq!(cache.get(&a, a.hash64(), 3.0).unwrap().min_rho, Some(1.0));
        assert_eq!(cache.get(&b, b.hash64(), 3.0).unwrap().min_rho, Some(2.0));
    }
}
