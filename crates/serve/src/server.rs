//! The TCP daemon: accept loop → bounded queue → batch workers →
//! per-connection reorder writers.
//!
//! ```text
//!  clients ──► accept loop ──► reader (per conn) ──► bounded MPSC queue
//!                                                        │
//!                              batch workers ×W ◄────────┘
//!                        (drain ≤ N jobs or T µs window, then one
//!                         PlanService::plan_batch over the batch)
//!                                    │ (seq, response line)
//!                              writer (per conn): reorders by seq,
//!                              writes responses in request order
//! ```
//!
//! Ordering: each reader stamps requests with a per-connection sequence
//! number; workers answer out of order (batches interleave connections
//! freely) and the writer holds a reorder buffer, so every connection
//! sees responses in exactly request order no matter the batch window
//! or worker count.
//!
//! Graceful shutdown ([`Server::shutdown`], or SIGTERM/ctrl-c in the
//! binary): the accept loop closes the listener (new connections are
//! refused), readers keep draining already-open connections until EOF
//! or the drain deadline, workers finish the queue, writers flush every
//! response, and [`Server::join`] finally writes the Prometheus metrics
//! file. Every request read off a socket gets a response.

use crate::service::{PlanService, Query, ServiceConfig};
use crate::wire;
use rexec_obs::{counter, gauge, sketch, RollingWindow};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Batch worker threads.
    pub workers: usize,
    /// Flush a batch at this many requests...
    pub batch_max: usize,
    /// ...or when the oldest request has waited this long (µs),
    /// whichever comes first.
    pub batch_window_us: u64,
    /// Bounded request-queue depth (readers block when full — TCP
    /// backpressure instead of unbounded memory).
    pub queue_cap: usize,
    /// How long shutdown waits for open connections to reach EOF
    /// before abandoning their sockets.
    pub drain_secs: f64,
    /// Planning-core tuning.
    pub service: ServiceConfig,
    /// Write the final Prometheus metrics exposition here on shutdown.
    pub metrics_prom: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            batch_max: 128,
            batch_window_us: 200,
            queue_cap: 1024,
            drain_secs: 5.0,
            service: ServiceConfig::default(),
            metrics_prom: None,
        }
    }
}

/// Final tallies returned by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines read off sockets.
    pub requests: u64,
    /// Response lines written (success + error responses).
    pub responses: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Plan-cache counters.
    pub cache: crate::cache::CacheStats,
}

/// One queued request.
struct Job {
    resp: Sender<(u64, String)>,
    seq: u64,
    line: String,
    t: Instant,
}

struct Inner {
    service: PlanService,
    opts: ServeOptions,
    stop: AtomicBool,
    stop_at: Mutex<Option<Instant>>,
    started: Instant,
    latency: RollingWindow,
    connections: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    errors: AtomicU64,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn drain_deadline(&self) -> Option<Instant> {
        let stop_at = (*self.stop_at.lock().expect("stop_at poisoned"))?;
        Some(stop_at + Duration::from_secs_f64(self.opts.drain_secs))
    }
}

/// A running daemon. Obtain with [`Server::start`]; stop with
/// [`Server::shutdown`] + [`Server::join`].
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the accept loop and worker pool.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            service: PlanService::new(opts.service.clone()),
            stop: AtomicBool::new(false),
            stop_at: Mutex::new(None),
            started: Instant::now(),
            latency: RollingWindow::new(8, 0.5),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            conn_threads: Mutex::new(Vec::new()),
            opts,
        });

        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(inner.opts.queue_cap.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..inner.opts.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&inner, listener, job_tx))
                .expect("spawn accept loop")
        };
        Ok(Server {
            inner,
            local_addr,
            accept,
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests shutdown: stop accepting, drain in-flight work.
    /// Idempotent; returns immediately — follow with [`Server::join`].
    pub fn shutdown(&self) {
        if !self.inner.stop.swap(true, Ordering::SeqCst) {
            *self.inner.stop_at.lock().expect("stop_at poisoned") = Some(Instant::now());
        }
    }

    /// Waits for the drain to complete (bounded by `drain_secs` past
    /// the shutdown request), flushes metrics, and reports tallies.
    pub fn join(self) -> ServeReport {
        self.accept.join().expect("accept loop panicked");
        // The accept loop has exited, so conn_threads is complete.
        let conns = std::mem::take(&mut *self.inner.conn_threads.lock().expect("threads"));
        for handle in conns {
            handle.join().expect("connection thread panicked");
        }
        for worker in self.workers {
            worker.join().expect("worker panicked");
        }
        publish_metrics(&self.inner);
        if let Some(path) = &self.inner.opts.metrics_prom {
            let text = rexec_obs::prometheus_text(rexec_obs::global());
            if let Err(e) = rexec_harness::atomic_write_simple(path, text.as_bytes()) {
                eprintln!("[rexec-serve] failed to write {}: {e}", path.display());
            }
        }
        ServeReport {
            connections: self.inner.connections.load(Ordering::Relaxed),
            requests: self.inner.requests.load(Ordering::Relaxed),
            responses: self.inner.responses.load(Ordering::Relaxed),
            errors: self.inner.errors.load(Ordering::Relaxed),
            cache: self.inner.service.cache_stats(),
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener, job_tx: SyncSender<Job>) {
    while !inner.stopped() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.connections.fetch_add(1, Ordering::Relaxed);
                counter!("serve.connections").incr();
                spawn_connection(inner, stream, job_tx.clone());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping the listener here closes the socket: new connections are
    // refused while existing ones drain. Dropping job_tx lets workers
    // exit once every reader is done.
}

fn spawn_connection(inner: &Arc<Inner>, stream: TcpStream, job_tx: SyncSender<Job>) {
    stream.set_nodelay(true).ok();
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return, // connection already dead
    };
    let (resp_tx, resp_rx) = mpsc::channel::<(u64, String)>();
    let reader = {
        let inner = Arc::clone(inner);
        std::thread::Builder::new()
            .name("serve-conn-reader".into())
            .spawn(move || reader_loop(&inner, stream, job_tx, resp_tx))
            .expect("spawn reader")
    };
    let writer = {
        let inner = Arc::clone(inner);
        std::thread::Builder::new()
            .name("serve-conn-writer".into())
            .spawn(move || writer_loop(&inner, write_half, resp_rx))
            .expect("spawn writer")
    };
    let mut threads = inner.conn_threads.lock().expect("threads");
    threads.push(reader);
    threads.push(writer);
}

/// Reads newline-delimited requests until EOF (or the drain deadline
/// after shutdown) and queues them with per-connection sequence
/// numbers. Dropping `resp_tx` at exit is what lets the writer finish.
fn reader_loop(
    inner: &Arc<Inner>,
    mut stream: TcpStream,
    job_tx: SyncSender<Job>,
    resp_tx: Sender<(u64, String)>,
) {
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .ok();
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 8192];
    let mut seq = 0u64;
    let queue_line = |line: &[u8], seq: &mut u64| -> bool {
        let text = String::from_utf8_lossy(line);
        let text = text.trim_end_matches(['\r', '\n']);
        if text.trim().is_empty() {
            return true; // blank keep-alive lines are not requests
        }
        *seq += 1;
        inner.requests.fetch_add(1, Ordering::Relaxed);
        counter!("serve.requests").incr();
        job_tx
            .send(Job {
                resp: resp_tx.clone(),
                seq: *seq,
                line: text.to_string(),
                t: Instant::now(),
            })
            .is_ok()
    };
    'conn: loop {
        if let Some(deadline) = inner.drain_deadline() {
            if Instant::now() >= deadline {
                break; // shutdown drain expired; abandon the socket
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF: client is done sending
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    if !queue_line(&line, &mut seq) {
                        break 'conn; // workers are gone
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break, // reset / broken pipe: nothing left to read
        }
    }
    // A final unterminated line still counts as a request.
    if !pending.is_empty() {
        queue_line(&pending, &mut seq);
    }
}

/// Receives `(seq, response)` pairs from the workers and writes them in
/// sequence order, holding out-of-order arrivals in a reorder buffer.
fn writer_loop(inner: &Arc<Inner>, stream: TcpStream, resp_rx: Receiver<(u64, String)>) {
    let mut out = std::io::BufWriter::new(stream);
    let mut next_seq = 1u64;
    let mut reorder: BTreeMap<u64, String> = BTreeMap::new();
    let write_ready = |reorder: &mut BTreeMap<u64, String>,
                       next_seq: &mut u64,
                       out: &mut std::io::BufWriter<TcpStream>|
     -> bool {
        while let Some(text) = reorder.remove(next_seq) {
            if out.write_all(text.as_bytes()).is_err() {
                return false;
            }
            inner.responses.fetch_add(1, Ordering::Relaxed);
            counter!("serve.responses").incr();
            *next_seq += 1;
        }
        true
    };
    'writer: while let Ok((seq, text)) = resp_rx.recv() {
        reorder.insert(seq, text);
        // Drain whatever else is already queued before flushing once.
        while let Ok((seq, text)) = resp_rx.try_recv() {
            reorder.insert(seq, text);
        }
        if !write_ready(&mut reorder, &mut next_seq, &mut out) {
            break 'writer;
        }
        if out.flush().is_err() {
            break 'writer;
        }
    }
    // Channel closed: reader finished and every job was answered.
    write_ready(&mut reorder, &mut next_seq, &mut out);
    out.flush().ok();
    if let Ok(stream) = out.into_inner() {
        stream.shutdown(std::net::Shutdown::Both).ok();
    }
}

/// Drains the queue into batches (≤ `batch_max` jobs or the batch
/// window, whichever first) and answers each batch through one
/// `plan_batch` sweep.
fn worker_loop(inner: &Arc<Inner>, rx: &Mutex<Receiver<Job>>) {
    let window = Duration::from_micros(inner.opts.batch_window_us.max(1));
    let batch_max = inner.opts.batch_max.max(1);
    let mut batch: Vec<Job> = Vec::with_capacity(batch_max);
    let mut queries: Vec<Query> = Vec::new();
    let mut answers = Vec::new();
    loop {
        batch.clear();
        {
            let rx = rx.lock().expect("job queue poisoned");
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(job) => {
                    batch.push(job);
                    let deadline = Instant::now() + window;
                    while batch.len() < batch_max {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(job) => batch.push(job),
                            Err(_) => break,
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        process_batch(inner, &batch, &mut queries, &mut answers);
    }
}

fn process_batch(
    inner: &Arc<Inner>,
    batch: &[Job],
    queries: &mut Vec<Query>,
    answers: &mut Vec<crate::service::PlanAnswer>,
) {
    sketch!("serve.batch.occupancy").record(batch.len() as f64);
    // Parse and resolve every job; valid ones join the solve batch.
    queries.clear();
    let mut parsed: Vec<(Option<u64>, Result<usize, wire::WireError>)> =
        Vec::with_capacity(batch.len());
    for job in batch {
        let (id, result) = wire::parse_request(&job.line);
        match result {
            Ok(spec) => match inner.service.resolve(&spec) {
                Ok(query) => {
                    parsed.push((id, Ok(queries.len())));
                    queries.push(query);
                }
                Err(e) => parsed.push((id, Err(wire::wire_error_from_spec(&e)))),
            },
            Err(e) => parsed.push((id, Err(e))),
        }
    }
    inner.service.plan_batch(queries, answers);
    // Render and dispatch responses; record per-request latency.
    let mut line = String::new();
    for (job, (id, result)) in batch.iter().zip(&parsed) {
        line.clear();
        match result {
            Ok(query_idx) => wire::render_answer(&mut line, *id, &answers[*query_idx]),
            Err(e) => {
                inner.errors.fetch_add(1, Ordering::Relaxed);
                counter!("serve.wire_errors").incr();
                wire::render_error(&mut line, *id, e);
            }
        }
        line.push('\n');
        job.resp.send((job.seq, line.clone())).ok();
        let latency = job.t.elapsed().as_secs_f64();
        inner
            .latency
            .record_at(inner.started.elapsed().as_secs_f64(), latency);
    }
    publish_metrics(inner);
}

/// Publishes the rolling-window gauges: `serve.qps`,
/// `serve.latency.p50` / `.p99` / `.per_sec`, and the cache hit rate.
fn publish_metrics(inner: &Arc<Inner>) {
    let stats = inner.latency.publish_at(
        rexec_obs::global(),
        "serve.latency",
        inner.started.elapsed().as_secs_f64(),
    );
    gauge!("serve.qps").set(stats.events_per_sec);
    let cache = inner.service.cache_stats();
    let lookups = cache.hits + cache.misses;
    if lookups > 0 {
        gauge!("serve.cache.hit_rate").set(cache.hits as f64 / lookups as f64);
    }
    gauge!("serve.cache.evictions").set(cache.evictions as f64);
}

/// SIGINT/SIGTERM → drain-and-exit flag for the daemon binary.
#[cfg(unix)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_stop(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    /// Installs SIGINT and SIGTERM handlers that set the stop flag
    /// (async-signal-safe: one atomic store).
    pub fn install() {
        unsafe {
            signal(SIGINT, on_stop as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_stop as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn stop_requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}
