//! The planning service core: resolve → quantize → (cache | batch-solve).
//!
//! [`PlanService`] is the transport-free heart of `rexec-serve`: it owns
//! the solver cache (one [`BiCritSolver`] per distinct quantized table,
//! so the O(K²) candidate table is built once per platform, not per
//! query) and the sharded plan cache. The TCP daemon, the loadgen bench
//! stage and the in-process tests all drive exactly this type, so what
//! the benchmarks measure is what the daemon serves.
//!
//! Determinism contract: an answer is a pure function of the quantized
//! query. Cache state, batch boundaries and worker interleavings can
//! change *when* a plan is computed, never *what* it is — `solve_many_into`
//! is bit-identical to the scalar solver (pinned in rexec-core), and
//! both paths consume the same quantized [`TableParams`].

use crate::cache::{CachedPlan, PlanCache};
use crate::quant::TableParams;
use rexec_cli::spec::{PlanSpec, SpecError};
use rexec_core::{BiCritSolution, BiCritSolver};
use rexec_obs::counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Plan-cache capacity in plans; `0` disables the plan cache
    /// entirely (every query solves — the bench baseline).
    pub plan_cache_capacity: usize,
    /// Plan-cache shard count (lock granularity).
    pub plan_cache_shards: usize,
    /// Maximum distinct solver tables kept resident (MRU).
    pub solver_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            plan_cache_capacity: 65_536,
            plan_cache_shards: 16,
            solver_cache_capacity: 64,
        }
    }
}

/// A resolved, quantized query: everything the solver needs, nothing it
/// doesn't. Produced by [`PlanService::resolve`].
#[derive(Debug, Clone)]
pub struct Query {
    /// Canonical quantized table parameters.
    pub table: TableParams,
    /// Precomputed [`TableParams::hash64`].
    pub table_hash: u64,
    /// Quantized performance bound ρ.
    pub rho: f64,
}

/// The answer to one query.
#[derive(Debug, Clone)]
pub struct PlanAnswer {
    /// Digest of the table that answered (`fnv1a:<16 hex>`).
    pub digest: Arc<str>,
    /// The quantized ρ the plan was solved for.
    pub rho: f64,
    /// The optimal plan, or `None` when ρ is infeasible.
    pub solution: Option<BiCritSolution>,
    /// Smallest feasible ρ for the table, present when infeasible.
    pub min_rho: Option<f64>,
}

/// One resident solver: the quantized table, its digest, the built
/// candidate table, and the lazily computed feasibility floor.
struct SolverEntry {
    table: TableParams,
    hash: u64,
    digest: Arc<str>,
    solver: BiCritSolver,
    min_rho: OnceLock<f64>,
}

impl SolverEntry {
    fn min_rho(&self) -> f64 {
        *self.min_rho.get_or_init(|| self.solver.min_feasible_rho())
    }
}

/// The transport-free planning service.
pub struct PlanService {
    cache: Option<PlanCache>,
    solvers: Mutex<Vec<Arc<SolverEntry>>>,
    solver_cap: usize,
    solver_builds: AtomicU64,
    solver_hits: AtomicU64,
}

impl PlanService {
    /// Builds a service with the given tuning.
    pub fn new(config: ServiceConfig) -> PlanService {
        PlanService {
            cache: (config.plan_cache_capacity > 0)
                .then(|| PlanCache::new(config.plan_cache_capacity, config.plan_cache_shards)),
            solvers: Mutex::new(Vec::new()),
            solver_cap: config.solver_cache_capacity.max(1),
            solver_builds: AtomicU64::new(0),
            solver_hits: AtomicU64::new(0),
        }
    }

    /// Validates and resolves a spec through the shared CLI rule table,
    /// then quantizes it into the canonical query form.
    ///
    /// The service answers exactly the paper's mean-bounded two-speed
    /// plan; the scenario extensions (non-exponential laws via
    /// `spec.resolve()`, schedule search, quantile bounds here) are
    /// rejected with a typed error instead of being silently ignored.
    pub fn resolve(&self, spec: &PlanSpec) -> Result<Query, SpecError> {
        if spec.schedule_depth.is_some() {
            return Err(SpecError::Unsupported {
                field: "schedule_depth",
                reason: "the planning service answers the two-speed plan; re-execution \
                         schedule search is CLI-only (rexec-plan --schedule-depth)",
            });
        }
        if spec.quantile.is_some() {
            return Err(SpecError::Unsupported {
                field: "quantile",
                reason: "the planning service bounds the expected overhead; \
                         deadline-constrained planning is CLI-only (rexec-plan --quantile)",
            });
        }
        let resolved = spec.resolve()?;
        let table = TableParams::new(&resolved.model, &resolved.speeds);
        let table_hash = table.hash64();
        Ok(Query {
            table_hash,
            rho: crate::quant::quantize(resolved.rho),
            table,
        })
    }

    /// The resident solver for a table, building (and digesting) it on
    /// first sight. MRU with a capacity bound: the busiest tables stay
    /// at the front, the least recently used entry is dropped when over
    /// capacity.
    fn solver_entry(&self, table: &TableParams, hash: u64) -> Arc<SolverEntry> {
        let mut solvers = self.solvers.lock().expect("solver cache poisoned");
        if let Some(pos) = solvers
            .iter()
            .position(|e| e.hash == hash && e.table.same(table))
        {
            counter!("serve.solver.hits").incr();
            self.solver_hits.fetch_add(1, Ordering::Relaxed);
            let entry = solvers.remove(pos);
            solvers.insert(0, Arc::clone(&entry));
            return entry;
        }
        counter!("serve.solver.builds").incr();
        self.solver_builds.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(SolverEntry {
            table: table.clone(),
            hash,
            digest: Arc::from(table.digest().as_str()),
            solver: table.to_solver(),
            min_rho: OnceLock::new(),
        });
        solvers.insert(0, Arc::clone(&entry));
        solvers.truncate(self.solver_cap);
        entry
    }

    fn answer_from(plan: CachedPlan, rho: f64) -> PlanAnswer {
        PlanAnswer {
            digest: plan.digest,
            rho,
            solution: plan.solution,
            min_rho: plan.min_rho,
        }
    }

    fn solve_one(&self, entry: &SolverEntry, rho: f64) -> CachedPlan {
        let solution = entry.solver.solve(rho);
        CachedPlan {
            digest: Arc::clone(&entry.digest),
            solution,
            min_rho: solution.is_none().then(|| entry.min_rho()),
        }
    }

    /// One-query-per-solve path: cache probe, then a scalar solve on a
    /// miss. This is the unbatched baseline the bench stage compares
    /// against (with the plan cache disabled it is exactly
    /// "resolve + `BiCritSolver::solve` per query").
    pub fn plan(&self, query: &Query) -> PlanAnswer {
        if let Some(cache) = &self.cache {
            if let Some(plan) = cache.get(&query.table, query.table_hash, query.rho) {
                counter!("serve.cache.hits").incr();
                return Self::answer_from(plan, query.rho);
            }
            counter!("serve.cache.misses").incr();
        }
        let entry = self.solver_entry(&query.table, query.table_hash);
        let plan = self.solve_one(&entry, query.rho);
        if let Some(cache) = &self.cache {
            cache.insert(&query.table, query.table_hash, query.rho, plan.clone());
        }
        Self::answer_from(plan, query.rho)
    }

    /// Convenience: resolve + [`plan`](Self::plan) in one call.
    pub fn plan_spec(&self, spec: &PlanSpec) -> Result<PlanAnswer, SpecError> {
        Ok(self.plan(&self.resolve(spec)?))
    }

    /// The batched path: probe the cache for every query, group the
    /// misses by table, and push each group's distinct ρ values through
    /// the zero-allocation `solve_many_into` struct-of-arrays kernel in
    /// one sweep. Answers land in `out` in query order.
    pub fn plan_batch(&self, queries: &[Query], out: &mut Vec<PlanAnswer>) {
        out.clear();
        out.reserve(queries.len());
        // Pass 1: cache probes; misses keep their output slot pending.
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let hit = self
                .cache
                .as_ref()
                .and_then(|c| c.get(&q.table, q.table_hash, q.rho));
            match hit {
                Some(plan) => {
                    counter!("serve.cache.hits").incr();
                    out.push(Self::answer_from(plan, q.rho));
                }
                None => {
                    if self.cache.is_some() {
                        counter!("serve.cache.misses").incr();
                    }
                    miss_idx.push(i);
                    out.push(PlanAnswer {
                        digest: Arc::from(""),
                        rho: q.rho,
                        solution: None,
                        min_rho: None,
                    });
                }
            }
        }
        if miss_idx.is_empty() {
            return;
        }
        // Pass 2: group misses by table (first-seen order), dedup ρ
        // within each group, and solve each group in one batched sweep.
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for &i in &miss_idx {
            let h = queries[i].table_hash;
            match groups.iter_mut().find(|(gh, _)| *gh == h) {
                Some((_, members)) => members.push(i),
                None => groups.push((h, vec![i])),
            }
        }
        let mut rhos: Vec<f64> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::new(); // per member: index into rhos
        let mut solutions: Vec<Option<BiCritSolution>> = Vec::new();
        for (hash, members) in &groups {
            let entry = self.solver_entry(&queries[members[0]].table, *hash);
            rhos.clear();
            slot_of.clear();
            for &i in members {
                let bits = queries[i].rho.to_bits();
                let slot = match rhos.iter().position(|r| r.to_bits() == bits) {
                    Some(s) => s,
                    None => {
                        rhos.push(queries[i].rho);
                        rhos.len() - 1
                    }
                };
                slot_of.push(slot);
            }
            entry.solver.solve_many_into(&rhos, &mut solutions);
            for (m, &i) in members.iter().enumerate() {
                let solution = solutions[slot_of[m]];
                let plan = CachedPlan {
                    digest: Arc::clone(&entry.digest),
                    solution,
                    min_rho: solution.is_none().then(|| entry.min_rho()),
                };
                if let Some(cache) = &self.cache {
                    cache.insert(
                        &queries[i].table,
                        queries[i].table_hash,
                        queries[i].rho,
                        plan.clone(),
                    );
                }
                out[i] = Self::answer_from(plan, queries[i].rho);
            }
        }
    }

    /// Plan-cache counter snapshot (zeros when the cache is disabled).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.as_ref().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of resident solver tables.
    pub fn resident_solvers(&self) -> usize {
        self.solvers.lock().expect("solver cache poisoned").len()
    }

    /// `(builds, hits)` of the solver cache for this service instance.
    pub fn solver_stats(&self) -> (u64, u64) {
        (
            self.solver_builds.load(Ordering::Relaxed),
            self.solver_hits.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(platform: &str, rho: f64) -> PlanSpec {
        PlanSpec {
            platform: Some(platform.into()),
            processor: Some("xscale".into()),
            rho: Some(rho),
            ..PlanSpec::default()
        }
    }

    fn service() -> PlanService {
        PlanService::new(ServiceConfig::default())
    }

    #[test]
    fn hit_is_bit_identical_to_fresh_solve() {
        let svc = service();
        let q = svc.resolve(&spec("hera", 3.0)).unwrap();
        let first = svc.plan(&q); // miss: solves
        let second = svc.plan(&q); // hit: cached
        assert_eq!(first.solution, second.solution);
        assert_eq!(first.digest, second.digest);
        // ...and both equal a solver built directly from the table.
        let fresh = q.table.to_solver().solve(q.rho);
        assert_eq!(first.solution, fresh);
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn table_change_changes_digest_and_misses() {
        let svc = service();
        let hera = svc.plan_spec(&spec("hera", 3.0)).unwrap();
        let atlas = svc.plan_spec(&spec("atlas", 3.0)).unwrap();
        assert_ne!(hera.digest, atlas.digest, "digest tracks the table");
        assert_eq!(svc.cache_stats().misses, 2, "no cross-table hit");
        assert_eq!(svc.resident_solvers(), 2);
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit_and_fills_cache() {
        let svc = service();
        let queries: Vec<Query> = [1.5, 3.0, 5.0, 3.0, 0.5]
            .iter()
            .map(|&rho| svc.resolve(&spec("hera", rho)).unwrap())
            .collect();
        let mut batched = Vec::new();
        svc.plan_batch(&queries, &mut batched);
        let reference = PlanService::new(ServiceConfig {
            plan_cache_capacity: 0,
            ..ServiceConfig::default()
        });
        for (q, b) in queries.iter().zip(&batched) {
            let scalar = reference.plan(q);
            assert_eq!(b.solution, scalar.solution, "rho = {}", q.rho);
            assert_eq!(b.min_rho, scalar.min_rho);
            assert_eq!(b.digest, scalar.digest);
        }
        // Re-planning the same batch is now all hits.
        let before = svc.cache_stats().hits;
        let mut again = Vec::new();
        svc.plan_batch(&queries, &mut again);
        assert_eq!(svc.cache_stats().hits, before + queries.len() as u64);
        for (a, b) in batched.iter().zip(&again) {
            assert_eq!(a.solution, b.solution);
        }
    }

    #[test]
    fn infeasible_reports_the_feasibility_floor() {
        let svc = service();
        let a = svc.plan_spec(&spec("hera", 1.0)).unwrap();
        assert!(a.solution.is_none());
        let floor = a.min_rho.expect("infeasible answers carry min_rho");
        assert!(floor > 1.0);
        // The floor itself is feasible.
        let at_floor = svc.plan_spec(&spec("hera", floor + 1e-6)).unwrap();
        assert!(at_floor.solution.is_some());
    }

    #[test]
    fn cache_off_and_cache_on_agree() {
        let on = service();
        let off = PlanService::new(ServiceConfig {
            plan_cache_capacity: 0,
            ..ServiceConfig::default()
        });
        for rho in [1.2, 1.775, 2.5, 3.0, 10.0] {
            for platform in ["hera", "atlas", "coastal"] {
                let s = spec(platform, rho);
                let a = on.plan_spec(&s).unwrap();
                let b = off.plan_spec(&s).unwrap();
                // Twice on the caching service: second is a hit.
                let c = on.plan_spec(&s).unwrap();
                assert_eq!(a.solution, b.solution);
                assert_eq!(a.solution, c.solution);
                assert_eq!(a.min_rho, b.min_rho);
            }
        }
        assert_eq!(off.cache_stats(), crate::cache::CacheStats::default());
    }

    #[test]
    fn deterministic_eviction_under_capacity_pressure() {
        // Single shard, capacity 3: inserting rhos 1..=4 must evict
        // exactly the first, in order.
        let svc = PlanService::new(ServiceConfig {
            plan_cache_capacity: 3,
            plan_cache_shards: 1,
            ..ServiceConfig::default()
        });
        for rho in [2.0, 3.0, 4.0, 5.0] {
            svc.plan_spec(&spec("hera", rho)).unwrap();
        }
        assert_eq!(svc.cached_plans(), 3);
        assert_eq!(svc.cache_stats().evictions, 1);
        // rho=2.0 was evicted: re-planning it misses (and evicts 3.0).
        svc.plan_spec(&spec("hera", 2.0)).unwrap();
        let stats = svc.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.evictions, 2);
        // 4.0 and 5.0 survived both evictions.
        svc.plan_spec(&spec("hera", 4.0)).unwrap();
        svc.plan_spec(&spec("hera", 5.0)).unwrap();
        assert_eq!(svc.cache_stats().hits, 2);
    }

    #[test]
    fn solver_cache_is_mru_bounded() {
        let svc = PlanService::new(ServiceConfig {
            solver_cache_capacity: 2,
            ..ServiceConfig::default()
        });
        for p in ["hera", "atlas", "coastal"] {
            svc.plan_spec(&spec(p, 3.0)).unwrap();
        }
        assert_eq!(svc.resident_solvers(), 2, "capacity bound holds");
        // hera (least recently used) was dropped; coastal and atlas
        // resident. Touching atlas is a solver hit, hera a rebuild.
        let (before, _) = svc.solver_stats();
        svc.plan_spec(&spec("atlas", 4.0)).unwrap();
        assert_eq!(svc.solver_stats().0, before);
        svc.plan_spec(&spec("hera", 4.0)).unwrap();
        assert_eq!(svc.solver_stats().0, before + 1);
    }

    #[test]
    fn scenario_extensions_are_typed_unsupported_errors() {
        let svc = service();
        let sched = PlanSpec {
            schedule_depth: Some(2),
            ..spec("hera", 3.0)
        };
        assert!(matches!(
            svc.plan_spec(&sched),
            Err(SpecError::Unsupported {
                field: "schedule_depth",
                ..
            })
        ));
        let deadline = PlanSpec {
            quantile: Some(0.99),
            ..spec("hera", 3.0)
        };
        assert!(matches!(
            svc.plan_spec(&deadline),
            Err(SpecError::Unsupported {
                field: "quantile",
                ..
            })
        ));
        let weibull = PlanSpec {
            law: Some("weibull".into()),
            shape: Some(0.7),
            ..spec("hera", 3.0)
        };
        assert!(matches!(
            svc.plan_spec(&weibull),
            Err(SpecError::Unsupported { field: "law", .. })
        ));
        // Naming the default law explicitly still plans.
        let exponential = PlanSpec {
            law: Some("exponential".into()),
            ..spec("hera", 3.0)
        };
        assert!(svc.plan_spec(&exponential).unwrap().solution.is_some());
    }

    #[test]
    fn invalid_specs_surface_spec_errors() {
        let svc = service();
        let bad = PlanSpec {
            lambda: Some(-1.0),
            ..spec("hera", 3.0)
        };
        assert!(matches!(
            svc.plan_spec(&bad),
            Err(SpecError::Invalid {
                field: "lambda",
                ..
            })
        ));
        let unknown = PlanSpec {
            platform: Some("jupiter".into()),
            ..spec("hera", 3.0)
        };
        assert!(matches!(
            svc.plan_spec(&unknown),
            Err(SpecError::UnknownName(_))
        ));
    }
}
