//! Parameter quantization and the canonical table key.
//!
//! The plan cache must never return an answer that differs from a fresh
//! solve — not even in the last bit. The way to make that trivially true
//! is to quantize *before* solving: every query's parameters are snapped
//! to a coarser float grid first, the solver only ever sees quantized
//! values, and the cache key is exactly the solver input. A hit and a
//! recomputation are then the same pure function of the same bits.
//!
//! Quantization masks the low [`MANTISSA_DROP_BITS`] bits of the
//! mantissa, a relative step of ~1.5e-8 — far below the model's
//! parameter uncertainty (platform λ/C/V are three-significant-digit
//! measurements) and far above f64 noise from client-side unit
//! conversions, so near-identical re-queries coalesce onto one plan.

use rexec_core::{BiCritSolver, PowerModel, ResilienceCosts, SilentModel, SpeedSet};
use rexec_harness::Digest;

/// Low mantissa bits dropped by [`quantize`]: 2^-26 relative step.
pub const MANTISSA_DROP_BITS: u32 = 26;

const MANTISSA_MASK: u64 = !((1u64 << MANTISSA_DROP_BITS) - 1);

/// FNV-1a over 64-bit words (same constants as the byte-wise
/// [`rexec_harness::Digest`], one multiply per word instead of eight —
/// this runs per query on the cache hit path).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// The smallest nonzero grid magnitude: the subnormal whose only set
/// bit is the lowest one [`quantize`] keeps.
const MIN_GRID: u64 = 1u64 << MANTISSA_DROP_BITS;

/// Snaps a parameter onto the quantization grid (truncation toward zero
/// in the mantissa). Strictly positive values stay strictly positive;
/// zero stays zero; NaN stays NaN; the function is monotone, so a
/// sorted speed list stays sorted.
///
/// Two edge strata need explicit handling, both NaN-hole siblings of
/// the `ensure_completes` guard fix:
///
/// * a nonzero **subnormal** whose set mantissa bits all sit in the
///   dropped range would truncate to `±0.0` — collapsing a strictly
///   positive validated parameter to zero and panicking
///   `TableParams::to_solver` on a crafted query. Such values snap *up*
///   to the smallest nonzero grid point of their sign instead;
/// * a **NaN** with its payload in the dropped bits would masquerade as
///   `±∞` after masking. NaN passes through unchanged (callers validate
///   finiteness; the grid must not manufacture infinities from it).
#[inline]
pub fn quantize(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    let q = f64::from_bits(x.to_bits() & MANTISSA_MASK);
    if q == 0.0 && x != 0.0 {
        return f64::from_bits((x.to_bits() & (1u64 << 63)) | MIN_GRID);
    }
    q
}

#[inline]
fn fnv_word(state: u64, word: u64) -> u64 {
    (state ^ word).wrapping_mul(FNV_PRIME)
}

/// The canonical, quantized parameter set of one candidate table: the
/// full solver identity (model costs, power, speed set). Two queries
/// with the same `TableParams` share a solver, a digest, and cache
/// entries; any differing bit separates them.
#[derive(Debug, Clone, PartialEq)]
pub struct TableParams {
    /// Silent-error rate λ (1/s), quantized.
    pub lambda: f64,
    /// Checkpoint cost C (s), quantized.
    pub checkpoint: f64,
    /// Verification cost V (s), quantized.
    pub verification: f64,
    /// Recovery cost R (s), quantized.
    pub recovery: f64,
    /// Cube-law coefficient κ (mW), quantized.
    pub kappa: f64,
    /// Static power Pidle (mW), quantized.
    pub p_idle: f64,
    /// I/O power Pio (mW), quantized.
    pub p_io: f64,
    /// Sorted, deduplicated, quantized speed set.
    pub speeds: Vec<f64>,
}

impl TableParams {
    /// Canonicalizes a validated model: every scalar quantized, speeds
    /// re-deduplicated after quantization (two near-equal speeds may
    /// land on the same grid point).
    pub fn new(model: &SilentModel, speeds: &SpeedSet) -> TableParams {
        let mut qs: Vec<f64> = speeds.values().iter().copied().map(quantize).collect();
        qs.dedup();
        TableParams {
            lambda: quantize(model.lambda),
            checkpoint: quantize(model.costs.checkpoint),
            verification: quantize(model.costs.verification),
            recovery: quantize(model.costs.recovery),
            kappa: quantize(model.power.kappa),
            p_idle: quantize(model.power.p_idle),
            p_io: quantize(model.power.p_io),
            speeds: qs,
        }
    }

    fn scalar_words(&self) -> [u64; 7] {
        [
            self.lambda.to_bits(),
            self.checkpoint.to_bits(),
            self.verification.to_bits(),
            self.recovery.to_bits(),
            self.kappa.to_bits(),
            self.p_idle.to_bits(),
            self.p_io.to_bits(),
        ]
    }

    /// Fast 64-bit FNV-1a over the parameter words — the cache-shard
    /// and bucket key. Lookups additionally compare the full params, so
    /// a hash collision can never return a wrong plan.
    pub fn hash64(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for w in self.scalar_words() {
            h = fnv_word(h, w);
        }
        h = fnv_word(h, self.speeds.len() as u64);
        for &s in &self.speeds {
            h = fnv_word(h, s.to_bits());
        }
        h
    }

    /// The table digest in the harness's `fnv1a:<16 hex>` form — the
    /// byte-wise [`rexec_harness::Digest`] over the canonical little-
    /// endian encoding, reported in every wire response so clients can
    /// tell which platform table answered them.
    pub fn digest(&self) -> String {
        let mut d = Digest::new();
        for w in self.scalar_words() {
            d.update(&w.to_le_bytes());
        }
        d.update(&(self.speeds.len() as u64).to_le_bytes());
        for &s in &self.speeds {
            d.update(&s.to_bits().to_le_bytes());
        }
        d.finish()
    }

    /// Bit-exact equality (the cache's collision guard).
    pub fn same(&self, other: &TableParams) -> bool {
        self.scalar_words() == other.scalar_words()
            && self.speeds.len() == other.speeds.len()
            && self
                .speeds
                .iter()
                .zip(&other.speeds)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Builds the solver for this table. Quantization preserves the
    /// constructors' domains (positive normals stay positive, zero
    /// stays zero), so this cannot fail on params that came from a
    /// validated [`SilentModel`].
    pub fn to_solver(&self) -> BiCritSolver {
        let model = SilentModel::new(
            self.lambda,
            ResilienceCosts::new(self.checkpoint, self.verification, self.recovery)
                .expect("quantization preserves cost validity"),
            PowerModel::new(self.kappa, self.p_idle, self.p_io)
                .expect("quantization preserves power validity"),
        )
        .expect("quantization preserves model validity");
        let speeds =
            SpeedSet::new(self.speeds.clone()).expect("quantization preserves speed validity");
        BiCritSolver::new(model, speeds)
    }
}

/// Mixes a table hash with a quantized ρ into the plan-cache key hash.
#[inline]
pub fn plan_hash(table_hash: u64, rho: f64) -> u64 {
    fnv_word(table_hash, rho.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(lambda: f64) -> TableParams {
        let model = SilentModel::new(
            lambda,
            ResilienceCosts::new(300.0, 15.4, 300.0).unwrap(),
            PowerModel::new(1550.0, 60.0, 5.23).unwrap(),
        )
        .unwrap();
        let speeds = SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap();
        TableParams::new(&model, &speeds)
    }

    #[test]
    fn quantize_is_idempotent_monotone_and_sign_preserving() {
        for x in [3.38e-6, 300.0, 0.15, 1.0, 1e12, 5.23] {
            let q = quantize(x);
            assert!(q > 0.0);
            assert!(q <= x, "truncation never increases magnitude");
            assert_eq!(quantize(q), q, "idempotent");
            assert!((x - q) / x < 2.0f64.powi(-(MANTISSA_DROP_BITS as i32) + 1));
        }
        assert_eq!(quantize(0.0), 0.0);
        assert!(quantize(0.4) <= quantize(0.6));
    }

    #[test]
    fn quantize_never_collapses_nonzero_to_zero() {
        // Regression: positive subnormals whose mantissa bits all sat in
        // the dropped range quantized to 0.0, and TableParams::to_solver
        // then panicked on "quantization preserves model validity" — a
        // crafted query could kill the daemon.
        let tiny = f64::from_bits(1);
        assert!(quantize(tiny) > 0.0);
        assert!(quantize(-tiny) < 0.0);
        assert_eq!(quantize(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(quantize(-0.0).to_bits(), (-0.0f64).to_bits());
        assert!(quantize(f64::NAN).is_nan());
        // A NaN with a low-bits-only payload must not become infinity.
        let payload_nan = f64::from_bits(0x7ff0_0000_0000_0001);
        assert!(quantize(payload_nan).is_nan());
        assert_eq!(quantize(f64::INFINITY), f64::INFINITY);
        assert_eq!(quantize(f64::NEG_INFINITY), f64::NEG_INFINITY);
    }

    #[test]
    fn subnormal_lambda_still_builds_a_solver() {
        // End-to-end form of the regression above: a validated model with
        // a subnormal rate must survive canonicalization + solver build.
        let model = SilentModel::new(
            f64::from_bits(3),
            ResilienceCosts::new(300.0, 15.4, 300.0).unwrap(),
            PowerModel::new(1550.0, 60.0, 5.23).unwrap(),
        )
        .unwrap();
        let speeds = SpeedSet::new(vec![0.15, 1.0]).unwrap();
        let t = TableParams::new(&model, &speeds);
        assert!(t.lambda > 0.0);
        let solver = t.to_solver();
        assert!(solver.model().lambda > 0.0);
    }

    #[test]
    fn quantize_properties_over_random_bit_patterns() {
        // Hand-rolled deterministic property sweep over raw bit patterns
        // (xorshift64*, no external proptest dependency): sign and
        // zero-ness preserved, idempotent, monotone, and normal-range
        // relative error bounded by the grid step.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50_000 {
            let x = f64::from_bits(next());
            if x.is_nan() {
                assert!(quantize(x).is_nan());
                continue;
            }
            let q = quantize(x);
            assert_eq!(q.is_sign_negative(), x.is_sign_negative(), "x = {x:e}");
            assert_eq!(q == 0.0, x == 0.0, "zero-ness must be exact, x = {x:e}");
            assert_eq!(quantize(q).to_bits(), q.to_bits(), "idempotent, x = {x:e}");
            if x.is_finite() && x.abs() >= f64::MIN_POSITIVE {
                let rel = (q - x).abs() / x.abs();
                assert!(
                    rel <= 2.0f64.powi(-(MANTISSA_DROP_BITS as i32)),
                    "x = {x:e}: rel {rel:e}"
                );
            }
            let y = f64::from_bits(next());
            if !y.is_nan() && x <= y {
                assert!(
                    quantize(x) <= quantize(y),
                    "monotonicity: {x:e} <= {y:e} but {:e} > {:e}",
                    quantize(x),
                    quantize(y)
                );
            }
        }
    }

    #[test]
    fn nearby_params_coalesce_and_distant_params_split() {
        let a = table(3.38e-6);
        let b = table(3.38e-6 * (1.0 + 1e-12)); // sub-grid perturbation
        let c = table(3.39e-6); // a real parameter change
        assert!(a.same(&b));
        assert_eq!(a.hash64(), b.hash64());
        assert_eq!(a.digest(), b.digest());
        assert!(!a.same(&c));
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn digest_uses_the_harness_format() {
        let d = table(3.38e-6).digest();
        assert!(d.starts_with("fnv1a:") && d.len() == "fnv1a:".len() + 16);
    }

    #[test]
    fn solver_round_trip_matches_quantized_model() {
        let t = table(3.38e-6);
        let solver = t.to_solver();
        assert_eq!(solver.model().lambda, t.lambda);
        assert_eq!(solver.speeds().values(), t.speeds.as_slice());
    }

    #[test]
    fn plan_hash_separates_rho() {
        let h = table(3.38e-6).hash64();
        assert_ne!(plan_hash(h, 3.0), plan_hash(h, 1.775));
    }
}
