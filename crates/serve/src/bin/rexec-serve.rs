//! `rexec-serve` — the planning daemon.
//!
//! Binds a TCP listener, serves newline-delimited JSON plan queries
//! through the batching, plan-caching service core, and drains
//! gracefully on SIGTERM/ctrl-c.

use rexec_serve::{ServeOptions, Server, ServiceConfig};
use std::time::Duration;

const USAGE: &str = "\
rexec-serve — batching, plan-caching planning service

USAGE:
  rexec-serve [--addr HOST:PORT] [options]

OPTIONS:
  --addr A            bind address (default 127.0.0.1:7464; port 0 = ephemeral)
  --workers N         batch worker threads (default 2)
  --batch-max N       flush a batch at N requests (default 128)
  --batch-window-us T ...or after T microseconds (default 200)
  --queue-cap N       bounded request-queue depth (default 1024)
  --cache-capacity N  plan-cache capacity in plans, 0 disables (default 65536)
  --drain-secs S      shutdown drain deadline (default 5)
  --metrics-prom PATH write Prometheus metrics exposition on shutdown
  --help              this text

PROTOCOL (one JSON object per line; responses in request order):
  {\"id\":1,\"platform\":\"hera\",\"processor\":\"xscale\",\"rho\":3}
  {\"id\":2,\"lambda\":1e-5,\"checkpoint\":600,\"verification\":30,
   \"kappa\":2000,\"pidle\":50,\"speeds\":[0.25,0.5,1.0],\"rho\":2.5}
Errors come back as {\"id\":N,\"err\":{\"kind\":...,\"msg\":...}} — the
connection is never dropped in response to a bad request.
";

fn fail(msg: &str) -> ! {
    eprintln!("rexec-serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn parse_args() -> ServeOptions {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7464".into(),
        ..ServeOptions::default()
    };
    let mut service = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, opt: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("option {opt} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0)
            }
            "--addr" => opts.addr = value(&mut args, &arg),
            "--workers" => opts.workers = parse(&value(&mut args, &arg), &arg),
            "--batch-max" => opts.batch_max = parse(&value(&mut args, &arg), &arg),
            "--batch-window-us" => opts.batch_window_us = parse(&value(&mut args, &arg), &arg),
            "--queue-cap" => opts.queue_cap = parse(&value(&mut args, &arg), &arg),
            "--cache-capacity" => {
                service.plan_cache_capacity = parse(&value(&mut args, &arg), &arg)
            }
            "--drain-secs" => opts.drain_secs = parse(&value(&mut args, &arg), &arg),
            "--metrics-prom" => opts.metrics_prom = Some(value(&mut args, &arg).into()),
            other => fail(&format!("unknown option {other}")),
        }
    }
    opts.service = service;
    opts
}

fn parse<T: std::str::FromStr>(text: &str, opt: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("cannot parse value `{text}` for option {opt}")))
}

fn main() {
    let opts = parse_args();
    #[cfg(unix)]
    rexec_serve::server::signals::install();
    let server = match Server::start(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rexec-serve: failed to start: {e}");
            std::process::exit(1)
        }
    };
    // Scripted callers wait for this exact line before sending load.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    #[cfg(unix)]
    while !rexec_serve::server::signals::stop_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    #[cfg(not(unix))]
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }

    eprintln!("[rexec-serve] shutdown requested; draining");
    server.shutdown();
    let report = server.join();
    eprintln!(
        "[rexec-serve] drained: {} connections, {} requests, {} responses ({} errors), \
         cache {} hits / {} misses / {} evictions",
        report.connections,
        report.requests,
        report.responses,
        report.errors,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
    );
}
