//! `rexec-loadgen` — open-loop load generator for `rexec-serve`.
//!
//! Pipelines a deterministic, seeded query stream (a mixed hit/miss
//! distribution over the paper's platform tables) over one or more
//! connections without waiting for responses, then reports plan
//! queries/sec and latency quartiles as a JSON summary line. With
//! `--dump` (single connection) it also records the raw response byte
//! stream, which CI diffs across server batch windows to pin
//! determinism end to end.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const USAGE: &str = "\
rexec-loadgen — open-loop load generator for rexec-serve

USAGE:
  rexec-loadgen --addr HOST:PORT [options]

OPTIONS:
  --addr A        server address (required)
  --requests N    total requests to send (default 10000)
  --conns C       parallel connections (default 1)
  --hit-pct P     percent of queries drawn from the hot (table, rho)
                  pool; the rest carry fresh rho values (default 90)
  --seed S        stream seed (default 1)
  --dump PATH     write the raw response stream (requires --conns 1)
  --min-qps Q     exit 1 unless measured queries/sec >= Q
  --check         exit 1 on any error response or missing response
  --help          this text

Prints one JSON summary line:
  {\"requests\":...,\"responses\":...,\"errors\":...,\"elapsed_secs\":...,
   \"qps\":...,\"latency_us\":{\"p25\":...,\"p50\":...,\"p75\":...,\"p99\":...}}
";

fn fail(msg: &str) -> ! {
    eprintln!("rexec-loadgen: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}

struct Args {
    addr: String,
    requests: u64,
    conns: usize,
    hit_pct: u32,
    seed: u64,
    dump: Option<String>,
    min_qps: Option<f64>,
    check: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        requests: 10_000,
        conns: 1,
        hit_pct: 90,
        seed: 1,
        dump: None,
        min_qps: None,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, opt: &str| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("option {opt} requires a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0)
            }
            "--addr" => out.addr = value(&mut args, &arg),
            "--requests" => out.requests = parse(&value(&mut args, &arg), &arg),
            "--conns" => out.conns = parse(&value(&mut args, &arg), &arg),
            "--hit-pct" => out.hit_pct = parse(&value(&mut args, &arg), &arg),
            "--seed" => out.seed = parse(&value(&mut args, &arg), &arg),
            "--dump" => out.dump = Some(value(&mut args, &arg)),
            "--min-qps" => out.min_qps = Some(parse(&value(&mut args, &arg), &arg)),
            "--check" => out.check = true,
            other => fail(&format!("unknown option {other}")),
        }
    }
    if out.addr.is_empty() {
        fail("--addr is required");
    }
    if out.dump.is_some() && out.conns != 1 {
        fail("--dump needs --conns 1 (a single ordered response stream)");
    }
    out
}

fn parse<T: std::str::FromStr>(text: &str, opt: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("cannot parse value `{text}` for option {opt}")))
}

/// xorshift64* — deterministic, seedable, std-only.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

const PLATFORMS: [&str; 4] = ["hera", "atlas", "coastal", "coastal-ssd"];
const PROCESSORS: [&str; 2] = ["xscale", "crusoe"];

/// The deterministic query stream: `hit_pct`% of requests reuse a hot
/// pool of (platform table, ρ) pairs; the rest carry a fresh ρ (unique
/// far beyond the quantization step), forcing a solve.
fn request_line(id: u64, rng: &mut u64, hit_pct: u32, fresh_counter: &mut u64) -> String {
    let r = next_rand(rng);
    let table = (r % 8) as usize;
    let platform = PLATFORMS[table % 4];
    let processor = PROCESSORS[table / 4];
    let rho = if (r >> 8) % 100 < hit_pct as u64 {
        // Hot pool: 16 rho values per table.
        1.5 + 0.125 * ((r >> 16) % 16) as f64
    } else {
        *fresh_counter += 1;
        // Fresh rho, unique at ~1e-4 granularity (quantization step is
        // ~1.5e-8 relative, so these never coalesce).
        4.0 + *fresh_counter as f64 * 1e-4
    };
    format!(
        "{{\"id\":{id},\"platform\":\"{platform}\",\"processor\":\"{processor}\",\"rho\":{rho}}}\n"
    )
}

struct ConnOutcome {
    responses: u64,
    errors: u64,
    latencies_us: Vec<f64>,
    dump: Vec<u8>,
}

fn run_conn(
    args: &Args,
    conn_index: usize,
    requests: u64,
    first_id: u64,
) -> std::io::Result<ConnOutcome> {
    let stream = TcpStream::connect(&args.addr)?;
    stream.set_nodelay(true).ok();
    let read_half = stream.try_clone()?;
    let sent_at: Arc<Mutex<VecDeque<Instant>>> = Arc::new(Mutex::new(VecDeque::new()));
    let want_dump = args.dump.is_some();

    let reader = {
        let sent_at = Arc::clone(&sent_at);
        std::thread::spawn(move || {
            let mut out = ConnOutcome {
                responses: 0,
                errors: 0,
                latencies_us: Vec::new(),
                dump: Vec::new(),
            };
            let mut lines = BufReader::new(read_half);
            let mut line = String::new();
            loop {
                line.clear();
                match lines.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        let now = Instant::now();
                        out.responses += 1;
                        if line.contains("\"err\"") {
                            out.errors += 1;
                        }
                        if let Some(t) = sent_at.lock().expect("sent_at").pop_front() {
                            out.latencies_us.push((now - t).as_secs_f64() * 1e6);
                        }
                        if want_dump {
                            out.dump.extend_from_slice(line.as_bytes());
                        }
                    }
                    Err(_) => break,
                }
            }
            out
        })
    };

    // Open loop: pipeline every request without waiting for responses.
    let mut rng = args
        .seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(conn_index as u64 + 1);
    let mut fresh = (conn_index as u64) << 32;
    let mut writer = std::io::BufWriter::new(stream);
    for k in 0..requests {
        let line = request_line(first_id + k, &mut rng, args.hit_pct, &mut fresh);
        sent_at.lock().expect("sent_at").push_back(Instant::now());
        writer.write_all(line.as_bytes())?;
        // Flush in small groups so latency reflects service time, not
        // client-side buffering of the entire stream.
        if k % 64 == 63 {
            writer.flush()?;
        }
    }
    writer.flush()?;
    // Half-close: tells the server this connection is done sending, so
    // it drains our in-flight requests and closes once all are answered.
    writer
        .into_inner()
        .expect("flushed")
        .shutdown(std::net::Shutdown::Write)
        .ok();
    Ok(reader.join().expect("reader thread panicked"))
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos.min(sorted.len() - 1)]
}

fn main() {
    let args = Arc::new(parse_args());
    let conns = args.conns.max(1);
    let per_conn = args.requests / conns as u64;
    let remainder = args.requests % conns as u64;

    let started = Instant::now();
    let handles: Vec<_> = (0..conns)
        .map(|c| {
            let args = Arc::clone(&args);
            let requests = per_conn + u64::from((c as u64) < remainder);
            let first_id = c as u64 * 10_000_000;
            std::thread::spawn(move || run_conn(&args, c, requests, first_id))
        })
        .collect();

    let mut responses = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut dump: Vec<u8> = Vec::new();
    for handle in handles {
        match handle.join().expect("connection thread panicked") {
            Ok(outcome) => {
                responses += outcome.responses;
                errors += outcome.errors;
                latencies.extend(outcome.latencies_us);
                dump.extend(outcome.dump);
            }
            Err(e) => {
                eprintln!("rexec-loadgen: connection failed: {e}");
                std::process::exit(1)
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    if let Some(path) = &args.dump {
        if let Err(e) = std::fs::write(path, &dump) {
            eprintln!("rexec-loadgen: cannot write {path}: {e}");
            std::process::exit(1)
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let qps = responses as f64 / elapsed.max(1e-9);
    println!(
        "{{\"requests\":{},\"responses\":{responses},\"errors\":{errors},\
         \"elapsed_secs\":{elapsed:.6},\"qps\":{qps:.1},\"latency_us\":{{\
         \"p25\":{:.1},\"p50\":{:.1},\"p75\":{:.1},\"p99\":{:.1}}}}}",
        args.requests,
        quantile(&latencies, 0.25),
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.75),
        quantile(&latencies, 0.99),
    );

    let mut ok = true;
    if args.check && (errors > 0 || responses != args.requests) {
        eprintln!(
            "rexec-loadgen: check failed ({errors} errors, {responses}/{} responses)",
            args.requests
        );
        ok = false;
    }
    if let Some(floor) = args.min_qps {
        if qps < floor {
            eprintln!("rexec-loadgen: qps {qps:.1} below required floor {floor:.1}");
            ok = false;
        }
    }
    std::process::exit(i32::from(!ok))
}
