//! # rexec-serve
//!
//! A long-running planning service over the paper's BiCrit solver: the
//! "heavy traffic from millions of users" deployment of the library.
//! Clients send plan queries (platform parameters, λ, ρ, speed set) as
//! newline-delimited JSON over TCP and receive the energy-optimal
//! two-speed plan (`Wopt`, `σ₁*`, `σ₂*`, `E/W`, `T/W`) per line, in
//! request order.
//!
//! The pipeline is **resolve → quantize → cache → batch-solve**:
//!
//! - [`quant`]: parameters are snapped to a coarse float grid *before*
//!   solving, so the cache key is exactly the solver input and a cache
//!   hit is bit-identical to a fresh solve by construction.
//! - [`cache`]: a sharded, FIFO-bounded plan cache keyed by the
//!   platform-table FNV-1a digest family (same hash as
//!   `rexec-harness`) plus quantized ρ.
//! - [`service`]: the transport-free core — solver cache (one candidate
//!   table per platform) and the batched `solve_many_into` path.
//! - [`wire`]: the NDJSON protocol with typed `{"err": ...}` responses
//!   that reuse the CLI's domain validator ([`rexec_cli::spec`]).
//! - [`server`]: the daemon — accept loop, bounded MPSC queue, adaptive
//!   batcher (flush on N requests or T µs), per-connection reorder
//!   writers, graceful drain on shutdown, rexec-obs metrics throughout.
//!
//! Binaries: `rexec-serve` (the daemon) and `rexec-loadgen` (an
//! open-loop generator reporting queries/sec and latency quartiles).

#![warn(missing_docs)]

pub mod cache;
pub mod quant;
pub mod server;
pub mod service;
pub mod wire;

pub use cache::{CacheStats, CachedPlan, PlanCache};
pub use quant::{quantize, TableParams};
pub use server::{ServeOptions, ServeReport, Server};
pub use service::{PlanAnswer, PlanService, Query, ServiceConfig};
pub use wire::{parse_request, render_answer, render_error, WireError};

// Re-export the shared validator so service embedders don't need a
// direct rexec-cli dependency for the request type.
pub use rexec_cli::spec::{PlanSpec, SpecError};
