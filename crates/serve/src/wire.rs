//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in request
//! order per connection. Every failure mode — malformed JSON, a
//! non-object, unknown fields, wrong field types, domain violations —
//! produces a structured `{"err": ...}` response on the same
//! connection; the server never answers a request by dropping the
//! socket. Domain rules are not re-implemented here: a parsed request
//! becomes a [`PlanSpec`] and goes through exactly the validation the
//! `rexec-plan` CLI uses.
//!
//! Responses are rendered with Rust's shortest-roundtrip float
//! formatting and a fixed field order, so a response is a deterministic
//! byte string of the (quantized) answer — the property the
//! determinism test pins across batch windows, worker counts and cache
//! states.

use crate::service::PlanAnswer;
use rexec_cli::spec::{PlanSpec, SpecError};
use serde::Value;
use std::fmt::Write as _;

/// Machine-readable error kinds carried in `{"err":{"kind": ...}}`.
pub mod kind {
    /// The line is not valid JSON.
    pub const PARSE: &str = "parse";
    /// The line is valid JSON but not a usable request object.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The request object carries a field this protocol doesn't know.
    pub const UNKNOWN_FIELD: &str = "unknown_field";
    /// A parameter fails its domain rule (NaN, sign, zero).
    pub const INVALID_VALUE: &str = "invalid_value";
    /// Bad platform/processor name.
    pub const UNKNOWN_NAME: &str = "unknown_name";
    /// Not enough parameters to determine a model.
    pub const UNDERSPECIFIED: &str = "underspecified";
    /// Parameters pass field rules but form no valid model.
    pub const MODEL: &str = "model";
    /// A recognized, well-formed parameter names a capability this
    /// service does not provide (non-exponential laws, schedule search,
    /// quantile bounds — all CLI/simulator-only).
    pub const UNSUPPORTED: &str = "unsupported";
}

/// A wire-level request failure: what to tell the client.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// One of the [`kind`] constants.
    pub kind: &'static str,
    /// Human-readable detail.
    pub msg: String,
}

impl WireError {
    fn new(kind: &'static str, msg: impl Into<String>) -> WireError {
        WireError {
            kind,
            msg: msg.into(),
        }
    }
}

/// Maps a shared-validator failure onto its wire kind + message.
pub fn wire_error_from_spec(e: &SpecError) -> WireError {
    let kind = match e {
        SpecError::Invalid { .. } | SpecError::EmptySpeeds => kind::INVALID_VALUE,
        SpecError::UnknownName(_) => kind::UNKNOWN_NAME,
        SpecError::Underspecified(_) => kind::UNDERSPECIFIED,
        SpecError::Model(_) => kind::MODEL,
        SpecError::Unsupported { .. } => kind::UNSUPPORTED,
    };
    WireError::new(kind, e.to_string())
}

fn want_f64(field: &str, v: &Value) -> Result<f64, WireError> {
    match v {
        Value::Number(n) => Ok(n.as_f64()),
        _ => Err(WireError::new(
            kind::BAD_REQUEST,
            format!("field `{field}` must be a number"),
        )),
    }
}

fn want_string(field: &str, v: &Value) -> Result<String, WireError> {
    match v {
        Value::String(s) => Ok(s.clone()),
        _ => Err(WireError::new(
            kind::BAD_REQUEST,
            format!("field `{field}` must be a string"),
        )),
    }
}

/// Parses one request line. Returns the request id (echoed in the
/// response whenever it could be recovered, even for failed requests)
/// and either the spec to plan or the error to report.
pub fn parse_request(line: &str) -> (Option<u64>, Result<PlanSpec, WireError>) {
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                None,
                Err(WireError::new(kind::PARSE, format!("malformed JSON: {e}"))),
            )
        }
    };
    let Value::Object(fields) = value else {
        return (
            None,
            Err(WireError::new(
                kind::BAD_REQUEST,
                "request must be a JSON object",
            )),
        );
    };
    // Recover the id first so even failed requests echo it.
    let id = match fields.get("id") {
        None => None,
        Some(Value::Number(n)) => match n.as_u64() {
            Some(id) => Some(id),
            None => {
                return (
                    None,
                    Err(WireError::new(
                        kind::BAD_REQUEST,
                        "field `id` must be a non-negative integer",
                    )),
                )
            }
        },
        Some(_) => {
            return (
                None,
                Err(WireError::new(
                    kind::BAD_REQUEST,
                    "field `id` must be a non-negative integer",
                )),
            )
        }
    };
    let mut spec = PlanSpec::default();
    for (key, v) in &fields {
        let result = match key.as_str() {
            "id" => Ok(()),
            "platform" => want_string(key, v).map(|s| spec.platform = Some(s)),
            "processor" => want_string(key, v).map(|s| spec.processor = Some(s)),
            "lambda" => want_f64(key, v).map(|x| spec.lambda = Some(x)),
            "checkpoint" => want_f64(key, v).map(|x| spec.checkpoint = Some(x)),
            "verification" => want_f64(key, v).map(|x| spec.verification = Some(x)),
            "recovery" => want_f64(key, v).map(|x| spec.recovery = Some(x)),
            "kappa" => want_f64(key, v).map(|x| spec.kappa = Some(x)),
            "pidle" => want_f64(key, v).map(|x| spec.pidle = Some(x)),
            "pio" => want_f64(key, v).map(|x| spec.pio = Some(x)),
            "rho" => want_f64(key, v).map(|x| spec.rho = Some(x)),
            "law" => want_string(key, v).map(|s| spec.law = Some(s)),
            "shape" => want_f64(key, v).map(|x| spec.shape = Some(x)),
            "quantile" => want_f64(key, v).map(|x| spec.quantile = Some(x)),
            "schedule_depth" => match v {
                Value::Number(n) => match n.as_u64().and_then(|d| u32::try_from(d).ok()) {
                    Some(d) => {
                        spec.schedule_depth = Some(d);
                        Ok(())
                    }
                    None => Err(WireError::new(
                        kind::BAD_REQUEST,
                        "field `schedule_depth` must be a small non-negative integer",
                    )),
                },
                _ => Err(WireError::new(
                    kind::BAD_REQUEST,
                    "field `schedule_depth` must be a small non-negative integer",
                )),
            },
            "speeds" => match v {
                Value::Array(items) => items
                    .iter()
                    .map(|item| want_f64(key, item))
                    .collect::<Result<Vec<f64>, WireError>>()
                    .map(|s| spec.speeds = Some(s)),
                _ => Err(WireError::new(
                    kind::BAD_REQUEST,
                    "field `speeds` must be an array of numbers",
                )),
            },
            unknown => Err(WireError::new(
                kind::UNKNOWN_FIELD,
                format!("unknown field `{unknown}`"),
            )),
        };
        if let Err(e) = result {
            return (id, Err(e));
        }
    }
    (id, Ok(spec))
}

fn push_id(out: &mut String, id: Option<u64>) {
    if let Some(id) = id {
        let _ = write!(out, "\"id\":{id},");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a successful answer as one response line (no trailing
/// newline; the transport adds it). Fixed field order, shortest-
/// roundtrip floats: the same answer always renders to the same bytes.
pub fn render_answer(out: &mut String, id: Option<u64>, answer: &PlanAnswer) {
    out.push('{');
    push_id(out, id);
    out.push_str("\"digest\":");
    push_json_string(out, &answer.digest);
    let _ = write!(out, ",\"rho\":{}", answer.rho);
    match &answer.solution {
        Some(s) => {
            let _ = write!(
                out,
                ",\"feasible\":true,\"sigma1\":{},\"sigma2\":{},\"wopt\":{},\
                 \"energy_overhead\":{},\"time_overhead\":{}",
                s.sigma1, s.sigma2, s.w_opt, s.energy_overhead, s.time_overhead
            );
        }
        None => {
            out.push_str(",\"feasible\":false");
            if let Some(floor) = answer.min_rho {
                let _ = write!(out, ",\"min_rho\":{floor}");
            }
        }
    }
    out.push('}');
}

/// Renders an error response line.
pub fn render_error(out: &mut String, id: Option<u64>, err: &WireError) {
    out.push('{');
    push_id(out, id);
    out.push_str("\"err\":{\"kind\":");
    push_json_string(out, err.kind);
    out.push_str(",\"msg\":");
    push_json_string(out, &err.msg);
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_a_full_request() {
        let (id, spec) = parse_request(
            r#"{"id":7,"platform":"hera","processor":"xscale","rho":1.775,"lambda":1e-5,"speeds":[0.25,0.5,1.0]}"#,
        );
        assert_eq!(id, Some(7));
        let spec = spec.unwrap();
        assert_eq!(spec.platform.as_deref(), Some("hera"));
        assert_eq!(spec.rho, Some(1.775));
        assert_eq!(spec.lambda, Some(1e-5));
        assert_eq!(spec.speeds, Some(vec![0.25, 0.5, 1.0]));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let (id, r) = parse_request("{not json");
        assert_eq!(id, None);
        assert_eq!(r.unwrap_err().kind, kind::PARSE);
    }

    #[test]
    fn non_objects_and_bad_ids_are_bad_requests() {
        assert_eq!(
            parse_request("[1,2]").1.unwrap_err().kind,
            kind::BAD_REQUEST
        );
        assert_eq!(parse_request("42").1.unwrap_err().kind, kind::BAD_REQUEST);
        let (id, r) = parse_request(r#"{"id":-3,"platform":"hera"}"#);
        assert_eq!(id, None);
        assert_eq!(r.unwrap_err().kind, kind::BAD_REQUEST);
    }

    #[test]
    fn unknown_fields_are_rejected_but_keep_the_id() {
        let (id, r) = parse_request(r#"{"id":9,"platform":"hera","turbo":true}"#);
        assert_eq!(id, Some(9));
        let e = r.unwrap_err();
        assert_eq!(e.kind, kind::UNKNOWN_FIELD);
        assert!(e.msg.contains("turbo"));
    }

    #[test]
    fn wrong_types_are_rejected_with_the_field_name() {
        let (_, r) = parse_request(r#"{"lambda":"fast"}"#);
        let e = r.unwrap_err();
        assert_eq!(e.kind, kind::BAD_REQUEST);
        assert!(e.msg.contains("lambda"));
        let (_, r) = parse_request(r#"{"speeds":[0.5,"x"]}"#);
        assert_eq!(r.unwrap_err().kind, kind::BAD_REQUEST);
    }

    #[test]
    fn scenario_fields_parse_into_the_spec() {
        let (_, spec) = parse_request(
            r#"{"platform":"hera","law":"weibull","shape":0.7,"schedule_depth":2,"quantile":0.99}"#,
        );
        let spec = spec.unwrap();
        assert_eq!(spec.law.as_deref(), Some("weibull"));
        assert_eq!(spec.shape, Some(0.7));
        assert_eq!(spec.schedule_depth, Some(2));
        assert_eq!(spec.quantile, Some(0.99));
        // Wrong types are named bad requests, not silent drops.
        let (_, r) = parse_request(r#"{"law":7}"#);
        assert_eq!(r.unwrap_err().kind, kind::BAD_REQUEST);
        let (_, r) = parse_request(r#"{"schedule_depth":1.5}"#);
        let e = r.unwrap_err();
        assert_eq!(e.kind, kind::BAD_REQUEST);
        assert!(e.msg.contains("schedule_depth"));
        let (_, r) = parse_request(r#"{"schedule_depth":-1}"#);
        assert_eq!(r.unwrap_err().kind, kind::BAD_REQUEST);
    }

    #[test]
    fn spec_errors_map_to_stable_kinds() {
        let invalid = SpecError::Invalid {
            field: "lambda",
            value: -1.0,
            reason: "must be strictly positive",
        };
        assert_eq!(wire_error_from_spec(&invalid).kind, kind::INVALID_VALUE);
        assert_eq!(
            wire_error_from_spec(&SpecError::UnknownName("jupiter".into())).kind,
            kind::UNKNOWN_NAME
        );
        assert_eq!(
            wire_error_from_spec(&SpecError::Underspecified("lambda")).kind,
            kind::UNDERSPECIFIED
        );
        let unsupported = SpecError::Unsupported {
            field: "law",
            reason: "memorylessness required",
        };
        let w = wire_error_from_spec(&unsupported);
        assert_eq!(w.kind, kind::UNSUPPORTED);
        assert!(w.msg.contains("law"));
    }

    #[test]
    fn rendering_is_deterministic_and_valid_json() {
        let answer = PlanAnswer {
            digest: Arc::from("fnv1a:00ff00ff00ff00ff"),
            rho: 3.0,
            solution: None,
            min_rho: Some(1.4203125),
        };
        let mut a = String::new();
        render_answer(&mut a, Some(3), &answer);
        let mut b = String::new();
        render_answer(&mut b, Some(3), &answer);
        assert_eq!(a, b);
        let v: Value = serde_json::from_str(&a).expect("response is valid JSON");
        assert_eq!(v.get("feasible"), Some(&Value::Bool(false)));
        assert!(a.contains("\"min_rho\":1.4203125"));
        assert!(a.starts_with("{\"id\":3,"));
    }

    #[test]
    fn error_rendering_escapes_messages() {
        let mut out = String::new();
        render_error(
            &mut out,
            None,
            &WireError::new(kind::PARSE, "bad \"quote\"\nline"),
        );
        let v: Value = serde_json::from_str(&out).expect("error response is valid JSON");
        let err = v.get("err").expect("err object");
        assert_eq!(err.get("kind"), Some(&Value::String("parse".into())));
        assert!(!out.contains('\n'), "newlines escaped: {out}");
    }
}
