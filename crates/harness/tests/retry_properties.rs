//! Property tests of the retry policy and of injected write failures
//! surfacing through the real write path: for *any* backoff shape the
//! sleep never exceeds the cap, the attempt budget is spent exactly,
//! and a failure the budget cannot absorb comes back as a typed
//! [`HarnessError::Io`] — never a panic.

use proptest::prelude::*;
use rexec_harness::{
    run_units, FaultPlan, HarnessError, LifecycleConfig, RetryPolicy, SimFs, UnitOutput, UnitPlan,
};
use std::path::PathBuf;
use std::time::Duration;

fn fixture(units: usize) -> Vec<UnitPlan<'static>> {
    (0..units)
        .map(|i| UnitPlan {
            id: format!("U{i}"),
            compute: Box::new(move || {
                Ok(UnitOutput {
                    title: format!("unit {i}"),
                    points: 1,
                    wall_secs: 0.0,
                    artifacts: vec![(format!("u{i}.csv"), format!("x,{i}\n").into_bytes())],
                })
            }),
        })
        .collect()
}

fn cfg(retry: RetryPolicy) -> LifecycleConfig {
    LifecycleConfig {
        out_dir: PathBuf::from("results"),
        tool: "retry-prop".into(),
        tool_version: "0.0.0".into(),
        seed: 1,
        config_digest: "fnv1a:0".into(),
        resume: false,
        retry,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The capped exponential backoff never exceeds `max_delay`, for any
    /// base, cap and retry ordinal (including ordinals far past the
    /// doubling range, where the shift saturates instead of overflowing).
    #[test]
    fn backoff_never_exceeds_the_cap(
        base_ms in 0u64..100,
        max_ms in 0u64..500,
        retry in 1u32..64,
    ) {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(max_ms),
        };
        let delay = p.delay_before_retry(retry);
        prop_assert!(delay <= p.max_delay);
        let uncapped = Duration::from_millis(base_ms)
            .saturating_mul(1u32 << (retry - 1).min(16));
        prop_assert_eq!(delay, uncapped.min(p.max_delay));
    }

    /// Backoff is monotone in the retry ordinal: waiting never gets
    /// *shorter* as failures accumulate.
    #[test]
    fn backoff_is_monotone(base_ms in 0u64..100, max_ms in 0u64..500, retry in 1u32..63) {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(base_ms),
            max_delay: Duration::from_millis(max_ms),
        };
        prop_assert!(p.delay_before_retry(retry) <= p.delay_before_retry(retry + 1));
    }

    /// `run` spends the attempt budget exactly: an op whose first
    /// `failures` calls fail is called `min(failures + 1, max_attempts)`
    /// times, and succeeds iff the budget covers the failures.
    #[test]
    fn attempt_budget_is_spent_exactly(max_attempts in 1u32..8, failures in 0u32..10) {
        let policy = RetryPolicy::immediate(max_attempts);
        let mut calls = 0u32;
        let out = policy.run(|| {
            calls += 1;
            if calls <= failures {
                Err(std::io::Error::other("transient"))
            } else {
                Ok(calls)
            }
        });
        prop_assert_eq!(calls, (failures + 1).min(max_attempts));
        prop_assert_eq!(out.is_ok(), failures < max_attempts);
    }

    /// An injected `fail-write=N` through the real lifecycle either gets
    /// absorbed by a retry or surfaces as a typed `HarnessError::Io` that
    /// names the injected fault — never a panic, and never a partial
    /// success: with at least one retry available the run always
    /// completes, and with none it fails exactly when the Nth write
    /// exists to fail.
    #[test]
    fn injected_write_failures_surface_or_are_absorbed(
        units in 1usize..4,
        nth_write in 1u64..12,
        max_attempts in 1u32..4,
    ) {
        let fs = SimFs::new();
        let injector = FaultPlan::parse(&format!("fail-write={nth_write}"))
            .unwrap()
            .injector();
        let result = run_units(
            &fs,
            &cfg(RetryPolicy::immediate(max_attempts)),
            &mut fixture(units),
            &injector,
            &mut |_| {},
        );
        // One atomic write per artifact, one per per-unit manifest
        // rewrite, one for the final manifest seal.
        let total_writes = 2 * units as u64 + 1;
        if max_attempts >= 2 {
            // The single planned failure is always absorbed by a retry.
            prop_assert!(result.is_ok(), "absorbed failure failed: {result:?}");
        } else if nth_write <= total_writes {
            match result {
                Err(HarnessError::Io { source, .. }) => {
                    prop_assert!(source.contains("injected fault"), "source: {source}");
                }
                other => prop_assert!(false, "expected Io error, got {other:?}"),
            }
        } else {
            prop_assert!(result.is_ok(), "no write to fail, yet: {result:?}");
        }
    }
}
