//! Content digests sealing checkpointed artifacts.
//!
//! The digest plays the role of the paper's verification step `V`: a
//! cheap check that detects silent corruption of an already-produced
//! artifact before the run builds anything on top of it. FNV-1a (64-bit)
//! is std-only, deterministic across platforms and fast enough to be
//! invisible next to the solves that produce the data. It is an
//! integrity check against accidental corruption (truncation, partial
//! writes, bit flips), not a cryptographic seal.

use std::io::Read;
use std::path::Path;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Streaming FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Final digest rendered in the manifest's `fnv1a:<16 hex>` form.
    pub fn finish(&self) -> String {
        format!("fnv1a:{:016x}", self.state)
    }
}

/// Digest of an in-memory artifact.
pub fn digest_bytes(bytes: &[u8]) -> String {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

/// Digest of a file on a [`Storage`](crate::Storage) — the verification
/// path the model checker drives against its in-memory filesystem.
pub fn digest_file_in(storage: &dyn crate::Storage, path: &Path) -> std::io::Result<String> {
    Ok(digest_bytes(&storage.read_file(path)?))
}

/// Digest of a file on disk, streamed in 64 KiB chunks.
pub fn digest_file(path: &Path) -> std::io::Result<String> {
    let mut f = std::fs::File::open(path)?;
    let mut d = Digest::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        d.update(&buf[..n]);
    }
    Ok(d.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        assert_eq!(digest_bytes(b"abc"), digest_bytes(b"abc"));
        assert_ne!(digest_bytes(b"abc"), digest_bytes(b"abd"));
        assert_ne!(digest_bytes(b""), digest_bytes(b"\0"));
        assert!(digest_bytes(b"abc").starts_with("fnv1a:"));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut d = Digest::new();
        d.update(b"hello ");
        d.update(b"world");
        assert_eq!(d.finish(), digest_bytes(b"hello world"));
    }

    #[test]
    fn file_digest_matches_bytes_digest() {
        let dir = std::env::temp_dir().join("rexec-harness-digest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.csv");
        std::fs::write(&path, b"x,y\n1,2\n").unwrap();
        assert_eq!(digest_file(&path).unwrap(), digest_bytes(b"x,y\n1,2\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storage_digest_matches_bytes_digest() {
        use crate::Storage as _;
        let fs = crate::SimFs::new();
        let path = std::path::Path::new("a.csv");
        fs.write_file(path, b"x,y\n1,2\n").unwrap();
        assert_eq!(
            digest_file_in(&fs, path).unwrap(),
            digest_bytes(b"x,y\n1,2\n")
        );
        assert!(digest_file_in(&fs, std::path::Path::new("missing")).is_err());
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a 64-bit of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(digest_bytes(b"a"), "fnv1a:af63dc4c8601ec8c");
    }
}
