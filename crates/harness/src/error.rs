//! The typed error surface of the robustness layer.

use std::fmt;

/// Everything that can go wrong while running the verified-checkpoint
/// pipeline. One variant per failure class so binaries can map each to a
/// distinct exit code and a one-line diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// An I/O operation failed after exhausting its retry budget.
    Io {
        /// What the harness was doing, e.g. `write artifact fig4.csv`.
        action: String,
        /// Path involved.
        path: String,
        /// Rendered `std::io::Error`.
        source: String,
    },
    /// A command-line argument was missing, malformed or out of range.
    InvalidArg {
        /// The offending option or positional, e.g. `--seed`.
        what: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An experiment id that does not exist in the registry.
    UnknownExperiment(String),
    /// The run manifest could not be parsed or has an unsupported layout.
    Manifest(String),
    /// `--resume` was asked to continue a run recorded under different
    /// parameters (seed, configuration digest, tool version).
    ResumeMismatch {
        /// Manifest field that disagrees.
        field: String,
        /// Value recorded in the manifest.
        recorded: String,
        /// Value of the current invocation.
        current: String,
    },
    /// The fault plan killed the run after the given completed unit
    /// (deterministic crash injection, not a real failure).
    KilledByFaultPlan {
        /// 1-based index of the last unit sealed before the kill.
        after_unit: u64,
    },
}

impl HarnessError {
    /// Process exit code convention: `2` for usage errors, `137` for an
    /// injected kill (mirrors SIGKILL), `1` for runtime failures.
    pub fn exit_code(&self) -> i32 {
        match self {
            HarnessError::InvalidArg { .. } | HarnessError::UnknownExperiment(_) => 2,
            HarnessError::KilledByFaultPlan { .. } => 137,
            _ => 1,
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Io {
                action,
                path,
                source,
            } => write!(f, "cannot {action} ({path}): {source}"),
            HarnessError::InvalidArg { what, reason } => write!(f, "invalid {what}: {reason}"),
            HarnessError::UnknownExperiment(id) => write!(f, "unknown experiment id: {id}"),
            HarnessError::Manifest(msg) => write!(f, "bad run manifest: {msg}"),
            HarnessError::ResumeMismatch {
                field,
                recorded,
                current,
            } => write!(
                f,
                "cannot resume: manifest {field} is {recorded} but this run uses {current}"
            ),
            HarnessError::KilledByFaultPlan { after_unit } => {
                write!(f, "fault plan killed the run after unit {after_unit}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

impl HarnessError {
    /// Wraps an `std::io::Error` with the action and path context.
    pub fn io(action: impl Into<String>, path: &std::path::Path, e: &std::io::Error) -> Self {
        HarnessError::Io {
            action: action.into(),
            path: path.display().to_string(),
            source: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_and_specific() {
        let e = HarnessError::io(
            "write artifact",
            std::path::Path::new("/tmp/x.csv"),
            &std::io::Error::other("disk full"),
        );
        let s = e.to_string();
        assert!(
            s.contains("write artifact") && s.contains("/tmp/x.csv") && s.contains("disk full")
        );
        assert!(!s.contains('\n'));
    }

    #[test]
    fn exit_codes_follow_the_convention() {
        assert_eq!(
            HarnessError::InvalidArg {
                what: "--seed".into(),
                reason: "overflow".into()
            }
            .exit_code(),
            2
        );
        assert_eq!(HarnessError::UnknownExperiment("F99".into()).exit_code(), 2);
        assert_eq!(
            HarnessError::KilledByFaultPlan { after_unit: 3 }.exit_code(),
            137
        );
        assert_eq!(HarnessError::Manifest("truncated".into()).exit_code(), 1);
    }
}
