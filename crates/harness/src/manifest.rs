//! The run manifest: the checkpoint state of an experiment pipeline.
//!
//! One JSON file per output directory records which work units have been
//! executed and sealed, and — per artifact — the content digest of the
//! bytes that were *intended* to land on disk. The manifest is rewritten
//! atomically after every sealed unit, so a crash at any instant leaves a
//! loadable manifest describing exactly the completed prefix. On
//! `--resume` each recorded unit is re-verified against the files on
//! disk (the paper's `V` step applied to the runner itself): verified
//! units are skipped, missing or corrupted ones are recomputed.

use crate::atomic::atomic_write_in;
use crate::digest::digest_file_in;
use crate::error::HarnessError;
use crate::fault::FaultInjector;
use crate::retry::RetryPolicy;
use crate::storage::{StdFs, Storage};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Manifest layout version; bump on incompatible changes.
pub const MANIFEST_VERSION: u32 = 1;

/// Default manifest filename inside an output directory.
pub const MANIFEST_NAME: &str = "manifest.json";

/// One sealed artifact of a unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactRecord {
    /// Filename relative to the output directory.
    pub name: String,
    /// Size of the sealed content in bytes.
    pub bytes: u64,
    /// `fnv1a:<hex>` digest of the sealed content.
    pub digest: String,
}

/// One completed work unit (an experiment) and its sealed artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRecord {
    /// Stable unit id, e.g. `F4` or `T-rho3`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Data points the unit produced.
    pub points: u64,
    /// Wall time of the (last) computation of this unit, seconds.
    pub wall_secs: f64,
    /// Sealed artifacts, including the unit's rendered report.
    pub artifacts: Vec<ArtifactRecord>,
}

/// The resumable state of one experiments run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest layout version ([`MANIFEST_VERSION`]).
    pub format_version: u32,
    /// Producing tool, e.g. `experiments`.
    pub tool: String,
    /// Producing tool version.
    pub tool_version: String,
    /// Monte Carlo base seed of the run.
    pub seed: u64,
    /// Digest of the model constants (detects planning-input drift).
    pub config_digest: String,
    /// Whether the run sealed every requested unit.
    pub complete: bool,
    /// Sealed units, in execution order.
    pub units: Vec<UnitRecord>,
}

/// Result of re-verifying one recorded unit against the files on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Every artifact exists and matches its sealed digest.
    Verified,
    /// The unit was never sealed in this manifest.
    NotRecorded,
    /// An artifact file is missing.
    MissingArtifact(String),
    /// An artifact's bytes no longer match the sealed digest — a silent
    /// corruption, detected.
    DigestMismatch {
        /// Artifact filename.
        name: String,
        /// Digest sealed in the manifest.
        expected: String,
        /// Digest of the bytes currently on disk.
        actual: String,
    },
}

impl RunManifest {
    /// A fresh, empty manifest.
    pub fn new(tool: &str, tool_version: &str, seed: u64, config_digest: String) -> Self {
        RunManifest {
            format_version: MANIFEST_VERSION,
            tool: tool.into(),
            tool_version: tool_version.into(),
            seed,
            config_digest,
            complete: false,
            units: vec![],
        }
    }

    /// Loads and validates a manifest from `path` on the real
    /// filesystem.
    pub fn load(path: &Path) -> Result<RunManifest, HarnessError> {
        Self::load_from(&StdFs, path)
    }

    /// Loads and validates a manifest from `path` on `storage`.
    pub fn load_from(storage: &dyn Storage, path: &Path) -> Result<RunManifest, HarnessError> {
        let bytes = storage
            .read_file(path)
            .map_err(|e| HarnessError::io("read run manifest", path, &e))?;
        let text = String::from_utf8(bytes)
            .map_err(|e| HarnessError::Manifest(format!("{}: {e}", path.display())))?;
        let manifest: RunManifest = serde_json::from_str(&text)
            .map_err(|e| HarnessError::Manifest(format!("{}: {e}", path.display())))?;
        if manifest.format_version != MANIFEST_VERSION {
            return Err(HarnessError::Manifest(format!(
                "unsupported format_version {} (this build reads {MANIFEST_VERSION})",
                manifest.format_version
            )));
        }
        Ok(manifest)
    }

    /// Atomically writes the manifest to `path` on the real filesystem.
    pub fn save(
        &self,
        path: &Path,
        policy: &RetryPolicy,
        injector: &FaultInjector,
    ) -> Result<(), HarnessError> {
        self.save_in(&StdFs, path, policy, injector)
    }

    /// Atomically writes the manifest to `path` on `storage` — temp
    /// file, file sync, rename, parent-directory sync, so the rewritten
    /// checkpoint survives power loss (DESIGN.md §10).
    pub fn save_in(
        &self,
        storage: &dyn Storage,
        path: &Path,
        policy: &RetryPolicy,
        injector: &FaultInjector,
    ) -> Result<(), HarnessError> {
        let json = serde_json::to_string_pretty(self).expect("manifest serializes infallibly");
        atomic_write_in(storage, path, json.as_bytes(), policy, injector)
    }

    /// The sealed record for `id`, if any.
    pub fn unit(&self, id: &str) -> Option<&UnitRecord> {
        self.units.iter().find(|u| u.id == id)
    }

    /// Inserts or replaces the record for `unit.id`, preserving order of
    /// first insertion.
    pub fn record_unit(&mut self, unit: UnitRecord) {
        match self.units.iter_mut().find(|u| u.id == unit.id) {
            Some(slot) => *slot = unit,
            None => self.units.push(unit),
        }
    }

    /// Checks that `--resume` is continuing the same run: seed, config
    /// digest and tool must match what the manifest recorded.
    pub fn check_resumable(
        &self,
        tool: &str,
        seed: u64,
        config_digest: &str,
    ) -> Result<(), HarnessError> {
        let mismatch = |field: &str, recorded: String, current: String| {
            Err(HarnessError::ResumeMismatch {
                field: field.into(),
                recorded,
                current,
            })
        };
        if self.tool != tool {
            return mismatch("tool", self.tool.clone(), tool.into());
        }
        if self.seed != seed {
            return mismatch("seed", self.seed.to_string(), seed.to_string());
        }
        if self.config_digest != config_digest {
            return mismatch(
                "config_digest",
                self.config_digest.clone(),
                config_digest.into(),
            );
        }
        Ok(())
    }

    /// Re-verifies the sealed unit `id` against the artifacts in `dir`
    /// on the real filesystem.
    pub fn verify_unit(&self, dir: &Path, id: &str) -> VerifyOutcome {
        self.verify_unit_in(&StdFs, dir, id)
    }

    /// Re-verifies the sealed unit `id` against the artifacts in `dir`
    /// on `storage`. Timed under the `harness.verify` span; every digest
    /// check increments `harness.artifacts_verified`.
    pub fn verify_unit_in(&self, storage: &dyn Storage, dir: &Path, id: &str) -> VerifyOutcome {
        let _timer = rexec_obs::span!("harness.verify");
        let Some(unit) = self.unit(id) else {
            return VerifyOutcome::NotRecorded;
        };
        for a in &unit.artifacts {
            let path = dir.join(&a.name);
            let actual = match digest_file_in(storage, &path) {
                Ok(d) => d,
                Err(_) => return VerifyOutcome::MissingArtifact(a.name.clone()),
            };
            rexec_obs::counter!("harness.artifacts_verified").incr();
            if actual != a.digest {
                rexec_obs::counter!("harness.corrupt_artifacts_detected").incr();
                return VerifyOutcome::DigestMismatch {
                    name: a.name.clone(),
                    expected: a.digest.clone(),
                    actual,
                };
            }
        }
        VerifyOutcome::Verified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest_bytes;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rexec-manifest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sealed_manifest(dir: &Path, content: &[u8]) -> RunManifest {
        std::fs::write(dir.join("f.csv"), content).unwrap();
        let mut m = RunManifest::new("experiments", "0.1.0", 7, "fnv1a:0".into());
        m.record_unit(UnitRecord {
            id: "F4".into(),
            title: "Figure 4".into(),
            points: 49,
            wall_secs: 0.1,
            artifacts: vec![ArtifactRecord {
                name: "f.csv".into(),
                bytes: content.len() as u64,
                digest: digest_bytes(content),
            }],
        });
        m
    }

    #[test]
    fn round_trips_through_json() {
        let dir = tmpdir("roundtrip");
        let m = sealed_manifest(&dir, b"x,y\n1,2\n");
        let path = dir.join(MANIFEST_NAME);
        m.save(&path, &RetryPolicy::immediate(1), &FaultInjector::none())
            .unwrap();
        let back = RunManifest::load(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_flags_intact_missing_and_corrupted_artifacts() {
        let dir = tmpdir("verify");
        let m = sealed_manifest(&dir, b"x,y\n1,2\n");
        assert_eq!(m.verify_unit(&dir, "F4"), VerifyOutcome::Verified);
        assert_eq!(m.verify_unit(&dir, "F9"), VerifyOutcome::NotRecorded);

        std::fs::write(dir.join("f.csv"), b"x,y\n1,3\n").unwrap();
        assert!(matches!(
            m.verify_unit(&dir, "F4"),
            VerifyOutcome::DigestMismatch { name, .. } if name == "f.csv"
        ));

        std::fs::remove_file(dir.join("f.csv")).unwrap();
        assert_eq!(
            m.verify_unit(&dir, "F4"),
            VerifyOutcome::MissingArtifact("f.csv".into())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_unit_replaces_in_place() {
        let dir = tmpdir("replace");
        let mut m = sealed_manifest(&dir, b"a");
        m.record_unit(UnitRecord {
            id: "T-rho3".into(),
            title: "table".into(),
            points: 5,
            wall_secs: 0.0,
            artifacts: vec![],
        });
        let mut updated = m.unit("F4").unwrap().clone();
        updated.points = 50;
        m.record_unit(updated);
        assert_eq!(m.units.len(), 2);
        assert_eq!(m.units[0].id, "F4", "replacement keeps position");
        assert_eq!(m.units[0].points, 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_guard_rejects_parameter_drift() {
        let dir = tmpdir("guard");
        let m = sealed_manifest(&dir, b"a");
        assert!(m.check_resumable("experiments", 7, "fnv1a:0").is_ok());
        assert!(matches!(
            m.check_resumable("experiments", 8, "fnv1a:0"),
            Err(HarnessError::ResumeMismatch { field, .. }) if field == "seed"
        ));
        assert!(matches!(
            m.check_resumable("experiments", 7, "fnv1a:1"),
            Err(HarnessError::ResumeMismatch { field, .. }) if field == "config_digest"
        ));
        assert!(m.check_resumable("bench", 7, "fnv1a:0").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage_and_wrong_versions() {
        let dir = tmpdir("load");
        let path = dir.join(MANIFEST_NAME);
        std::fs::write(&path, b"{ not json").unwrap();
        assert!(matches!(
            RunManifest::load(&path),
            Err(HarnessError::Manifest(_))
        ));
        let mut m = sealed_manifest(&dir, b"a");
        m.format_version = 99;
        m.save(&path, &RetryPolicy::immediate(1), &FaultInjector::none())
            .unwrap();
        assert!(matches!(
            RunManifest::load(&path),
            Err(HarnessError::Manifest(msg)) if msg.contains("format_version")
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
