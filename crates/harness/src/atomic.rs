//! Atomic artifact writes: temp file + rename, under retry.
//!
//! A crash mid-write must never leave a truncated artifact behind under
//! its final name — downstream comparisons would silently consume it.
//! Every write lands in a hidden temp file in the destination directory
//! (same filesystem, so the rename is atomic on POSIX), is flushed with
//! `sync_all`, and only then renamed over the target.

use crate::error::HarnessError;
use crate::fault::FaultInjector;
use crate::retry::RetryPolicy;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers' temp files (plus the PID, so a
/// crashed run's leftovers can never be renamed over by a later run).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_path(path: &Path) -> std::path::PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".into());
    path.with_file_name(format!(".{name}.tmp-{}-{n}", std::process::id()))
}

fn write_once(path: &Path, bytes: &[u8], injector: &FaultInjector) -> std::io::Result<()> {
    injector.on_write_attempt()?;
    let tmp = temp_path(path);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best effort: never leave temp droppings next to the artifacts.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Atomically writes `bytes` to `path` under the retry policy, routing
/// every attempt through the fault injector. Counted in
/// `harness.atomic_writes`; exhausted retries surface as
/// [`HarnessError::Io`].
pub fn atomic_write(
    path: &Path,
    bytes: &[u8],
    policy: &RetryPolicy,
    injector: &FaultInjector,
) -> Result<(), HarnessError> {
    policy
        .run(|| write_once(path, bytes, injector))
        .map_err(|e| HarnessError::io("write", path, &e))?;
    rexec_obs::counter!("harness.atomic_writes").incr();
    Ok(())
}

/// Atomic write with the default retry policy and no fault injection —
/// the drop-in replacement for plain `std::fs::write` call sites.
pub fn atomic_write_simple(path: &Path, bytes: &[u8]) -> Result<(), HarnessError> {
    atomic_write(path, bytes, &RetryPolicy::default(), &FaultInjector::none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rexec-harness-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_content() {
        let dir = tmpdir("atomic");
        let path = dir.join("a.csv");
        atomic_write_simple(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write_simple(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = tmpdir("no-droppings");
        let path = dir.join("b.csv");
        atomic_write_simple(&path, b"data").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["b.csv".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_failure_is_retried_transparently() {
        let dir = tmpdir("retry");
        let path = dir.join("c.csv");
        let injector = FaultPlan::parse("fail-write=1").unwrap().injector();
        atomic_write(&path, b"survived", &RetryPolicy::immediate(3), &injector).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"survived");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_surface_a_typed_io_error() {
        let dir = tmpdir("exhaust");
        let path = dir.join("d.csv");
        // Fails attempts 1 and 2... but the budget is 2.
        let injector = FaultPlan::parse("fail-write=2").unwrap().injector();
        injector.on_write_attempt().unwrap(); // consume attempt 1 elsewhere
        let err = atomic_write(&path, b"x", &RetryPolicy::immediate(1), &injector).unwrap_err();
        assert!(matches!(err, HarnessError::Io { .. }));
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
