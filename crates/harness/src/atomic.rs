//! Atomic artifact writes: temp file + rename + parent-dir fsync, under
//! retry.
//!
//! A crash mid-write must never leave a truncated artifact behind under
//! its final name — downstream comparisons would silently consume it.
//! Every write lands in a hidden temp file in the destination directory
//! (same filesystem, so the rename is atomic on POSIX), is flushed with
//! `sync_file`, renamed over the target, and then the *parent directory*
//! is fsync'd: the rename is a directory-entry update, and without the
//! dir sync a power loss can roll it back, making an already-sealed
//! artifact vanish. That exact gap is what the `rexec-check` power-loss
//! model catches when the dir sync is disabled (see DESIGN.md §10).
//!
//! All four steps go through the [`Storage`] alphabet, so the same code
//! path runs against the real filesystem ([`StdFs`]) and the model
//! checker's crash-simulating [`crate::SimFs`].

use crate::error::HarnessError;
use crate::fault::FaultInjector;
use crate::retry::RetryPolicy;
use crate::storage::{normalize_dir, StdFs, Storage};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers' temp files (plus the PID, so a
/// crashed run's leftovers can never be renamed over by a later run).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Whether `name` looks like one of our staging files — used by the
/// lifecycle's start-of-run sweep for droppings a crashed run left
/// behind.
pub fn is_temp_name(name: &str) -> bool {
    name.starts_with('.') && name.contains(".tmp-")
}

fn temp_path(path: &Path) -> std::path::PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".into());
    path.with_file_name(format!(".{name}.tmp-{}-{n}", std::process::id()))
}

fn write_once(
    storage: &dyn Storage,
    path: &Path,
    bytes: &[u8],
    injector: &FaultInjector,
) -> std::io::Result<()> {
    injector.on_write_attempt()?;
    let tmp = temp_path(path);
    let result = (|| {
        storage.write_file(&tmp, bytes)?;
        storage.sync_file(&tmp)?;
        storage.rename(&tmp, path)?;
        // The rename only becomes durable once the parent directory's
        // entry table is flushed; without this, power loss can un-seal
        // the artifact (and, for manifest rewrites, the checkpoint).
        storage.sync_dir(&normalize_dir(path.parent().unwrap_or(Path::new(""))))
    })();
    if result.is_err() {
        // Best effort: never leave temp droppings next to the artifacts.
        let _ = storage.remove_file(&tmp);
    }
    result
}

/// Atomically writes `bytes` to `path` on `storage` under the retry
/// policy, routing every attempt through the fault injector. Counted in
/// `harness.atomic_writes`; exhausted retries surface as
/// [`HarnessError::Io`].
pub fn atomic_write_in(
    storage: &dyn Storage,
    path: &Path,
    bytes: &[u8],
    policy: &RetryPolicy,
    injector: &FaultInjector,
) -> Result<(), HarnessError> {
    policy
        .run(|| write_once(storage, path, bytes, injector))
        .map_err(|e| HarnessError::io("write", path, &e))?;
    rexec_obs::counter!("harness.atomic_writes").incr();
    Ok(())
}

/// [`atomic_write_in`] against the real filesystem.
pub fn atomic_write(
    path: &Path,
    bytes: &[u8],
    policy: &RetryPolicy,
    injector: &FaultInjector,
) -> Result<(), HarnessError> {
    atomic_write_in(&StdFs, path, bytes, policy, injector)
}

/// Atomic write with the default retry policy and no fault injection —
/// the drop-in replacement for plain `std::fs::write` call sites.
pub fn atomic_write_simple(path: &Path, bytes: &[u8]) -> Result<(), HarnessError> {
    atomic_write(path, bytes, &RetryPolicy::default(), &FaultInjector::none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::simfs::{CrashMode, SimFs};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rexec-harness-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_content() {
        let dir = tmpdir("atomic");
        let path = dir.join("a.csv");
        atomic_write_simple(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write_simple(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = tmpdir("no-droppings");
        let path = dir.join("b.csv");
        atomic_write_simple(&path, b"data").unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["b.csv".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_failure_is_retried_transparently() {
        let dir = tmpdir("retry");
        let path = dir.join("c.csv");
        let injector = FaultPlan::parse("fail-write=1").unwrap().injector();
        atomic_write(&path, b"survived", &RetryPolicy::immediate(3), &injector).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"survived");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_surface_a_typed_io_error() {
        let dir = tmpdir("exhaust");
        let path = dir.join("d.csv");
        // Fails attempts 1 and 2... but the budget is 2.
        let injector = FaultPlan::parse("fail-write=2").unwrap().injector();
        injector.on_write_attempt().unwrap(); // consume attempt 1 elsewhere
        let err = atomic_write(&path, b"x", &RetryPolicy::immediate(1), &injector).unwrap_err();
        assert!(matches!(err, HarnessError::Io { .. }));
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_is_power_loss_durable_on_the_model() {
        let fs = SimFs::new();
        let dir = Path::new("out");
        fs.create_dir_all(dir).unwrap();
        atomic_write_in(
            &fs,
            &dir.join("a.csv"),
            b"sealed",
            &RetryPolicy::immediate(1),
            &FaultInjector::none(),
        )
        .unwrap();
        // Crash at the very end of the write: the artifact must survive.
        let crashed = SimFs::replay(&fs.ops()).crash(CrashMode::PowerLoss);
        assert_eq!(crashed.read_file(&dir.join("a.csv")).unwrap(), b"sealed");
    }

    #[test]
    fn temp_names_are_recognized_by_the_sweep() {
        assert!(is_temp_name(".a.csv.tmp-123-0"));
        assert!(!is_temp_name("a.csv"));
        assert!(!is_temp_name(".hidden"));
    }
}
