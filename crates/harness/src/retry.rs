//! Capped exponential backoff for transient I/O failures.

use std::time::Duration;

/// Retry policy: up to `max_attempts` tries, sleeping
/// `base_delay * 2^(attempt-1)` (capped at `max_delay`) between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps — used by tests so injected failures
    /// retry instantly.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// Backoff before retry number `retry` (1-based).
    pub fn delay_before_retry(&self, retry: u32) -> Duration {
        let factor = 1u32 << (retry - 1).min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// Runs `op` until it succeeds or the attempt budget is spent.
    /// Every retry increments the `harness.write_retries` counter.
    pub fn run<T>(&self, mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        let mut attempt = 1;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.max_attempts => {
                    rexec_obs::counter!("harness.write_retries").incr();
                    std::thread::sleep(self.delay_before_retry(attempt));
                    let _ = e;
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::immediate(4);
        let mut failures_left = 3;
        let out = policy.run(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(std::io::Error::other("transient"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let policy = RetryPolicy::immediate(3);
        let mut calls = 0;
        let out: std::io::Result<()> = policy.run(|| {
            calls += 1;
            Err(std::io::Error::other("persistent"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(p.delay_before_retry(1), Duration::from_millis(10));
        assert_eq!(p.delay_before_retry(2), Duration::from_millis(20));
        assert_eq!(p.delay_before_retry(3), Duration::from_millis(35));
        assert_eq!(p.delay_before_retry(4), Duration::from_millis(35));
    }
}
