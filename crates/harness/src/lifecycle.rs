//! The checkpoint/resume lifecycle, generic over [`Storage`].
//!
//! This is the one state machine both worlds execute: the `experiments`
//! binary drives it against the real filesystem ([`StdFs`]), and the
//! `rexec-check` model checker drives the *same code* against a
//! crash-simulating [`crate::SimFs`] — which is what makes the
//! exhaustive crash exploration meaningful: there is no separate "model"
//! that could drift from the production path.
//!
//! Per run: sweep stale temp droppings, load (on resume) or create the
//! [`RunManifest`], then for each unit either re-verify + skip it or
//! compute it, seal its artifacts (digest the intended bytes, write
//! atomically with parent-dir fsync), and atomically rewrite the
//! manifest so the on-disk checkpoint always describes exactly the
//! sealed prefix. The caller observes progress through
//! [`LifecycleEvent`]s — the model checker uses [`UnitSealed`]
//! (`LifecycleEvent::UnitSealed`) to mark the storage-op index at which
//! each unit's checkpoint was acknowledged, the boundary after which
//! losing that unit is a durability violation.

use crate::atomic::{atomic_write_in, is_temp_name};
use crate::digest::digest_bytes;
use crate::error::HarnessError;
use crate::fault::FaultInjector;
use crate::manifest::{ArtifactRecord, RunManifest, UnitRecord, VerifyOutcome, MANIFEST_NAME};
use crate::retry::RetryPolicy;
use crate::storage::Storage;
use std::path::{Path, PathBuf};

/// What a unit's computation produced: metadata plus the artifact bytes
/// to seal, in write order.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitOutput {
    /// Human-readable title recorded in the manifest.
    pub title: String,
    /// Data points the unit produced.
    pub points: u64,
    /// Wall time of the computation, seconds (0.0 for model fixtures —
    /// the manifest must then be byte-reproducible).
    pub wall_secs: f64,
    /// `(file name, contents)` pairs, sealed in this order.
    pub artifacts: Vec<(String, Vec<u8>)>,
}

/// One schedulable work unit: a stable id plus the computation that
/// produces its artifacts when the unit is not skippable.
pub struct UnitPlan<'a> {
    /// Stable unit id, e.g. `F4` or `U2`.
    pub id: String,
    /// Produces the unit's output; only called when the unit must be
    /// (re)computed.
    pub compute: Box<dyn FnMut() -> Result<UnitOutput, HarnessError> + 'a>,
}

/// What happened to one unit during a lifecycle run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitDisposition {
    /// Computed fresh (no resume, or not sealed before).
    Computed,
    /// Sealed by an earlier run, re-verified intact, skipped.
    SkippedVerified,
    /// Sealed before but failed re-verification; recomputed. The string
    /// says why, e.g. `digest mismatch on fig4_... .csv`.
    Recomputed(String),
}

/// Progress callbacks out of [`run_units`].
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent<'a> {
    /// A resume found an existing manifest sealing `sealed_units` units.
    ResumeLoaded {
        /// Units the loaded manifest seals.
        sealed_units: usize,
    },
    /// A unit is about to run (or be skipped) with this disposition.
    UnitStarting {
        /// Unit id.
        id: &'a str,
        /// Skip / compute / recompute decision for the unit.
        disposition: &'a UnitDisposition,
    },
    /// A unit's artifacts and manifest entry are on storage; the
    /// checkpoint for this unit is acknowledged from here on.
    UnitSealed {
        /// Unit id.
        id: &'a str,
        /// The sealed manifest record (artifact names and digests).
        unit: &'a UnitRecord,
    },
}

/// Parameters of one lifecycle run (the storage-independent subset of
/// the `experiments` CLI).
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleConfig {
    /// Output directory for artifacts and the manifest.
    pub out_dir: PathBuf,
    /// Tool name recorded in manifests (resume refuses to cross tools).
    pub tool: String,
    /// Tool version recorded in manifests.
    pub tool_version: String,
    /// Base seed recorded in manifests (resume refuses a mismatch).
    pub seed: u64,
    /// Configuration digest recorded in manifests (likewise).
    pub config_digest: String,
    /// Re-verify sealed units from an existing manifest and skip them.
    pub resume: bool,
    /// Retry policy for artifact/manifest writes.
    pub retry: RetryPolicy,
}

/// Result of a completed lifecycle run.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleOutcome {
    /// The final manifest (also sealed on storage), `complete = true`.
    pub manifest: RunManifest,
    /// `(unit id, disposition)` in execution order.
    pub units: Vec<(String, UnitDisposition)>,
}

/// Reason string for a failed verification (the unit will be
/// recomputed).
pub fn verify_reason(outcome: &VerifyOutcome) -> String {
    match outcome {
        VerifyOutcome::Verified => unreachable!("verified units are skipped, not recomputed"),
        VerifyOutcome::NotRecorded => "not previously sealed".into(),
        VerifyOutcome::MissingArtifact(name) => format!("missing artifact {name}"),
        VerifyOutcome::DigestMismatch { name, .. } => format!("digest mismatch on {name}"),
    }
}

/// Removes staging files (`.{name}.tmp-{pid}-{seq}`) a crashed run left
/// in `dir`, returning how many were swept. The output directory is
/// single-writer by contract (the manifest is one checkpoint, not a
/// lock), so any temp file present at run start is a stale dropping —
/// without this sweep, a resumed run's tree would differ from an
/// uninterrupted run's by exactly those droppings (found by the model
/// checker's byte-identity invariant).
pub fn sweep_stale_temps(storage: &dyn Storage, dir: &Path) -> usize {
    let Ok(names) = storage.list_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for name in names {
        if is_temp_name(&name) && storage.remove_file(&dir.join(&name)).is_ok() {
            swept += 1;
            rexec_obs::counter!("harness.stale_temps_swept").incr();
        }
    }
    swept
}

/// Seals one artifact: digests the intended bytes, lets the fault plan
/// corrupt what actually lands on storage (a *silent* error: the
/// manifest keeps the intended digest), then writes atomically under
/// retry.
fn seal_artifact(
    storage: &dyn Storage,
    dir: &Path,
    name: &str,
    bytes: &[u8],
    retry: &RetryPolicy,
    injector: &FaultInjector,
) -> Result<ArtifactRecord, HarnessError> {
    let record = ArtifactRecord {
        name: name.to_string(),
        bytes: bytes.len() as u64,
        digest: digest_bytes(bytes),
    };
    let mut on_disk = bytes.to_vec();
    injector.corrupt_artifact(&mut on_disk);
    atomic_write_in(storage, &dir.join(name), &on_disk, retry, injector)?;
    Ok(record)
}

/// Runs the verified-checkpoint lifecycle over `units` on `storage`.
///
/// Executes (or, on resume, verifies and skips) every unit in order,
/// sealing artifacts and atomically rewriting the manifest after each
/// one. The fault plan's `kill-after-unit=K` aborts with
/// [`HarnessError::KilledByFaultPlan`] after the K-th unit of *this
/// invocation* is sealed or skipped — the manifest is already on
/// storage, so a subsequent resume continues from unit K+1.
pub fn run_units(
    storage: &dyn Storage,
    cfg: &LifecycleConfig,
    units: &mut [UnitPlan<'_>],
    injector: &FaultInjector,
    observe: &mut dyn FnMut(LifecycleEvent<'_>),
) -> Result<LifecycleOutcome, HarnessError> {
    storage
        .create_dir_all(&cfg.out_dir)
        .map_err(|e| HarnessError::io("create output directory", &cfg.out_dir, &e))?;
    sweep_stale_temps(storage, &cfg.out_dir);
    let manifest_path = cfg.out_dir.join(MANIFEST_NAME);

    let mut manifest = if cfg.resume && storage.exists(&manifest_path) {
        let mut m = RunManifest::load_from(storage, &manifest_path)?;
        m.check_resumable(&cfg.tool, cfg.seed, &cfg.config_digest)?;
        // The manifest claims completion only once *this* run's last
        // unit is sealed.
        m.complete = false;
        observe(LifecycleEvent::ResumeLoaded {
            sealed_units: m.units.len(),
        });
        m
    } else {
        RunManifest::new(
            &cfg.tool,
            &cfg.tool_version,
            cfg.seed,
            cfg.config_digest.clone(),
        )
    };

    let mut dispositions: Vec<(String, UnitDisposition)> = vec![];
    for (idx, unit) in units.iter_mut().enumerate() {
        let key = unit.id.clone();
        let disposition = if cfg.resume {
            match manifest.verify_unit_in(storage, &cfg.out_dir, &key) {
                VerifyOutcome::Verified => UnitDisposition::SkippedVerified,
                other => UnitDisposition::Recomputed(verify_reason(&other)),
            }
        } else {
            UnitDisposition::Computed
        };
        observe(LifecycleEvent::UnitStarting {
            id: &key,
            disposition: &disposition,
        });

        if disposition == UnitDisposition::SkippedVerified {
            rexec_obs::counter!("harness.units_skipped").incr();
        } else {
            if matches!(disposition, UnitDisposition::Recomputed(_)) {
                rexec_obs::counter!("harness.units_recomputed").incr();
            }
            let output = (unit.compute)()?;
            let mut artifacts = vec![];
            for (name, bytes) in &output.artifacts {
                artifacts.push(seal_artifact(
                    storage,
                    &cfg.out_dir,
                    name,
                    bytes,
                    &cfg.retry,
                    injector,
                )?);
            }
            manifest.record_unit(UnitRecord {
                id: key.clone(),
                title: output.title,
                points: output.points,
                wall_secs: output.wall_secs,
                artifacts,
            });
            // Checkpoint: the manifest on storage always describes
            // exactly the sealed prefix.
            manifest.save_in(storage, &manifest_path, &cfg.retry, injector)?;
            rexec_obs::counter!("harness.units_sealed").incr();
            observe(LifecycleEvent::UnitSealed {
                id: &key,
                unit: manifest.unit(&key).expect("just recorded"),
            });
        }

        dispositions.push((key, disposition));
        if injector.should_kill_after_unit(idx as u64 + 1) {
            return Err(HarnessError::KilledByFaultPlan {
                after_unit: idx as u64 + 1,
            });
        }
    }

    manifest.complete = true;
    manifest.save_in(storage, &manifest_path, &cfg.retry, injector)?;
    Ok(LifecycleOutcome {
        manifest,
        units: dispositions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simfs::SimFs;
    use crate::FaultPlan;

    fn fixture_cfg(resume: bool) -> LifecycleConfig {
        LifecycleConfig {
            out_dir: PathBuf::from("results"),
            tool: "lifecycle-test".into(),
            tool_version: "0.0.0".into(),
            seed: 7,
            config_digest: "fnv1a:0".into(),
            resume,
            retry: RetryPolicy::immediate(1),
        }
    }

    fn two_units<'a>() -> Vec<UnitPlan<'a>> {
        (0..2)
            .map(|i| UnitPlan {
                id: format!("U{i}"),
                compute: Box::new(move || {
                    Ok(UnitOutput {
                        title: format!("unit {i}"),
                        points: i + 1,
                        wall_secs: 0.0,
                        artifacts: vec![(format!("u{i}.csv"), format!("x,{i}\n").into_bytes())],
                    })
                }),
            })
            .collect()
    }

    #[test]
    fn fresh_run_seals_all_units_and_completes() {
        let fs = SimFs::new();
        let mut sealed = vec![];
        let out = run_units(
            &fs,
            &fixture_cfg(false),
            &mut two_units(),
            &FaultInjector::none(),
            &mut |e| {
                if let LifecycleEvent::UnitSealed { id, .. } = e {
                    sealed.push(id.to_string());
                }
            },
        )
        .unwrap();
        assert!(out.manifest.complete);
        assert_eq!(sealed, vec!["U0", "U1"]);
        assert!(fs.exists(Path::new("results/manifest.json")));
        assert!(fs.exists(Path::new("results/u0.csv")));
        assert_eq!(
            out.units,
            vec![
                ("U0".into(), UnitDisposition::Computed),
                ("U1".into(), UnitDisposition::Computed),
            ]
        );
    }

    #[test]
    fn resume_skips_verified_units_and_is_byte_identical() {
        let fs = SimFs::new();
        run_units(
            &fs,
            &fixture_cfg(false),
            &mut two_units(),
            &FaultInjector::none(),
            &mut |_| {},
        )
        .unwrap();
        let clean = fs.tree();
        let out = run_units(
            &fs,
            &fixture_cfg(true),
            &mut two_units(),
            &FaultInjector::none(),
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(
            out.units,
            vec![
                ("U0".into(), UnitDisposition::SkippedVerified),
                ("U1".into(), UnitDisposition::SkippedVerified),
            ]
        );
        assert_eq!(fs.tree(), clean);
    }

    #[test]
    fn kill_after_unit_leaves_a_resumable_checkpoint() {
        let fs = SimFs::new();
        let err = run_units(
            &fs,
            &fixture_cfg(false),
            &mut two_units(),
            &FaultPlan::parse("kill-after-unit=1").unwrap().injector(),
            &mut |_| {},
        )
        .unwrap_err();
        assert!(matches!(
            err,
            HarnessError::KilledByFaultPlan { after_unit: 1 }
        ));
        let m = RunManifest::load_from(&fs, Path::new("results/manifest.json")).unwrap();
        assert!(!m.complete);
        assert_eq!(m.units.len(), 1);
    }

    #[test]
    fn stale_temps_are_swept_at_run_start() {
        let fs = SimFs::new();
        fs.create_dir_all(Path::new("results")).unwrap();
        fs.write_file(Path::new("results/.u0.csv.tmp-99-0"), b"dropping")
            .unwrap();
        run_units(
            &fs,
            &fixture_cfg(false),
            &mut two_units(),
            &FaultInjector::none(),
            &mut |_| {},
        )
        .unwrap();
        assert!(!fs.exists(Path::new("results/.u0.csv.tmp-99-0")));
    }
}
