//! The storage-operation alphabet of the checkpoint lifecycle.
//!
//! Every durable effect the harness performs — staging a temp file,
//! syncing its contents, renaming it into place, syncing the parent
//! directory so the rename itself survives power loss, removing stale
//! temp droppings — goes through this narrow [`Storage`] trait. The
//! production implementation is [`StdFs`] (plain `std::fs`); the model
//! checker substitutes [`crate::SimFs`], an in-memory filesystem that
//! records the exact operation sequence and can replay any prefix with
//! crash semantics (see `simfs.rs` and DESIGN.md §10).
//!
//! The alphabet is deliberately minimal: six durable operations
//! (`create_dir_all`, `write_file`, `sync_file`, `rename`, `sync_dir`,
//! `remove_file`) plus three read-only probes (`read_file`, `exists`,
//! `list_dir`). Anything the lifecycle cannot express in this alphabet
//! it must not do — that is what makes exhaustive crash exploration
//! tractable.

use std::io;
use std::path::{Path, PathBuf};

/// Narrow filesystem interface for every durable effect of the
/// checkpoint/resume lifecycle.
///
/// Implementations must provide POSIX-like semantics:
///
/// * [`write_file`](Storage::write_file) creates or truncates; the data
///   is *not* durable until [`sync_file`](Storage::sync_file);
/// * [`rename`](Storage::rename) atomically replaces the target, but the
///   directory entry is *not* durable until the parent directory is
///   [`sync_dir`](Storage::sync_dir)'d;
/// * read-only probes ([`read_file`](Storage::read_file),
///   [`exists`](Storage::exists), [`list_dir`](Storage::list_dir))
///   observe the volatile (in-cache) state.
pub trait Storage {
    /// Creates `path` and all missing ancestors (idempotent).
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Creates or truncates `path` and writes `bytes` (no sync).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flushes `path`'s contents to durable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Flushes the directory's entry table to durable storage, making
    /// prior renames/creates/removes inside it survive power loss.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Reads the full contents of `path`.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// File names (not full paths, directories excluded) inside `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>>;
}

/// The production [`Storage`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl Storage for StdFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    #[cfg(unix)]
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // On POSIX a directory can be opened read-only and fsync'd; this
        // is the only portable way to persist a rename's directory entry.
        std::fs::File::open(normalize_dir(path))?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        // Directories cannot be opened for fsync on this platform; the
        // metadata flush is left to the OS (same durability as before
        // the fix — the model checker still verifies the unix path).
        Ok(())
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = vec![];
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }
}

/// `Path::parent()` of a single-component relative path is the empty
/// path; map it (and an explicitly empty input) to `.` so it can be
/// opened and fsync'd.
#[cfg_attr(not(unix), allow(dead_code))]
pub(crate) fn normalize_dir(path: &Path) -> PathBuf {
    if path.as_os_str().is_empty() {
        PathBuf::from(".")
    } else {
        path.to_path_buf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rexec-storage-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stdfs_round_trips_the_full_alphabet() {
        let fs = StdFs;
        let dir = tmpdir("alphabet");
        let sub = dir.join("nested/deeper");
        fs.create_dir_all(&sub).unwrap();
        let tmp = sub.join(".a.tmp-1");
        let fin = sub.join("a.csv");
        fs.write_file(&tmp, b"payload").unwrap();
        fs.sync_file(&tmp).unwrap();
        fs.rename(&tmp, &fin).unwrap();
        fs.sync_dir(&sub).unwrap();
        assert!(fs.exists(&fin) && !fs.exists(&tmp));
        assert_eq!(fs.read_file(&fin).unwrap(), b"payload");
        assert_eq!(fs.list_dir(&sub).unwrap(), vec!["a.csv".to_string()]);
        fs.remove_file(&fin).unwrap();
        assert!(!fs.exists(&fin));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn normalize_dir_maps_empty_to_cwd() {
        assert_eq!(normalize_dir(Path::new("")), PathBuf::from("."));
        assert_eq!(normalize_dir(Path::new("x/y")), PathBuf::from("x/y"));
    }

    #[test]
    fn sync_dir_accepts_repo_relative_dirs() {
        // BENCH_sweeps.json-style writes at the repo root sync `.`.
        StdFs.sync_dir(Path::new("")).unwrap();
    }
}
