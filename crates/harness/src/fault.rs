//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes, up front and seeded, exactly which faults a
//! run will suffer: the Nth filesystem write attempt fails with a
//! transient I/O error, the Nth sealed artifact is silently corrupted on
//! disk, and/or the run is killed after unit K completes. The plan is
//! parsed from a `--fault-plan` spec so kill/corrupt/resume paths are
//! exercisable from tests and CI without OS-level tricks.

use crate::error::HarnessError;
use std::sync::atomic::{AtomicU64, Ordering};

/// Declarative, seeded fault schedule (all counters 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Fail the Nth write attempt with a transient I/O error.
    pub fail_write: Option<u64>,
    /// Corrupt the Nth artifact: the manifest seals the intended bytes,
    /// but the file lands with one seeded byte flipped — a silent error.
    pub corrupt_artifact: Option<u64>,
    /// Abort the run (exit code 137) right after unit K is sealed.
    pub kill_after_unit: Option<u64>,
    /// Seed steering which byte a corruption flips.
    pub seed: u64,
}

impl FaultPlan {
    /// Parses a comma-separated spec, e.g.
    /// `fail-write=3,corrupt-artifact=2,kill-after-unit=5,seed=42`.
    /// Unknown keys are rejected, not ignored — a typo like
    /// `kil-after-unit=2` must fail loudly, or the test that relies on
    /// it silently tests nothing. Duplicate keys are rejected for the
    /// same reason: last-one-wins hides a contradictory plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, HarnessError> {
        let mut plan = FaultPlan::default();
        let bad = |reason: String| HarnessError::InvalidArg {
            what: "--fault-plan".into(),
            reason,
        };
        let mut seen: Vec<&str> = vec![];
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(format!("`{part}` is not key=value")))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| bad(format!("`{value}` is not an unsigned integer")))?;
            let key = key.trim();
            match key {
                "fail-write" => plan.fail_write = Some(n),
                "corrupt-artifact" => plan.corrupt_artifact = Some(n),
                "kill-after-unit" => plan.kill_after_unit = Some(n),
                "seed" => plan.seed = n,
                other => {
                    return Err(bad(format!(
                        "unknown key `{other}` (expected fail-write, corrupt-artifact, \
                         kill-after-unit or seed)"
                    )))
                }
            }
            if let Some(&dup) = seen.iter().find(|&&s| s == key) {
                return Err(bad(format!("duplicate key `{dup}`")));
            }
            seen.push(key);
        }
        for (key, n) in [
            ("fail-write", plan.fail_write),
            ("corrupt-artifact", plan.corrupt_artifact),
            ("kill-after-unit", plan.kill_after_unit),
        ] {
            if n == Some(0) {
                return Err(bad(format!("{key} is 1-based; 0 never fires")));
            }
        }
        Ok(plan)
    }

    /// A live injector tracking this plan's counters.
    pub fn injector(self) -> FaultInjector {
        FaultInjector {
            plan: self,
            writes: AtomicU64::new(0),
            artifacts: AtomicU64::new(0),
        }
    }
}

/// Process-wide counters deciding when each planned fault fires.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    writes: AtomicU64,
    artifacts: AtomicU64,
}

impl FaultInjector {
    /// An injector that never fires (the production default).
    pub fn none() -> Self {
        FaultPlan::default().injector()
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Called before every write attempt; returns the injected error when
    /// this attempt is the planned failure.
    pub fn on_write_attempt(&self) -> std::io::Result<()> {
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.fail_write == Some(n) {
            rexec_obs::counter!("harness.injected_write_failures").incr();
            return Err(std::io::Error::other(format!(
                "injected fault: write attempt {n} fails"
            )));
        }
        Ok(())
    }

    /// Called with each artifact's sealed bytes; flips one seeded byte
    /// when this artifact is the planned corruption. Returns whether the
    /// bytes were mutated.
    pub fn corrupt_artifact(&self, bytes: &mut [u8]) -> bool {
        let n = self.artifacts.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.corrupt_artifact != Some(n) || bytes.is_empty() {
            return false;
        }
        let idx = (self.plan.seed as usize) % bytes.len();
        // XOR with a fixed nonzero mask so the flip always changes the byte.
        bytes[idx] ^= 0xA5;
        rexec_obs::counter!("harness.injected_corruptions").incr();
        true
    }

    /// Whether the plan kills the run after the given completed unit
    /// (1-based).
    pub fn should_kill_after_unit(&self, completed_units: u64) -> bool {
        self.plan.kill_after_unit == Some(completed_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let p =
            FaultPlan::parse("fail-write=3,corrupt-artifact=2,kill-after-unit=5,seed=42").unwrap();
        assert_eq!(p.fail_write, Some(3));
        assert_eq!(p.corrupt_artifact, Some(2));
        assert_eq!(p.kill_after_unit, Some(5));
        assert_eq!(p.seed, 42);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("fail-write").is_err());
        assert!(FaultPlan::parse("fail-write=x").is_err());
        assert!(FaultPlan::parse("explode=1").is_err());
        assert!(FaultPlan::parse("kill-after-unit=0").is_err());
    }

    #[test]
    fn a_typoed_key_is_an_error_not_a_noop() {
        // `kil-after-unit=2` must not parse into an empty plan that
        // silently never kills — the CI smoke test would then "pass"
        // without exercising the crash path at all.
        let err = FaultPlan::parse("kil-after-unit=2").unwrap_err();
        assert!(matches!(
            &err,
            HarnessError::InvalidArg { what, reason }
                if what == "--fault-plan" && reason.contains("kil-after-unit")
        ));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        for spec in [
            "fail-write=1,fail-write=2",
            "corrupt-artifact=1,corrupt-artifact=1",
            "kill-after-unit=1,seed=2,kill-after-unit=3",
            "seed=1,seed=1",
            "fail-write=1, fail-write =2", // whitespace does not dodge it
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                matches!(&err, HarnessError::InvalidArg { reason, .. }
                    if reason.contains("duplicate key")),
                "spec `{spec}` gave {err}"
            );
        }
    }

    #[test]
    fn write_failure_fires_exactly_once_on_the_nth_attempt() {
        let inj = FaultPlan::parse("fail-write=2").unwrap().injector();
        assert!(inj.on_write_attempt().is_ok());
        assert!(inj.on_write_attempt().is_err());
        assert!(inj.on_write_attempt().is_ok());
        assert!(inj.on_write_attempt().is_ok());
    }

    #[test]
    fn corruption_is_seeded_and_hits_the_nth_artifact() {
        let inj = FaultPlan::parse("corrupt-artifact=2,seed=3")
            .unwrap()
            .injector();
        let mut first = b"abcdef".to_vec();
        assert!(!inj.corrupt_artifact(&mut first));
        assert_eq!(first, b"abcdef");
        let mut second = b"abcdef".to_vec();
        assert!(inj.corrupt_artifact(&mut second));
        assert_ne!(second, b"abcdef");
        // seed = 3 → byte index 3 flipped, rest untouched.
        assert_eq!(&second[..3], b"abc");
        assert_eq!(&second[4..], b"ef");
    }

    #[test]
    fn kill_fires_only_at_the_planned_unit() {
        let inj = FaultPlan::parse("kill-after-unit=2").unwrap().injector();
        assert!(!inj.should_kill_after_unit(1));
        assert!(inj.should_kill_after_unit(2));
        assert!(!inj.should_kill_after_unit(3));
    }
}
