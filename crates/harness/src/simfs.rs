//! `SimFs`: a deterministic in-memory filesystem with crash semantics.
//!
//! The model checker's [`Storage`] implementation. Every durable
//! operation is recorded in an ordered log ([`StorageOp`], with full
//! payloads), so a run's exact write sequence can be replayed up to any
//! prefix and then *crashed* in one of two modes:
//!
//! * [`CrashMode::ProcessKill`] — the process dies but the OS survives:
//!   everything written so far is visible after the crash (the page
//!   cache outlives the process).
//! * [`CrashMode::PowerLoss`] — the machine loses power: only data that
//!   was explicitly made durable survives. File *contents* persist as of
//!   the last [`sync_file`](Storage::sync_file); directory *entries*
//!   (renames, creations, removals) persist as of the last
//!   [`sync_dir`](Storage::sync_dir) of their parent. A rename that was
//!   never followed by a parent-directory sync is rolled back to
//!   whatever entry was last durable — exactly the failure mode that
//!   loses a "sealed" checkpoint when the writer forgets the dir fsync.
//!
//! The model is inode-based so atomic-replace semantics are faithful: an
//! un-synced rename over an existing file rolls back to the *old* file's
//! durable content on power loss, not to nothing. Directory existence is
//! modeled as immediately durable (a deliberate simplification — the
//! lifecycle creates its output directory once, before any checkpoint
//! state exists worth losing).

use crate::storage::Storage;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One recorded durable operation, payload included, so any prefix of a
/// run can be replayed without re-running the code that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageOp {
    /// `create_dir_all(path)`.
    CreateDirAll {
        /// Directory created (with ancestors).
        path: PathBuf,
    },
    /// `write_file(path, bytes)` — create/truncate plus write.
    WriteFile {
        /// Destination path.
        path: PathBuf,
        /// Full contents written.
        bytes: Vec<u8>,
    },
    /// `sync_file(path)` — contents become durable.
    SyncFile {
        /// File synced.
        path: PathBuf,
    },
    /// `rename(from, to)` — atomic replace, entry not yet durable.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
    /// `sync_dir(path)` — directory entries become durable.
    SyncDir {
        /// Directory synced.
        path: PathBuf,
    },
    /// `remove_file(path)`.
    RemoveFile {
        /// File removed.
        path: PathBuf,
    },
}

impl StorageOp {
    /// Short human-readable rendering for violation reports.
    pub fn describe(&self) -> String {
        match self {
            StorageOp::CreateDirAll { path } => format!("create_dir_all({})", path.display()),
            StorageOp::WriteFile { path, bytes } => {
                format!("write_file({}, {} bytes)", path.display(), bytes.len())
            }
            StorageOp::SyncFile { path } => format!("sync_file({})", path.display()),
            StorageOp::Rename { from, to } => {
                format!("rename({} -> {})", from.display(), to.display())
            }
            StorageOp::SyncDir { path } => format!("sync_dir({})", path.display()),
            StorageOp::RemoveFile { path } => format!("remove_file({})", path.display()),
        }
    }
}

/// What kind of crash to simulate at a log prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Process killed; OS page cache survives, so all writes are visible.
    ProcessKill,
    /// Power lost; un-synced file data and un-synced directory entries
    /// are rolled back to their last durable state.
    PowerLoss,
}

impl CrashMode {
    /// Both modes, in exploration order.
    pub const ALL: [CrashMode; 2] = [CrashMode::ProcessKill, CrashMode::PowerLoss];

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CrashMode::ProcessKill => "process-kill",
            CrashMode::PowerLoss => "power-loss",
        }
    }
}

type InodeId = u64;

#[derive(Debug, Clone, Default)]
struct Inode {
    /// Current (volatile, in-cache) contents.
    data: Vec<u8>,
    /// Contents as of the last `sync_file`; `None` if never synced.
    durable: Option<Vec<u8>>,
}

#[derive(Debug, Clone, Default)]
struct Inner {
    dirs: BTreeSet<PathBuf>,
    /// Volatile namespace: what the running process observes.
    entries: BTreeMap<PathBuf, InodeId>,
    /// Durable namespace: what survives power loss.
    durable_entries: BTreeMap<PathBuf, InodeId>,
    inodes: BTreeMap<InodeId, Inode>,
    next_inode: InodeId,
    log: Vec<StorageOp>,
}

impl Inner {
    fn parent_of(path: &Path) -> PathBuf {
        crate::storage::normalize_dir(path.parent().unwrap_or(Path::new("")))
    }

    fn require_parent(&self, path: &Path) -> io::Result<()> {
        let parent = Self::parent_of(path);
        if self.dirs.contains(&parent) {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simfs: no such directory: {}", parent.display()),
            ))
        }
    }

    /// Applies `op` to the volatile/durable state (without logging).
    fn apply(&mut self, op: &StorageOp) -> io::Result<()> {
        match op {
            StorageOp::CreateDirAll { path } => {
                let mut p = crate::storage::normalize_dir(path);
                loop {
                    self.dirs.insert(p.clone());
                    match p.parent() {
                        Some(parent) if !parent.as_os_str().is_empty() => p = parent.to_path_buf(),
                        _ => break,
                    }
                }
                self.dirs.insert(PathBuf::from("."));
                Ok(())
            }
            StorageOp::WriteFile { path, bytes } => {
                self.require_parent(path)?;
                match self.entries.get(path) {
                    Some(&id) => {
                        // Create/truncate of an existing name reuses the
                        // inode; its durable contents stay whatever the
                        // last sync made them.
                        self.inodes.get_mut(&id).expect("live inode").data = bytes.clone();
                    }
                    None => {
                        let id = self.next_inode;
                        self.next_inode += 1;
                        self.inodes.insert(
                            id,
                            Inode {
                                data: bytes.clone(),
                                durable: None,
                            },
                        );
                        self.entries.insert(path.clone(), id);
                    }
                }
                Ok(())
            }
            StorageOp::SyncFile { path } => {
                let id = *self.entries.get(path).ok_or_else(|| not_found(path))?;
                let inode = self.inodes.get_mut(&id).expect("live inode");
                inode.durable = Some(inode.data.clone());
                Ok(())
            }
            StorageOp::Rename { from, to } => {
                self.require_parent(to)?;
                let id = self.entries.remove(from).ok_or_else(|| not_found(from))?;
                self.entries.insert(to.clone(), id);
                Ok(())
            }
            StorageOp::SyncDir { path } => {
                let dir = crate::storage::normalize_dir(path);
                if !self.dirs.contains(&dir) {
                    return Err(not_found(&dir));
                }
                // Persist the entry table: every volatile entry directly
                // under `dir` becomes durable; durable entries with no
                // volatile counterpart (renamed away / removed) drop.
                let volatile: BTreeMap<PathBuf, InodeId> = self
                    .entries
                    .iter()
                    .filter(|(p, _)| Inner::parent_of(p) == dir)
                    .map(|(p, &id)| (p.clone(), id))
                    .collect();
                self.durable_entries
                    .retain(|p, _| Inner::parent_of(p) != dir);
                self.durable_entries.extend(volatile);
                Ok(())
            }
            StorageOp::RemoveFile { path } => {
                self.entries.remove(path).ok_or_else(|| not_found(path))?;
                Ok(())
            }
        }
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("simfs: no such file: {}", path.display()),
    )
}

/// Deterministic in-memory [`Storage`] with an operation log and crash
/// replay. See the module docs for the crash model.
#[derive(Debug, Default)]
pub struct SimFs {
    inner: Mutex<Inner>,
}

impl Clone for SimFs {
    fn clone(&self) -> Self {
        SimFs {
            inner: Mutex::new(self.inner.lock().expect("simfs poisoned").clone()),
        }
    }
}

impl SimFs {
    /// An empty filesystem (only `.` exists).
    pub fn new() -> Self {
        let fs = SimFs::default();
        fs.inner
            .lock()
            .expect("simfs poisoned")
            .dirs
            .insert(PathBuf::from("."));
        fs
    }

    /// Replays a recorded prefix onto a fresh filesystem. Panics if the
    /// prefix does not apply cleanly — it was recorded from a successful
    /// run, so failure to replay is a checker bug, not a model state.
    pub fn replay(ops: &[StorageOp]) -> Self {
        let fs = SimFs::new();
        {
            let mut inner = fs.inner.lock().expect("simfs poisoned");
            for op in ops {
                inner
                    .apply(op)
                    .unwrap_or_else(|e| panic!("replaying {}: {e}", op.describe()));
            }
        }
        fs
    }

    /// Consumes the current state and returns the filesystem as observed
    /// after a crash of the given mode, with an empty operation log.
    pub fn crash(self, mode: CrashMode) -> Self {
        let mut inner = self.inner.into_inner().expect("simfs poisoned");
        match mode {
            CrashMode::ProcessKill => {
                // The page cache survives: the post-crash view is the
                // volatile view. (Durability labels are irrelevant to a
                // later reader; leave them as-is.)
            }
            CrashMode::PowerLoss => {
                // Only durable entries survive, each with its last
                // durable contents (a durable entry whose data was never
                // synced surfaces as an empty file — garbage-after-crash
                // that verification must catch).
                inner.entries = inner.durable_entries.clone();
                let live: BTreeSet<InodeId> = inner.entries.values().copied().collect();
                inner.inodes.retain(|id, _| live.contains(id));
                for inode in inner.inodes.values_mut() {
                    inode.data = inode.durable.clone().unwrap_or_default();
                }
            }
        }
        inner.log.clear();
        SimFs {
            inner: Mutex::new(inner),
        }
    }

    /// The recorded operation log.
    pub fn ops(&self) -> Vec<StorageOp> {
        self.inner.lock().expect("simfs poisoned").log.clone()
    }

    /// Number of operations recorded so far.
    pub fn op_count(&self) -> usize {
        self.inner.lock().expect("simfs poisoned").log.len()
    }

    /// The visible (volatile) file tree: path → contents.
    pub fn tree(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        let inner = self.inner.lock().expect("simfs poisoned");
        inner
            .entries
            .iter()
            .map(|(p, id)| (p.clone(), inner.inodes[id].data.clone()))
            .collect()
    }

    /// XORs `mask` into byte `index` of the file at `path`, in both the
    /// volatile and durable contents — modeling at-rest corruption (bit
    /// rot) of an already-sealed artifact.
    pub fn corrupt_byte(&self, path: &Path, index: usize, mask: u8) {
        assert_ne!(mask, 0, "a zero mask would not corrupt anything");
        let mut inner = self.inner.lock().expect("simfs poisoned");
        let id = *inner.entries.get(path).expect("corrupting a missing file");
        let inode = inner.inodes.get_mut(&id).expect("live inode");
        inode.data[index] ^= mask;
        if let Some(durable) = &mut inode.durable {
            if index < durable.len() {
                durable[index] ^= mask;
            }
        }
    }

    fn record(&self, op: StorageOp) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("simfs poisoned");
        inner.apply(&op)?;
        inner.log.push(op);
        Ok(())
    }
}

impl Storage for SimFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.record(StorageOp::CreateDirAll {
            path: path.to_path_buf(),
        })
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.record(StorageOp::WriteFile {
            path: path.to_path_buf(),
            bytes: bytes.to_vec(),
        })
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.record(StorageOp::SyncFile {
            path: path.to_path_buf(),
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.record(StorageOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        })
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.record(StorageOp::SyncDir {
            path: path.to_path_buf(),
        })
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().expect("simfs poisoned");
        let id = inner.entries.get(path).ok_or_else(|| not_found(path))?;
        Ok(inner.inodes[id].data.clone())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.record(StorageOp::RemoveFile {
            path: path.to_path_buf(),
        })
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner
            .lock()
            .expect("simfs poisoned")
            .entries
            .contains_key(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let dir = crate::storage::normalize_dir(path);
        let inner = self.inner.lock().expect("simfs poisoned");
        if !inner.dirs.contains(&dir) {
            return Err(not_found(&dir));
        }
        Ok(inner
            .entries
            .keys()
            .filter(|p| Inner::parent_of(p) == dir)
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged_rename(fs: &SimFs, dir: &Path, name: &str, bytes: &[u8], sync_dir: bool) {
        let tmp = dir.join(format!(".{name}.tmp-0"));
        let fin = dir.join(name);
        fs.write_file(&tmp, bytes).unwrap();
        fs.sync_file(&tmp).unwrap();
        fs.rename(&tmp, &fin).unwrap();
        if sync_dir {
            fs.sync_dir(dir).unwrap();
        }
    }

    #[test]
    fn process_kill_keeps_everything_written() {
        let fs = SimFs::new();
        let dir = Path::new("out");
        fs.create_dir_all(dir).unwrap();
        staged_rename(&fs, dir, "a.csv", b"data", false);
        let crashed = SimFs::replay(&fs.ops()).crash(CrashMode::ProcessKill);
        assert_eq!(crashed.read_file(&dir.join("a.csv")).unwrap(), b"data");
    }

    #[test]
    fn power_loss_rolls_back_unsynced_directory_entries() {
        let fs = SimFs::new();
        let dir = Path::new("out");
        fs.create_dir_all(dir).unwrap();
        // File synced but the rename's directory entry never was: the
        // sealed name vanishes on power loss.
        staged_rename(&fs, dir, "a.csv", b"data", false);
        let crashed = SimFs::replay(&fs.ops()).crash(CrashMode::PowerLoss);
        assert!(!crashed.exists(&dir.join("a.csv")));

        // With the parent-directory sync the entry survives.
        let fs = SimFs::new();
        fs.create_dir_all(dir).unwrap();
        staged_rename(&fs, dir, "a.csv", b"data", true);
        let crashed = SimFs::replay(&fs.ops()).crash(CrashMode::PowerLoss);
        assert_eq!(crashed.read_file(&dir.join("a.csv")).unwrap(), b"data");
    }

    #[test]
    fn power_loss_after_unsynced_replace_serves_the_old_file() {
        let fs = SimFs::new();
        let dir = Path::new("out");
        fs.create_dir_all(dir).unwrap();
        staged_rename(&fs, dir, "m.json", b"v1", true);
        // Replace v1 by v2 but never sync the directory again.
        staged_rename(&fs, dir, "m.json", b"v2", false);
        assert_eq!(fs.read_file(&dir.join("m.json")).unwrap(), b"v2");
        let crashed = SimFs::replay(&fs.ops()).crash(CrashMode::PowerLoss);
        assert_eq!(
            crashed.read_file(&dir.join("m.json")).unwrap(),
            b"v1",
            "atomic replace must roll back to the old durable entry"
        );
    }

    #[test]
    fn durable_entry_without_synced_data_surfaces_empty() {
        let fs = SimFs::new();
        let dir = Path::new("out");
        fs.create_dir_all(dir).unwrap();
        let tmp = dir.join(".a.tmp-0");
        fs.write_file(&tmp, b"data").unwrap();
        fs.rename(&tmp, &dir.join("a.csv")).unwrap();
        fs.sync_dir(dir).unwrap(); // entry durable, data never synced
        let crashed = SimFs::replay(&fs.ops()).crash(CrashMode::PowerLoss);
        assert_eq!(crashed.read_file(&dir.join("a.csv")).unwrap(), b"");
    }

    #[test]
    fn replay_prefixes_walk_the_run_deterministically() {
        let fs = SimFs::new();
        let dir = Path::new("out");
        fs.create_dir_all(dir).unwrap();
        staged_rename(&fs, dir, "a.csv", b"one", true);
        staged_rename(&fs, dir, "b.csv", b"two", true);
        let ops = fs.ops();
        assert_eq!(ops.len(), 9);
        // Prefix after the first file's dir sync: only a.csv, durable.
        let mid = SimFs::replay(&ops[..5]).crash(CrashMode::PowerLoss);
        let tree = mid.tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[&dir.join("a.csv")], b"one");
        // Full replay matches the live tree byte for byte.
        assert_eq!(SimFs::replay(&ops).tree(), fs.tree());
    }

    #[test]
    fn corrupt_byte_hits_volatile_and_durable_copies() {
        let fs = SimFs::new();
        let dir = Path::new("out");
        fs.create_dir_all(dir).unwrap();
        staged_rename(&fs, dir, "a.csv", b"abc", true);
        fs.corrupt_byte(&dir.join("a.csv"), 1, 0xFF);
        assert_eq!(fs.read_file(&dir.join("a.csv")).unwrap(), b"a\x9dc");
        let crashed = fs.crash(CrashMode::PowerLoss);
        assert_eq!(crashed.read_file(&dir.join("a.csv")).unwrap(), b"a\x9dc");
    }

    #[test]
    fn write_into_missing_directory_fails() {
        let fs = SimFs::new();
        assert!(fs.write_file(Path::new("nope/a.csv"), b"x").is_err());
        assert!(fs.sync_dir(Path::new("nope")).is_err());
    }

    #[test]
    fn list_dir_sees_only_direct_children() {
        let fs = SimFs::new();
        fs.create_dir_all(Path::new("out/sub")).unwrap();
        staged_rename(&fs, Path::new("out"), "a.csv", b"1", true);
        staged_rename(&fs, Path::new("out/sub"), "b.csv", b"2", true);
        assert_eq!(fs.list_dir(Path::new("out")).unwrap(), vec!["a.csv"]);
        assert_eq!(fs.list_dir(Path::new("out/sub")).unwrap(), vec!["b.csv"]);
    }
}
