//! # rexec-harness
//!
//! Crash-tolerant robustness layer for the rexec experiment pipeline —
//! the runner practicing what the solver preaches. The paper's premise
//! is that silent errors are survivable when every unit of work is
//! *verified* before it is *checkpointed*; this crate applies the same
//! discipline to the experiments that reproduce it:
//!
//! * [`Storage`] / [`StdFs`] / [`SimFs`] — the narrow storage-operation
//!   alphabet every durable effect goes through: `std::fs` in
//!   production, a crash-simulating in-memory filesystem under the
//!   `rexec-check` model checker (op log, prefix replay, process-kill
//!   and power-loss semantics);
//! * [`atomic_write`] / [`atomic_write_simple`] / [`atomic_write_in`] —
//!   artifacts land via temp-file + sync + atomic rename + parent-dir
//!   fsync, never truncated under a crash and never lost to power loss;
//! * [`run_units`] — the checkpoint/resume lifecycle itself, generic
//!   over [`Storage`], shared verbatim by the `experiments` pipeline and
//!   the model checker;
//! * [`Digest`] / [`digest_bytes`] / [`digest_file`] — FNV-1a content
//!   digests seal each artifact (the runner's verification step `V`);
//! * [`RunManifest`] — the per-run checkpoint state: which units are
//!   sealed, with which artifact digests; rewritten atomically after
//!   every unit so any crash leaves a resumable prefix;
//! * [`RetryPolicy`] — capped exponential backoff for transient I/O;
//! * [`FaultPlan`] / [`FaultInjector`] — deterministic, seeded fault
//!   injection (fail the Nth write, corrupt the Nth artifact, kill after
//!   unit K) so crash/corrupt/resume paths are exercised in-tree;
//! * [`HarnessError`] — the typed error surface, with a process exit
//!   code convention.
//!
//! Std-only, like `rexec-obs`; observability counters emitted here:
//! `harness.atomic_writes`, `harness.write_retries`,
//! `harness.injected_write_failures`, `harness.injected_corruptions`,
//! `harness.artifacts_verified`, `harness.corrupt_artifacts_detected`,
//! plus the `harness.verify` span.

#![warn(missing_docs)]

mod atomic;
mod digest;
mod error;
mod fault;
mod lifecycle;
mod manifest;
mod retry;
mod simfs;
mod storage;

pub use atomic::{atomic_write, atomic_write_in, atomic_write_simple, is_temp_name};
pub use digest::{digest_bytes, digest_file, digest_file_in, Digest};
pub use error::HarnessError;
pub use fault::{FaultInjector, FaultPlan};
pub use lifecycle::{
    run_units, sweep_stale_temps, verify_reason, LifecycleConfig, LifecycleEvent, LifecycleOutcome,
    UnitDisposition, UnitOutput, UnitPlan,
};
pub use manifest::{ArtifactRecord, RunManifest, UnitRecord, VerifyOutcome, MANIFEST_NAME};
pub use retry::RetryPolicy;
pub use simfs::{CrashMode, SimFs, StorageOp};
pub use storage::{StdFs, Storage};
