//! `rexec-check` — crash-consistency model checker CLI.
//!
//! Exhaustively explores every crash point (process-kill and power-loss)
//! and every single-byte corruption of a fixture checkpoint/resume run,
//! asserting the two DESIGN.md §10 invariants. Exit 0 when every
//! explored state is consistent, exit 1 when any violation is found,
//! exit 2 on bad usage.

use rexec_check::{explore, CheckConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: rexec-check [--units N] [--no-dir-sync] [--no-corruption]

Exhaustive crash-point and corruption exploration of the checkpoint/
resume lifecycle on the in-memory storage model.

options:
  --units N        fixture size in work units (default 4)
  --no-dir-sync    model the pre-fix writer that skips the parent-
                   directory fsync after rename (expected to FAIL the
                   power-loss exploration; kept as a regression probe)
  --no-corruption  skip the single-byte corruption sweep
  -h, --help       print this help";

fn parse_args(args: &[String]) -> Result<CheckConfig, String> {
    let mut cfg = CheckConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--units" => {
                let value = it.next().ok_or("--units requires a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--units: not a number: {value}"))?;
                if n == 0 {
                    return Err("--units must be at least 1".into());
                }
                cfg.units = n;
            }
            "--no-dir-sync" => cfg.dir_sync = false,
            "--no-corruption" => cfg.corruption = false,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("rexec-check: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = explore(&cfg);
    println!("{report}");
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
