//! # rexec-check
//!
//! A std-only, in-repo crash-consistency model checker for the
//! manifest/checkpoint/resume lifecycle (`rexec_harness::run_units` —
//! the *same* code the `experiments` binary runs, not a re-model of it).
//!
//! The checker runs a small deterministic multi-unit fixture against
//! [`SimFs`], which records every storage operation the lifecycle
//! performs. It then explores, exhaustively:
//!
//! * **every crash prefix** — for each boundary between two storage
//!   operations, and for each [`CrashMode`] (process kill keeps the page
//!   cache; power loss drops un-fsynced file data *and* un-fsynced
//!   directory entries), it materializes the surviving state, drives a
//!   resume to completion, and asserts the lifecycle's contract;
//! * **every single-byte corruption** — for each byte of each sealed
//!   artifact in a completed run, it flips that byte at rest and drives
//!   a resume.
//!
//! Two invariants (DESIGN.md §10) are asserted in every explored state:
//!
//! 1. **Recovery is exact** — the resumed run's `results/` tree is
//!    byte-identical to an uninterrupted run's, and any unit whose
//!    checkpoint was acknowledged (its manifest rewrite completed)
//!    before the crash is *verified and skipped*, never silently lost.
//!    The skip requirement is the durability half: it is what the
//!    missing parent-directory fsync used to violate under power loss
//!    (see [`NoDirSync`] and the regression test in
//!    `tests/model_check.rs`).
//! 2. **Corruption is always detected** — a corrupt sealed artifact is
//!    flagged (`digest mismatch`) and recomputed, never served as
//!    intact.

#![warn(missing_docs)]

use rexec_harness::{
    run_units, CrashMode, FaultInjector, HarnessError, LifecycleConfig, LifecycleEvent,
    RetryPolicy, SimFs, Storage, StorageOp, UnitDisposition, UnitOutput, UnitPlan,
};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Output directory the model runs use inside [`SimFs`].
pub const MODEL_OUT_DIR: &str = "results";

/// A [`Storage`] adapter that silently drops `sync_dir`, modeling the
/// pre-fix atomic writer (file fsync only, no parent-directory fsync).
/// Under [`CrashMode::PowerLoss`] the explorer then demonstrates the
/// durability gap: renames never become durable, so sealed units vanish
/// and invariant 1 is violated at every post-seal crash point.
pub struct NoDirSync<'a>(pub &'a dyn Storage);

impl Storage for NoDirSync<'_> {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.0.create_dir_all(path)
    }
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.0.write_file(path, bytes)
    }
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.0.sync_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.0.rename(from, to)
    }
    fn sync_dir(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.0.read_file(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.0.remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.0.exists(path)
    }
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        self.0.list_dir(path)
    }
}

/// What to explore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConfig {
    /// Fixture size: number of work units in the model run.
    pub units: usize,
    /// `false` models the pre-fix writer (no parent-directory fsync).
    pub dir_sync: bool,
    /// Crash modes to explore at every prefix.
    pub modes: Vec<CrashMode>,
    /// Also run the single-byte corruption sweep over sealed artifacts.
    pub corruption: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            units: 4,
            dir_sync: true,
            modes: CrashMode::ALL.to_vec(),
            corruption: true,
        }
    }
}

/// One invariant violation found by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which explored state, e.g.
    /// `power-loss crash after op 17 (rename(...))`.
    pub scenario: String,
    /// What broke, e.g. `lost sealed work: unit U1 ... was recomputed`.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.scenario, self.detail)
    }
}

/// Exploration summary: counts of explored states plus every violation.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Fixture units in the model run.
    pub units: usize,
    /// Storage operations the uninterrupted run performed.
    pub ops: usize,
    /// Crash states explored (prefixes × modes).
    pub crash_states: usize,
    /// Corruption states explored (one per byte per sealed artifact).
    pub corruption_states: usize,
    /// Every invariant violation found.
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// Total states the explorer drove a resume from.
    pub fn states_explored(&self) -> usize {
        self.crash_states + self.corruption_states
    }

    /// Whether both invariants held in every explored state.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model check: {} fixture units, {} storage ops in the uninterrupted run",
            self.units, self.ops
        )?;
        writeln!(
            f,
            "explored {} states: {} crash states ({} prefixes x modes), {} corruption states",
            self.states_explored(),
            self.crash_states,
            self.ops + 1,
            self.corruption_states
        )?;
        if self.ok() {
            write!(
                f,
                "OK: resume byte-identical and no sealed work lost in every crash state; \
                 every injected corruption detected"
            )
        } else {
            writeln!(f, "{} VIOLATION(S):", self.violations.len())?;
            const SHOWN: usize = 20;
            for v in self.violations.iter().take(SHOWN) {
                writeln!(f, "  - {v}")?;
            }
            if self.violations.len() > SHOWN {
                writeln!(f, "  ... and {} more", self.violations.len() - SHOWN)?;
            }
            write!(f, "the checkpoint/resume lifecycle is NOT crash-consistent")
        }
    }
}

/// Deterministic fixture: `n` units, each sealing a small CSV dataset
/// and a report, with contents that are a pure function of the unit
/// index (so recomputation is exact restoration, as in the real
/// pipeline — DESIGN.md §9).
pub fn fixture_units(n: usize) -> Vec<UnitPlan<'static>> {
    (0..n)
        .map(|i| UnitPlan {
            id: format!("U{i}"),
            compute: Box::new(move || {
                let mut csv = String::from("w,sigma,energy\n");
                for row in 0..3 {
                    let w = 100 * (i + 1) + row;
                    csv.push_str(&format!("{w},{}.{},{}\n", (i + row) % 4, i, w * 2));
                }
                Ok(UnitOutput {
                    title: format!("fixture unit {i}"),
                    points: 3,
                    wall_secs: 0.0,
                    artifacts: vec![
                        (format!("u{i}_data.csv"), csv.into_bytes()),
                        (
                            format!("report_U{i}.txt"),
                            format!("fixture unit {i}: 3 points, deterministic\n").into_bytes(),
                        ),
                    ],
                })
            }),
        })
        .collect()
}

fn model_cfg(resume: bool) -> LifecycleConfig {
    LifecycleConfig {
        out_dir: PathBuf::from(MODEL_OUT_DIR),
        tool: "rexec-check".into(),
        tool_version: "model".into(),
        seed: 42,
        config_digest: "fnv1a:fixture".into(),
        resume,
        retry: RetryPolicy::immediate(1),
    }
}

/// Runs the lifecycle over the fixture on `sim`, optionally through the
/// [`NoDirSync`] shim, returning the dispositions (and recording seal
/// points when `seal_points` is given).
fn drive(
    sim: &SimFs,
    dir_sync: bool,
    units: usize,
    resume: bool,
    mut seal_points: Option<&mut Vec<(String, usize)>>,
) -> Result<Vec<(String, UnitDisposition)>, HarnessError> {
    let shim;
    let storage: &dyn Storage = if dir_sync {
        sim
    } else {
        shim = NoDirSync(sim);
        &shim
    };
    let mut plans = fixture_units(units);
    let outcome = run_units(
        storage,
        &model_cfg(resume),
        &mut plans,
        &FaultInjector::none(),
        &mut |event| {
            if let LifecycleEvent::UnitSealed { id, .. } = event {
                if let Some(points) = seal_points.as_deref_mut() {
                    points.push((id.to_string(), sim.op_count()));
                }
            }
        },
    )?;
    Ok(outcome.units)
}

/// Compares two trees and renders the first difference, if any.
fn first_diff(
    expected: &BTreeMap<PathBuf, Vec<u8>>,
    actual: &BTreeMap<PathBuf, Vec<u8>>,
) -> Option<String> {
    for (path, bytes) in expected {
        match actual.get(path) {
            None => return Some(format!("missing file {}", path.display())),
            Some(other) if other != bytes => {
                return Some(format!(
                    "{} differs ({} vs {} bytes)",
                    path.display(),
                    other.len(),
                    bytes.len()
                ))
            }
            Some(_) => {}
        }
    }
    actual
        .keys()
        .find(|p| !expected.contains_key(*p))
        .map(|p| format!("unexpected file {}", p.display()))
}

/// Resumes from `state` and asserts both invariants, appending any
/// violations. `sealed_before` lists units whose checkpoints were
/// acknowledged before the crash — they must verify and be skipped.
fn check_resume(
    state: SimFs,
    cfg: &CheckConfig,
    scenario: &str,
    expected: &BTreeMap<PathBuf, Vec<u8>>,
    sealed_before: &[&str],
    must_recompute: Option<(&str, &str)>,
    violations: &mut Vec<Violation>,
) {
    let violate = |violations: &mut Vec<Violation>, detail: String| {
        violations.push(Violation {
            scenario: scenario.to_string(),
            detail,
        })
    };
    let dispositions = match drive(&state, cfg.dir_sync, cfg.units, true, None) {
        Ok(d) => d,
        Err(e) => {
            violate(violations, format!("resume failed: {e}"));
            return;
        }
    };
    for &id in sealed_before {
        match dispositions.iter().find(|(uid, _)| uid == id) {
            Some((_, UnitDisposition::SkippedVerified)) => {}
            Some((_, other)) => violate(
                violations,
                format!("lost sealed work: unit {id} was checkpointed before the crash but resume saw {other:?}"),
            ),
            None => violate(violations, format!("unit {id} missing from resume")),
        }
    }
    if let Some((id, reason_fragment)) = must_recompute {
        match dispositions.iter().find(|(uid, _)| uid == id) {
            Some((_, UnitDisposition::Recomputed(reason))) if reason.contains(reason_fragment) => {}
            Some((_, other)) => violate(
                violations,
                format!(
                    "corruption not detected: unit {id} should recompute with `{reason_fragment}`, \
                     resume saw {other:?}"
                ),
            ),
            None => violate(violations, format!("unit {id} missing from resume")),
        }
    }
    if let Some(diff) = first_diff(expected, &state.tree()) {
        violate(
            violations,
            format!("resumed tree not byte-identical: {diff}"),
        );
    }
}

/// Exhaustively explores the crash (and optionally corruption) state
/// space of the checkpoint/resume lifecycle for an `cfg.units`-unit
/// fixture run. Never panics on a violation — everything found is
/// reported in the returned [`ExploreReport`].
pub fn explore(cfg: &CheckConfig) -> ExploreReport {
    let mut report = ExploreReport {
        units: cfg.units,
        ..ExploreReport::default()
    };

    // Uninterrupted reference run: the op log to crash into, the seal
    // points (checkpoint-acknowledged boundaries), and the expected
    // final tree.
    let baseline = SimFs::new();
    let mut seal_points: Vec<(String, usize)> = vec![];
    drive(
        &baseline,
        cfg.dir_sync,
        cfg.units,
        false,
        Some(&mut seal_points),
    )
    .expect("the uninterrupted fixture run cannot fail");
    let ops: Vec<StorageOp> = baseline.ops();
    let expected = baseline.tree();
    report.ops = ops.len();

    // Phase 1: a crash between every pair of storage operations, in
    // every mode.
    for k in 0..=ops.len() {
        let after = match k {
            0 => "before any storage op".to_string(),
            _ => format!("after op {k}/{} ({})", ops.len(), ops[k - 1].describe()),
        };
        let sealed_before: Vec<&str> = seal_points
            .iter()
            .filter(|(_, seal_op)| *seal_op <= k)
            .map(|(id, _)| id.as_str())
            .collect();
        for &mode in &cfg.modes {
            let state = SimFs::replay(&ops[..k]).crash(mode);
            let scenario = format!("{} crash {after}", mode.label());
            check_resume(
                state,
                cfg,
                &scenario,
                &expected,
                &sealed_before,
                None,
                &mut report.violations,
            );
            report.crash_states += 1;
        }
    }

    // Phase 2: flip every byte of every sealed artifact of the
    // completed run, one state per byte.
    if cfg.corruption {
        let manifest = rexec_harness::RunManifest::load_from(
            &baseline,
            &PathBuf::from(MODEL_OUT_DIR).join(rexec_harness::MANIFEST_NAME),
        )
        .expect("the completed fixture run seals a loadable manifest");
        for unit in &manifest.units {
            for artifact in &unit.artifacts {
                let path = PathBuf::from(MODEL_OUT_DIR).join(&artifact.name);
                for index in 0..artifact.bytes as usize {
                    let state = baseline.clone();
                    state.corrupt_byte(&path, index, 0xA5);
                    let scenario = format!(
                        "byte {index} of sealed artifact {} corrupted",
                        artifact.name
                    );
                    let sealed: Vec<&str> = manifest
                        .units
                        .iter()
                        .map(|u| u.id.as_str())
                        .filter(|id| *id != unit.id)
                        .collect();
                    check_resume(
                        state,
                        cfg,
                        &scenario,
                        &expected,
                        &sealed,
                        Some((&unit.id, "digest mismatch")),
                        &mut report.violations,
                    );
                    report.corruption_states += 1;
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_deterministic() {
        fn run(i: usize) -> UnitOutput {
            let mut units = fixture_units(3);
            (units[i].compute)().unwrap()
        }
        assert_eq!(run(1), run(1));
        assert_ne!(run(0).artifacts, run(2).artifacts);
    }

    #[test]
    fn two_unit_exploration_is_green_and_counts_states() {
        let report = explore(&CheckConfig {
            units: 2,
            ..CheckConfig::default()
        });
        assert!(report.ok(), "violations: {:?}", report.violations);
        // create_dir + 2 units x (2 artifacts + manifest) x 4 ops +
        // final manifest save.
        assert_eq!(report.ops, 1 + 2 * 3 * 4 + 4);
        assert_eq!(report.crash_states, (report.ops + 1) * 2);
        assert!(report.corruption_states > 100);
    }

    #[test]
    fn no_dir_sync_power_loss_loses_sealed_units() {
        let report = explore(&CheckConfig {
            units: 2,
            dir_sync: false,
            modes: vec![CrashMode::PowerLoss],
            corruption: false,
        });
        assert!(!report.ok());
        assert!(report
            .violations
            .iter()
            .any(|v| v.detail.contains("lost sealed work")));
    }
}
