//! `rexec-plan`: energy-optimal two-speed checkpointing plans from the
//! command line. See `--help` or the crate docs.

use rexec_cli::args::{Args, USAGE};
use rexec_cli::run::execute;

fn write_or_die(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {what} to {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("{what} written: {path}");
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return;
    }
    match execute(&args) {
        Ok(outcome) => {
            println!("{}", outcome.report);
            if let (Some(path), Some(jsonl)) = (&args.trace_jsonl, &outcome.trace_jsonl) {
                write_or_die(path, jsonl, "trace");
            }
            if let (Some(path), Some(json)) = (&args.metrics, &outcome.metrics_json) {
                write_or_die(path, json, "metrics");
            }
            if !outcome.feasible {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
