//! `rexec-plan`: energy-optimal two-speed checkpointing plans from the
//! command line. See `--help` or the crate docs.
//!
//! Artifact writes (`--metrics`, `--metrics-prom`, `--trace-chrome`,
//! `--trace-jsonl`) are atomic: the file is staged next to its
//! destination and renamed into place, so a crash mid-write never
//! leaves a truncated artifact under the final name.
//! Transient write failures are retried under capped backoff, and
//! `--fault-plan` injects deterministic failures for testing.

use rexec_cli::args::{Args, USAGE};
use rexec_cli::run::execute;
use rexec_harness::{atomic_write, FaultInjector, RetryPolicy};
use std::path::Path;

fn write_or_die(path: &str, contents: &str, what: &str, injector: &FaultInjector) {
    let retry = RetryPolicy::default();
    if let Err(e) = atomic_write(Path::new(path), contents.as_bytes(), &retry, injector) {
        eprintln!("error: cannot write {what}: {e}");
        std::process::exit(1);
    }
    eprintln!("{what} written: {path}");
}

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return;
    }
    let injector = args.fault_plan.injector();
    match execute(&args) {
        Ok(outcome) => {
            println!("{}", outcome.report);
            if let (Some(path), Some(jsonl)) = (&args.trace_jsonl, &outcome.trace_jsonl) {
                write_or_die(path, jsonl, "trace", &injector);
            }
            if let (Some(path), Some(json)) = (&args.metrics, &outcome.metrics_json) {
                write_or_die(path, json, "metrics", &injector);
            }
            if let (Some(path), Some(text)) = (&args.metrics_prom, &outcome.metrics_prom) {
                write_or_die(path, text, "prometheus metrics", &injector);
            }
            if let (Some(path), Some(json)) = (&args.trace_chrome, &outcome.trace_chrome) {
                write_or_die(path, json, "chrome trace", &injector);
            }
            if !outcome.feasible {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
