//! `rexec-plan`: energy-optimal two-speed checkpointing plans from the
//! command line. See `--help` or the crate docs.

use rexec_cli::args::{Args, USAGE};
use rexec_cli::run::execute;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return;
    }
    match execute(&args) {
        Ok(outcome) => {
            println!("{}", outcome.report);
            if !outcome.feasible {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
