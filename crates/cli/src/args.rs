//! Argument parsing for `rexec-plan` (no external CLI dependency).

use std::fmt;

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Named platform (hera/atlas/coastal/coastal-ssd), if any.
    pub platform: Option<String>,
    /// Named processor (xscale/crusoe), if any.
    pub processor: Option<String>,
    /// Custom silent-error rate λ (1/s).
    pub lambda: Option<f64>,
    /// Custom checkpoint cost C (s).
    pub checkpoint: Option<f64>,
    /// Custom verification cost V (s, at full speed).
    pub verification: Option<f64>,
    /// Custom recovery cost R (s; defaults to C).
    pub recovery: Option<f64>,
    /// Custom cube-law coefficient κ (mW).
    pub kappa: Option<f64>,
    /// Custom idle power (mW).
    pub p_idle: Option<f64>,
    /// Custom I/O power (mW; defaults to κσ_min³).
    pub p_io: Option<f64>,
    /// Custom speed set.
    pub speeds: Option<Vec<f64>>,
    /// Performance bound ρ (default 3).
    pub rho: f64,
    /// Error law name (exponential/weibull/lognormal); non-exponential
    /// laws are simulation-only and rejected by the analytic planner
    /// with a typed error.
    pub law: Option<String>,
    /// Shape parameter for a non-exponential law.
    pub shape: Option<f64>,
    /// Re-execution schedule search depth (1–4; default: single σ₂).
    pub schedule_depth: Option<u32>,
    /// Deadline quantile q ∈ (0,1): bound the q-quantile of T/W.
    pub quantile: Option<f64>,
    /// Total application work, enabling the application-level plan.
    pub w_base: Option<f64>,
    /// Monte Carlo validation trials (0 = off).
    pub validate: u64,
    /// Also print the one-speed baseline.
    pub compare_one_speed: bool,
    /// Print the time/energy Pareto frontier with this many sweep points.
    pub pareto: Option<usize>,
    /// Write a JSON metrics snapshot (counters, histograms, span timings)
    /// to this path; also enables span timing.
    pub metrics: Option<String>,
    /// Write a Prometheus text-exposition rendering of the metrics
    /// snapshot to this path; also enables span timing.
    pub metrics_prom: Option<String>,
    /// Write a Chrome trace-event JSON span timeline to this path
    /// (loadable in Perfetto / `chrome://tracing`); enables the span
    /// timeline for the run.
    pub trace_chrome: Option<String>,
    /// Write simulated pattern traces as JSON Lines to this path.
    pub trace_jsonl: Option<String>,
    /// Deterministic fault injection for artifact writes (crash-recovery
    /// testing; defaults to no faults).
    pub fault_plan: rexec_harness::FaultPlan,
    /// Print progress lines to stderr (solver stats, Monte Carlo slices).
    pub verbose: bool,
    /// Print usage and exit.
    pub help: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            platform: None,
            processor: None,
            lambda: None,
            checkpoint: None,
            verification: None,
            recovery: None,
            kappa: None,
            p_idle: None,
            p_io: None,
            speeds: None,
            rho: 3.0,
            law: None,
            shape: None,
            schedule_depth: None,
            quantile: None,
            w_base: None,
            validate: 0,
            compare_one_speed: false,
            pareto: None,
            metrics: None,
            metrics_prom: None,
            trace_chrome: None,
            trace_jsonl: None,
            fault_plan: rexec_harness::FaultPlan::default(),
            verbose: false,
            help: false,
        }
    }
}

/// Argument-parsing failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// An option that requires a value was given none.
    MissingValue(String),
    /// A value could not be parsed as the expected type.
    BadValue {
        /// Offending option.
        option: String,
        /// Provided text.
        value: String,
    },
    /// Unrecognized option.
    UnknownOption(String),
    /// A value parsed but fails domain validation (NaN, negative rate,
    /// zero speed, …). The reason says what the option requires.
    InvalidValue {
        /// Offending option.
        option: String,
        /// Provided text.
        value: String,
        /// What the option requires.
        reason: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingValue(o) => write!(f, "option {o} requires a value"),
            ParseError::BadValue { option, value } => {
                write!(f, "cannot parse value `{value}` for option {option}")
            }
            ParseError::UnknownOption(o) => write!(f, "unknown option {o}"),
            ParseError::InvalidValue {
                option,
                value,
                reason,
            } => {
                write!(f, "invalid value `{value}` for option {option}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
rexec-plan — energy-optimal two-speed checkpointing plans

USAGE:
  rexec-plan [--platform NAME] [--processor NAME] [custom params] [options]

PUBLISHED CONFIGURATIONS:
  --platform   hera | atlas | coastal | coastal-ssd   (alias: --config)
  --processor  xscale | crusoe

CUSTOM PARAMETERS (override the named configuration, or stand alone):
  --lambda L        silent-error rate (1/s)
  --checkpoint C    checkpoint time (s)        --verification V  at full speed (s)
  --recovery R      recovery time (s, default C)
  --kappa K         dynamic power K*sigma^3 (mW)
  --pidle P         static power (mW)          --pio P           I/O power (mW)
  --speeds a,b,c    normalized DVFS speeds

OPTIONS:
  --rho RHO         performance bound (default 3)
  --wbase W         total application work: print the application plan
  --validate N      cross-check the plan with N Monte Carlo trials
  --one-speed       also print the one-speed baseline and the saving
  --pareto N        print the time/energy Pareto frontier (N sweep points)

SCENARIOS:
  --law NAME          error law: exponential | weibull | lognormal
                      (non-exponential laws are simulation-only; the
                      analytic planner rejects them with a typed error)
  --shape X           law shape (weibull k / lognormal log-scale s);
                      required by and only valid with a non-exponential law
  --schedule-depth K  also search re-execution speed *schedules* of K
                      speeds (sigma2..sigma_{K+1}, settling on the last)
  --quantile Q        also solve the deadline-constrained variant: bound
                      the Q-quantile of T/W by rho instead of the mean

OBSERVABILITY:
  --metrics PATH      write a JSON metrics snapshot (counters, histograms,
                      span timings) after the run
  --metrics-prom PATH write the metrics snapshot in Prometheus text
                      exposition format after the run
  --trace-chrome PATH record a span timeline and write it as Chrome
                      trace-event JSON (open in Perfetto)
  --trace-jsonl PATH  simulate the plan's pattern and write its event trace
                      as JSON Lines (one event per line)
  --verbose           progress lines on stderr (solver stats, Monte Carlo)
  --fault-plan SPEC   deterministic fault injection for artifact writes
                      (fail-write=N, corrupt-artifact=N, seed=S)
  --help              this text
";

fn take_value(args: &mut std::vec::IntoIter<String>, opt: &str) -> Result<String, ParseError> {
    args.next()
        .ok_or_else(|| ParseError::MissingValue(opt.to_string()))
}

fn parse_f64(opt: &str, text: &str) -> Result<f64, ParseError> {
    text.parse().map_err(|_| ParseError::BadValue {
        option: opt.to_string(),
        value: text.to_string(),
    })
}

/// The CLI spelling of a wire-level field name (`schedule_depth`
/// crosses the wire with an underscore but is typed with a dash).
fn option_name(field: &str) -> String {
    format!("--{}", field.replace('_', "-"))
}

/// Maps a shared-spec failure onto the CLI error surface: the wire
/// field name becomes the `--option` that was blamed.
fn spec_error(e: crate::spec::SpecError) -> ParseError {
    use crate::spec::SpecError;
    match e {
        SpecError::Invalid {
            field,
            value,
            reason,
        } => ParseError::InvalidValue {
            option: option_name(field),
            value: format!("{value}"),
            reason: reason.to_string(),
        },
        SpecError::EmptySpeeds => ParseError::InvalidValue {
            option: "--speeds".into(),
            value: String::new(),
            reason: "needs at least one speed".into(),
        },
        // An unknown law name (`--law pareto`) or a shape-requiring law
        // without its `--shape`.
        SpecError::UnknownName(name) => ParseError::InvalidValue {
            option: "--law".into(),
            value: name,
            reason: "must be exponential, weibull or lognormal".into(),
        },
        SpecError::Underspecified(field) => ParseError::MissingValue(option_name(field)),
        SpecError::Unsupported { field, reason } => ParseError::InvalidValue {
            option: option_name(field),
            value: String::new(),
            reason: reason.to_string(),
        },
        // Model construction happens at resolve time, after parsing.
        SpecError::Model(e) => unreachable!("domain validation produced {e:?}"),
    }
}

impl Args {
    /// Parses a raw argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ParseError> {
        let mut out = Args::default();
        let mut it = raw.into_iter().collect::<Vec<_>>().into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--help" | "-h" => out.help = true,
                "--one-speed" => out.compare_one_speed = true,
                "--verbose" => out.verbose = true,
                "--platform" | "--config" => out.platform = Some(take_value(&mut it, &a)?),
                "--metrics" => out.metrics = Some(take_value(&mut it, &a)?),
                "--metrics-prom" => out.metrics_prom = Some(take_value(&mut it, &a)?),
                "--trace-chrome" => out.trace_chrome = Some(take_value(&mut it, &a)?),
                "--trace-jsonl" => out.trace_jsonl = Some(take_value(&mut it, &a)?),
                "--fault-plan" => {
                    let v = take_value(&mut it, &a)?;
                    out.fault_plan = rexec_harness::FaultPlan::parse(&v).map_err(|e| {
                        ParseError::InvalidValue {
                            option: a.clone(),
                            value: v,
                            reason: e.to_string(),
                        }
                    })?;
                }
                "--processor" => out.processor = Some(take_value(&mut it, &a)?),
                "--lambda" => out.lambda = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--checkpoint" => out.checkpoint = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--verification" => {
                    out.verification = Some(parse_f64(&a, &take_value(&mut it, &a)?)?)
                }
                "--recovery" => out.recovery = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--kappa" => out.kappa = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--pidle" => out.p_idle = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--pio" => out.p_io = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--rho" => out.rho = parse_f64(&a, &take_value(&mut it, &a)?)?,
                "--law" => out.law = Some(take_value(&mut it, &a)?),
                "--shape" => out.shape = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--quantile" => out.quantile = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--schedule-depth" => {
                    let v = take_value(&mut it, &a)?;
                    out.schedule_depth = Some(v.parse().map_err(|_| ParseError::BadValue {
                        option: a.clone(),
                        value: v,
                    })?);
                }
                "--wbase" => out.w_base = Some(parse_f64(&a, &take_value(&mut it, &a)?)?),
                "--validate" => {
                    let v = take_value(&mut it, &a)?;
                    out.validate = v.parse().map_err(|_| ParseError::BadValue {
                        option: a.clone(),
                        value: v,
                    })?;
                }
                "--pareto" => {
                    let v = take_value(&mut it, &a)?;
                    out.pareto = Some(v.parse().map_err(|_| ParseError::BadValue {
                        option: a.clone(),
                        value: v,
                    })?);
                }
                "--speeds" => {
                    let v = take_value(&mut it, &a)?;
                    let speeds: Result<Vec<f64>, _> =
                        v.split(',').map(|s| parse_f64(&a, s.trim())).collect();
                    out.speeds = Some(speeds?);
                }
                other => return Err(ParseError::UnknownOption(other.to_string())),
            }
        }
        out.validate_domains()?;
        Ok(out)
    }

    /// The model parameters as the shared [`PlanSpec`](crate::spec::PlanSpec)
    /// that both the CLI and the serve wire protocol validate and resolve
    /// through — one rule table, two surfaces.
    pub fn to_spec(&self) -> crate::spec::PlanSpec {
        crate::spec::PlanSpec {
            platform: self.platform.clone(),
            processor: self.processor.clone(),
            lambda: self.lambda,
            checkpoint: self.checkpoint,
            verification: self.verification,
            recovery: self.recovery,
            kappa: self.kappa,
            pidle: self.p_idle,
            pio: self.p_io,
            speeds: self.speeds.clone(),
            rho: Some(self.rho),
            law: self.law.clone(),
            shape: self.shape,
            schedule_depth: self.schedule_depth,
            quantile: self.quantile,
        }
    }

    /// Domain validation, run up front so a NaN or negative rate fails
    /// with a precise message instead of surfacing as solver misbehavior
    /// deep in a run. The model parameters go through the shared spec
    /// rule table; `--wbase` is CLI-only and checked here.
    fn validate_domains(&self) -> Result<(), ParseError> {
        self.to_spec().validate_domains().map_err(spec_error)?;
        crate::spec::check_positive("wbase", self.w_base).map_err(spec_error)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, ParseError> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.rho, 3.0);
        assert_eq!(a.validate, 0);
        assert!(!a.help && !a.compare_one_speed);
        assert!(a.platform.is_none() && a.speeds.is_none());
    }

    #[test]
    fn named_configuration() {
        let a = parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--rho",
            "1.775",
        ])
        .unwrap();
        assert_eq!(a.platform.as_deref(), Some("hera"));
        assert_eq!(a.processor.as_deref(), Some("xscale"));
        assert_eq!(a.rho, 1.775);
    }

    #[test]
    fn custom_parameters_and_speeds() {
        let a = parse(&[
            "--lambda",
            "1e-5",
            "--checkpoint",
            "600",
            "--verification",
            "30",
            "--kappa",
            "2000",
            "--pidle",
            "50",
            "--speeds",
            "0.25, 0.5,0.75,1.0",
            "--wbase",
            "1e8",
            "--validate",
            "5000",
            "--one-speed",
        ])
        .unwrap();
        assert_eq!(a.lambda, Some(1e-5));
        assert_eq!(a.checkpoint, Some(600.0));
        assert_eq!(a.speeds, Some(vec![0.25, 0.5, 0.75, 1.0]));
        assert_eq!(a.w_base, Some(1e8));
        assert_eq!(a.validate, 5000);
        assert!(a.compare_one_speed);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(
            parse(&["--rho"]),
            Err(ParseError::MissingValue("--rho".into()))
        );
        assert_eq!(
            parse(&["--rho", "abc"]),
            Err(ParseError::BadValue {
                option: "--rho".into(),
                value: "abc".into()
            })
        );
        assert_eq!(
            parse(&["--frobnicate"]),
            Err(ParseError::UnknownOption("--frobnicate".into()))
        );
        assert_eq!(
            parse(&["--speeds", "0.5,x"]),
            Err(ParseError::BadValue {
                option: "--speeds".into(),
                value: "x".into()
            })
        );
    }

    fn assert_invalid(args: &[&str], expect_option: &str) {
        match parse(args) {
            Err(ParseError::InvalidValue { option, .. }) => {
                assert_eq!(option, expect_option, "wrong option blamed for {args:?}")
            }
            other => panic!("expected InvalidValue for {args:?}, got {other:?}"),
        }
    }

    #[test]
    fn nan_and_infinite_inputs_are_rejected_up_front() {
        assert_invalid(&["--lambda", "NaN"], "--lambda");
        assert_invalid(&["--rho", "inf"], "--rho");
        assert_invalid(&["--checkpoint", "-inf"], "--checkpoint");
        assert_invalid(&["--speeds", "0.5,NaN"], "--speeds");
    }

    #[test]
    fn negative_rates_and_costs_are_rejected_up_front() {
        assert_invalid(&["--lambda", "-1e-5"], "--lambda");
        assert_invalid(&["--checkpoint", "-600"], "--checkpoint");
        assert_invalid(&["--verification", "-30"], "--verification");
        assert_invalid(&["--recovery", "-1"], "--recovery");
        assert_invalid(&["--kappa", "-2000"], "--kappa");
        assert_invalid(&["--pidle", "-50"], "--pidle");
        assert_invalid(&["--pio", "-1"], "--pio");
        assert_invalid(&["--rho", "-3"], "--rho");
        assert_invalid(&["--wbase", "-1e8"], "--wbase");
    }

    #[test]
    fn zero_is_rejected_where_the_model_needs_strict_positivity() {
        assert_invalid(&["--lambda", "0"], "--lambda");
        assert_invalid(&["--rho", "0"], "--rho");
        assert_invalid(&["--speeds", "0.5,0"], "--speeds");
        // ... but is a valid recovery cost and idle/IO power.
        assert!(parse(&["--recovery", "0", "--pidle", "0", "--pio", "0"]).is_ok());
    }

    #[test]
    fn invalid_value_messages_name_option_value_and_reason() {
        let msg = parse(&["--lambda", "-2"]).unwrap_err().to_string();
        assert!(msg.contains("--lambda") && msg.contains("-2") && msg.contains("positive"));
    }

    #[test]
    fn fault_plan_parses_and_rejects_bad_specs() {
        let a = parse(&["--fault-plan", "fail-write=2,seed=9"]).unwrap();
        assert_eq!(a.fault_plan.fail_write, Some(2));
        assert_eq!(a.fault_plan.seed, 9);
        assert_invalid(&["--fault-plan", "explode=1"], "--fault-plan");
        assert_invalid(&["--fault-plan", "fail-write=0"], "--fault-plan");
        assert!(USAGE.contains("--fault-plan"));
    }

    #[test]
    fn scenario_flags_parse_and_validate() {
        let a = parse(&[
            "--law",
            "weibull",
            "--shape",
            "0.7",
            "--schedule-depth",
            "3",
            "--quantile",
            "0.99",
        ])
        .unwrap();
        assert_eq!(a.law.as_deref(), Some("weibull"));
        assert_eq!(a.shape, Some(0.7));
        assert_eq!(a.schedule_depth, Some(3));
        assert_eq!(a.quantile, Some(0.99));
        // The rule table runs at parse time, with CLI option names.
        assert_invalid(&["--law", "pareto"], "--law");
        assert_invalid(&["--shape", "0.7"], "--shape");
        assert_invalid(&["--law", "weibull", "--shape", "0"], "--shape");
        assert_invalid(&["--law", "weibull", "--shape", "NaN"], "--shape");
        assert_invalid(&["--quantile", "1"], "--quantile");
        assert_invalid(&["--quantile", "0"], "--quantile");
        assert_invalid(&["--schedule-depth", "0"], "--schedule-depth");
        assert_invalid(&["--schedule-depth", "9"], "--schedule-depth");
        assert_eq!(
            parse(&["--schedule-depth", "two"]),
            Err(ParseError::BadValue {
                option: "--schedule-depth".into(),
                value: "two".into()
            })
        );
        // A shape-requiring law without --shape blames the missing option.
        assert_eq!(
            parse(&["--law", "lognormal"]),
            Err(ParseError::MissingValue("--shape".into()))
        );
        for flag in ["--law", "--shape", "--schedule-depth", "--quantile"] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn config_is_an_alias_for_platform() {
        let a = parse(&["--config", "hera", "--processor", "xscale"]).unwrap();
        assert_eq!(a.platform.as_deref(), Some("hera"));
    }

    #[test]
    fn observability_flags() {
        let a = parse(&[
            "--config",
            "hera",
            "--metrics",
            "/tmp/m.json",
            "--trace-jsonl",
            "/tmp/t.jsonl",
            "--verbose",
        ])
        .unwrap();
        assert_eq!(a.metrics.as_deref(), Some("/tmp/m.json"));
        assert_eq!(a.trace_jsonl.as_deref(), Some("/tmp/t.jsonl"));
        assert!(a.verbose);
        assert_eq!(
            parse(&["--metrics"]),
            Err(ParseError::MissingValue("--metrics".into()))
        );
        assert!(USAGE.contains("--metrics") && USAGE.contains("--trace-jsonl"));
    }

    #[test]
    fn exporter_flags() {
        let a = parse(&[
            "--config",
            "hera",
            "--metrics-prom",
            "/tmp/m.prom",
            "--trace-chrome",
            "/tmp/t.trace.json",
        ])
        .unwrap();
        assert_eq!(a.metrics_prom.as_deref(), Some("/tmp/m.prom"));
        assert_eq!(a.trace_chrome.as_deref(), Some("/tmp/t.trace.json"));
        assert_eq!(
            parse(&["--trace-chrome"]),
            Err(ParseError::MissingValue("--trace-chrome".into()))
        );
        assert!(USAGE.contains("--metrics-prom") && USAGE.contains("--trace-chrome"));
    }

    #[test]
    fn help_flag() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
        assert!(USAGE.contains("--pareto"));
    }

    #[test]
    fn error_display() {
        assert!(ParseError::MissingValue("--x".into())
            .to_string()
            .contains("--x"));
        assert!(ParseError::UnknownOption("--y".into())
            .to_string()
            .contains("unknown"));
    }
}
