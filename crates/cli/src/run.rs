//! Builds the model from parsed arguments and renders the plan.

use crate::args::Args;
use crate::spec::SpecError;
use rexec_core::{
    solve_quantile, solve_schedule, BiCritSolver, ExecutionPlan, ModelError, ParetoFrontier,
    ScheduleModel,
};
use rexec_sim::{render_timeline, MonteCarlo, SimConfig, ValidationReport};
use std::fmt::Write as _;

/// Everything `rexec-plan` computed, ready to print.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The rendered report.
    pub report: String,
    /// Whether a feasible plan was found.
    pub feasible: bool,
    /// JSON metrics snapshot (present when `--metrics` was given).
    pub metrics_json: Option<String>,
    /// Prometheus text exposition of the metrics snapshot (present when
    /// `--metrics-prom` was given).
    pub metrics_prom: Option<String>,
    /// Chrome trace-event JSON of the run's span timeline (present when
    /// `--trace-chrome` was given).
    pub trace_chrome: Option<String>,
    /// JSON Lines event trace (present when `--trace-jsonl` was given
    /// and a feasible plan could be simulated).
    pub trace_jsonl: Option<String>,
}

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum RunError {
    /// Bad platform/processor name.
    UnknownName(String),
    /// Parameters do not form a valid model.
    Model(ModelError),
    /// Neither a named configuration nor enough custom parameters.
    Underspecified(&'static str),
    /// A valid parameter names a capability the analytic planner does
    /// not provide (e.g. a non-memoryless error law).
    Unsupported {
        /// The CLI option that was given (`--law`, …).
        option: &'static str,
        /// Why, and what to use instead.
        reason: &'static str,
    },
    /// The simulation engine refused the config (degenerate pattern).
    Engine(rexec_sim::EngineError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownName(n) => write!(f, "unknown name: {n}"),
            RunError::Model(e) => write!(f, "invalid parameters: {e}"),
            RunError::Underspecified(what) => {
                write!(
                    f,
                    "missing parameter: {what} (give --platform/--processor or custom values)"
                )
            }
            RunError::Unsupported { option, reason } => {
                write!(f, "unsupported {option}: {reason}")
            }
            RunError::Engine(e) => write!(f, "simulation refused: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ModelError> for RunError {
    fn from(e: ModelError) -> Self {
        RunError::Model(e)
    }
}

impl From<rexec_sim::EngineError> for RunError {
    fn from(e: rexec_sim::EngineError) -> Self {
        RunError::Engine(e)
    }
}

/// The CLI option that owns a wire-level spec field, for error messages
/// that blame `--checkpoint` rather than `checkpoint`.
fn option_for(field: &'static str) -> &'static str {
    match field {
        "lambda" => "--lambda",
        "checkpoint" => "--checkpoint",
        "verification" => "--verification",
        "recovery" => "--recovery",
        "kappa" => "--kappa",
        "pidle" => "--pidle",
        "pio" => "--pio",
        "speeds" => "--speeds",
        "rho" => "--rho",
        "law" => "--law",
        "shape" => "--shape",
        "schedule_depth" => "--schedule-depth",
        "quantile" => "--quantile",
        other => other,
    }
}

impl From<SpecError> for RunError {
    fn from(e: SpecError) -> Self {
        match e {
            SpecError::UnknownName(n) => RunError::UnknownName(n),
            SpecError::Underspecified(field) => RunError::Underspecified(option_for(field)),
            SpecError::Unsupported { field, reason } => RunError::Unsupported {
                option: option_for(field),
                reason,
            },
            SpecError::Model(m) => RunError::Model(m),
            // Args::parse already ran the domain rules; a programmatic
            // Args that skipped them still gets a precise message.
            SpecError::Invalid {
                field,
                value,
                reason,
            } => RunError::Model(if reason.contains("not be negative") {
                ModelError::NonNegative { name: field, value }
            } else {
                ModelError::Positive { name: field, value }
            }),
            SpecError::EmptySpeeds => RunError::Model(ModelError::EmptySpeedSet),
        }
    }
}

/// Resolves arguments into a solver (named configuration + overrides)
/// through the shared [`PlanSpec`](crate::spec::PlanSpec) path — the
/// same resolution the serve wire protocol uses.
pub fn build_solver(args: &Args) -> Result<BiCritSolver, RunError> {
    let resolved = args.to_spec().resolve()?;
    Ok(BiCritSolver::new(resolved.model, resolved.speeds))
}

/// How many patterns `--trace-jsonl` simulates into one bounded trace.
const TRACE_TRIALS: u64 = 4;
/// Event capacity of the `--trace-jsonl` recorder; overflow is counted
/// as dropped and reported instead of silently discarded.
const TRACE_CAPACITY: usize = 4096;

/// Runs the planner and renders the report.
pub fn execute(args: &Args) -> Result<Outcome, RunError> {
    if args.metrics.is_some() || args.metrics_prom.is_some() {
        // Span timing is off by default (it reads the clock); a metrics
        // snapshot is the explicit request for it.
        rexec_obs::set_spans_enabled(true);
    }
    if args.trace_chrome.is_some() {
        rexec_obs::set_timeline_enabled(true);
    }
    let solver = build_solver(args)?;
    let m = *solver.model();
    let mut report = String::new();
    let _ = writeln!(
        report,
        "model: lambda = {:.3e}/s, C = {} s, V = {} s, R = {} s",
        m.lambda, m.costs.checkpoint, m.costs.verification, m.costs.recovery
    );
    let _ = writeln!(
        report,
        "power: {} sigma^3 + {} mW, Pio = {:.2} mW; speeds {:?}; rho = {}",
        m.power.kappa,
        m.power.p_idle,
        m.power.p_io,
        solver.speeds().values(),
        args.rho
    );

    if args.verbose {
        eprintln!(
            "[rexec-plan] model ready; solving over {} speed pairs (rho = {})",
            solver.speeds().values().len().pow(2),
            args.rho
        );
    }

    let solution = solver.solve(args.rho);
    if args.verbose {
        let g = rexec_obs::global();
        eprintln!(
            "[rexec-plan] solver: {} pairs evaluated, {} infeasible, {} unbounded",
            g.counter("bicrit.pairs_evaluated").get(),
            g.counter("bicrit.pairs_infeasible").get(),
            g.counter("bicrit.pairs_unbounded").get(),
        );
        eprintln!(
            "[rexec-plan] candidate table: {} pairs built in {:.3} ms ({} builds), {} cache hits",
            g.counter("bicrit.table_pairs").get(),
            g.gauge("bicrit.table_build_secs").get() * 1e3,
            g.counter("bicrit.table_builds").get(),
            g.counter("bicrit.table_hits").get(),
        );
    }
    let Some(best) = solution else {
        let _ = writeln!(
            report,
            "\nINFEASIBLE: no speed pair meets rho = {}; smallest feasible rho is {:.4}",
            args.rho,
            solver.min_feasible_rho()
        );
        return Ok(Outcome {
            report,
            feasible: false,
            metrics_json: args.metrics.is_some().then(rexec_obs::snapshot_json),
            metrics_prom: args
                .metrics_prom
                .is_some()
                .then(|| rexec_obs::prometheus_text(rexec_obs::global())),
            trace_chrome: args
                .trace_chrome
                .is_some()
                .then(rexec_obs::chrome_trace_json),
            trace_jsonl: None,
        });
    };

    let _ = writeln!(report, "\n=== optimal two-speed plan ===");
    let _ = writeln!(
        report,
        "sigma1 = {}, sigma2 = {}, Wopt = {:.0} work units",
        best.sigma1, best.sigma2, best.w_opt
    );
    let _ = writeln!(
        report,
        "energy overhead E/W = {:.2} mJ/unit, time overhead T/W = {:.4} s/unit",
        best.energy_overhead, best.time_overhead
    );

    if args.compare_one_speed {
        if let Some(one) = solver.solve_one_speed(args.rho) {
            let saving = 100.0 * (1.0 - best.energy_overhead / one.energy_overhead);
            let _ = writeln!(
                report,
                "one-speed baseline: sigma = {}, Wopt = {:.0}, E/W = {:.2}  (two-speed saves {:.1}%)",
                one.sigma1, one.w_opt, one.energy_overhead, saving
            );
        }
    }

    if let Some(w_base) = args.w_base {
        let plan = ExecutionPlan::from_solution(&m, best, w_base);
        let _ = writeln!(report, "\n{plan}");
    }

    if args.validate > 0 {
        let cfg = SimConfig::from_silent_model(&m, best.w_opt, best.sigma1, best.sigma2);
        let mc = MonteCarlo::new(cfg, args.validate, 0xC0FFEE);
        let summary = if args.verbose {
            eprintln!("[rexec-plan] Monte Carlo: {} trials", args.validate);
            mc.run_with_progress(&mut |done, total| {
                eprintln!("[rexec-plan]   {done}/{total} trials");
            })?
        } else {
            mc.run()?
        };
        let rep = ValidationReport {
            summary,
            expected_time: m.expected_time(best.w_opt, best.sigma1, best.sigma2),
            expected_energy: m.expected_energy(best.w_opt, best.sigma1, best.sigma2),
            z: 3.29,
        };
        let _ = writeln!(
            report,
            "\nMonte Carlo ({} trials): time rel err {:.4}% [{}], energy rel err {:.4}% [{}]",
            args.validate,
            100.0 * rep.time_rel_error(),
            if rep.time_ok() { "OK" } else { "MISS" },
            100.0 * rep.energy_rel_error(),
            if rep.energy_ok() { "OK" } else { "MISS" },
        );
    }

    if let Some(n) = args.pareto {
        let frontier = ParetoFrontier::compute(&solver, (args.rho * 3.0).max(10.0), n.max(2));
        let _ = writeln!(
            report,
            "\ntime/energy Pareto frontier ({} non-dominated points):",
            frontier.len()
        );
        let _ = writeln!(
            report,
            "{:>9} {:>12} {:>7} {:>7} {:>10}",
            "T/W", "E/W", "s1", "s2", "Wopt"
        );
        for p in &frontier.points {
            let _ = writeln!(
                report,
                "{:>9.4} {:>12.2} {:>7} {:>7} {:>10.0}",
                p.time_overhead, p.energy_overhead, p.sigma1, p.sigma2, p.w_opt
            );
        }
    }

    if let Some(depth) = args.schedule_depth {
        let _ = writeln!(
            report,
            "\n=== re-execution schedule search (depth {depth}) ==="
        );
        match solve_schedule(&m, solver.speeds(), args.rho, depth as usize) {
            Some(sol) => {
                let saving = 100.0 * (1.0 - sol.energy_overhead / best.energy_overhead);
                let _ = writeln!(
                    report,
                    "schedule {} (settles on {}), Wopt = {:.0}",
                    sol.schedule,
                    sol.schedule.settled(),
                    sol.w_opt
                );
                let _ = writeln!(
                    report,
                    "energy overhead E/W = {:.2} mJ/unit, time overhead T/W = {:.4} s/unit  (vs two-speed: {saving:+.2}%)",
                    sol.energy_overhead, sol.time_overhead
                );
            }
            None => {
                let _ = writeln!(
                    report,
                    "INFEASIBLE: no depth-{depth} schedule meets rho = {}",
                    args.rho
                );
            }
        }
    }

    if let Some(q) = args.quantile {
        let depth = args.schedule_depth.unwrap_or(1);
        let _ = writeln!(
            report,
            "\n=== deadline plan (P[T/W <= rho] >= {q}, depth {depth}) ==="
        );
        match solve_quantile(&m, solver.speeds(), args.rho, q, depth as usize) {
            Some(sol) => {
                let sm = ScheduleModel::new(m, sol.schedule.clone());
                let _ = writeln!(report, "schedule {}, Wopt = {:.0}", sol.schedule, sol.w_opt);
                let _ = writeln!(
                    report,
                    "energy overhead E/W = {:.2} mJ/unit, p{:.0} time overhead T/W = {:.4} s/unit (mean {:.4})",
                    sol.energy_overhead,
                    q * 100.0,
                    sol.time_overhead,
                    sm.time_overhead(sol.w_opt)
                );
            }
            None => {
                let _ = writeln!(
                    report,
                    "INFEASIBLE: no schedule keeps the p{:.0} of T/W within rho = {}",
                    q * 100.0,
                    args.rho
                );
            }
        }
    }

    let mut trace_jsonl = None;
    if args.trace_jsonl.is_some() {
        let cfg = SimConfig::from_silent_model(&m, best.w_opt, best.sigma1, best.sigma2);
        let (ts, recorder) =
            MonteCarlo::new(cfg, TRACE_TRIALS, 0xC0FFEE).run_with_trace(TRACE_CAPACITY)?;
        let _ = writeln!(
            report,
            "\n=== simulated pattern trace ({TRACE_TRIALS} patterns) ===",
        );
        let _ = writeln!(report, "{}", render_timeline(recorder.events()));
        let _ = writeln!(
            report,
            "trace: {} events recorded, {} dropped (capacity {TRACE_CAPACITY})",
            recorder.events().len(),
            ts.dropped_events,
        );
        trace_jsonl = Some(recorder.to_jsonl());
    }

    Ok(Outcome {
        report,
        feasible: true,
        metrics_json: args.metrics.is_some().then(rexec_obs::snapshot_json),
        metrics_prom: args
            .metrics_prom
            .is_some()
            .then(|| rexec_obs::prometheus_text(rexec_obs::global())),
        trace_chrome: args
            .trace_chrome
            .is_some()
            .then(rexec_obs::chrome_trace_json),
        trace_jsonl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn named_configuration_reproduces_paper_plan() {
        let out = execute(&parse(&["--platform", "hera", "--processor", "xscale"])).unwrap();
        assert!(out.feasible);
        assert!(out.report.contains("sigma1 = 0.4, sigma2 = 0.4"));
        assert!(out.report.contains("Wopt = 2764"));
    }

    #[test]
    fn custom_parameters_stand_alone() {
        let out = execute(&parse(&[
            "--lambda",
            "1e-5",
            "--checkpoint",
            "600",
            "--verification",
            "30",
            "--kappa",
            "2000",
            "--pidle",
            "50",
            "--speeds",
            "0.25,0.5,0.75,1.0",
        ]))
        .unwrap();
        assert!(out.feasible);
        assert!(out.report.contains("optimal two-speed plan"));
    }

    #[test]
    fn overrides_apply_on_top_of_named_configuration() {
        // Hera with a 10x error rate: pattern must shrink vs 2764.
        let out = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--lambda",
            "3.38e-5",
        ]))
        .unwrap();
        assert!(out.feasible);
        assert!(!out.report.contains("Wopt = 2764"));
    }

    #[test]
    fn infeasible_reports_min_rho() {
        let out = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--rho",
            "1.0",
        ]))
        .unwrap();
        assert!(!out.feasible);
        assert!(out.report.contains("INFEASIBLE"));
        assert!(out.report.contains("smallest feasible rho"));
    }

    #[test]
    fn one_speed_comparison_and_wbase_plan() {
        let out = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--rho",
            "1.775",
            "--one-speed",
            "--wbase",
            "1e7",
        ]))
        .unwrap();
        assert!(out.report.contains("one-speed baseline"));
        assert!(out.report.contains("two-speed saves"));
        assert!(out.report.contains("execution plan for Wbase"));
    }

    #[test]
    fn monte_carlo_validation_runs() {
        let out = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--validate",
            "2000",
        ]))
        .unwrap();
        assert!(out.report.contains("Monte Carlo (2000 trials)"));
        assert!(out.report.contains("[OK]"));
    }

    #[test]
    fn pareto_frontier_prints() {
        let out = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--pareto",
            "50",
        ]))
        .unwrap();
        assert!(out.report.contains("Pareto frontier"));
    }

    #[test]
    fn schedule_search_section_prints_and_never_loses_to_two_speed() {
        let out = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--schedule-depth",
            "2",
        ]))
        .unwrap();
        assert!(out.feasible);
        assert!(out
            .report
            .contains("re-execution schedule search (depth 2)"));
        assert!(out.report.contains("settles on"));
        assert!(out.report.contains("vs two-speed:"));
        // Depth-2 schedules include every constant (two-speed) schedule;
        // the search and the BiCrit solver use different W optimizers, so
        // allow sub-percent numeric slack but no real loss.
        let d2 = rexec_core::solve_schedule(
            build_solver(&parse(&["--platform", "hera", "--processor", "xscale"]))
                .unwrap()
                .model(),
            &rexec_core::SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap(),
            3.0,
            2,
        )
        .expect("feasible");
        let d1 = rexec_core::solve_schedule(
            build_solver(&parse(&["--platform", "hera", "--processor", "xscale"]))
                .unwrap()
                .model(),
            &rexec_core::SpeedSet::new(vec![0.15, 0.4, 0.6, 0.8, 1.0]).unwrap(),
            3.0,
            1,
        )
        .expect("feasible");
        assert!(d2.energy_overhead <= d1.energy_overhead * (1.0 + 1e-9));
    }

    #[test]
    fn quantile_section_prints_the_deadline_plan() {
        let out = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--quantile",
            "0.99",
        ]))
        .unwrap();
        assert!(out.report.contains("deadline plan (P[T/W <= rho] >= 0.99"));
        assert!(out.report.contains("p99 time overhead"));
    }

    #[test]
    fn non_exponential_laws_get_a_typed_unsupported_error() {
        let err = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--law",
            "weibull",
            "--shape",
            "0.7",
        ]));
        match err {
            Err(RunError::Unsupported { option, reason }) => {
                assert_eq!(option, "--law");
                assert!(reason.contains("memoryless"));
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // The exponential law is the planner's native model.
        let ok = execute(&parse(&[
            "--platform",
            "hera",
            "--processor",
            "xscale",
            "--law",
            "exponential",
        ]))
        .unwrap();
        assert!(ok.feasible);
    }

    #[test]
    fn unknown_names_error() {
        let err = execute(&parse(&["--platform", "jupiter", "--processor", "xscale"]));
        assert!(matches!(err, Err(RunError::UnknownName(_))));
        let err2 = execute(&parse(&["--platform", "hera", "--processor", "epyc"]));
        assert!(matches!(err2, Err(RunError::UnknownName(_))));
    }

    #[test]
    fn underspecified_custom_setup_errors() {
        let err = execute(&parse(&["--lambda", "1e-5"]));
        assert!(matches!(err, Err(RunError::Underspecified(_))));
        let msg = format!("{}", err.unwrap_err());
        assert!(msg.contains("--checkpoint"));
    }

    #[test]
    fn metrics_snapshot_has_solver_counters_and_span_sections() {
        let out = execute(&parse(&[
            "--config",
            "hera",
            "--processor",
            "xscale",
            "--metrics",
            "ignored.json",
        ]))
        .unwrap();
        let json = out.metrics_json.expect("--metrics fills metrics_json");
        let v: serde::Value = serde_json::from_str(&json).expect("snapshot is valid JSON");
        assert!(matches!(v, serde::Value::Object(_)));
        for key in ["counters", "histograms", "gauges", "spans"] {
            assert!(json.contains(key), "missing section {key}");
        }
        assert!(json.contains("bicrit.pairs_evaluated"));
        // The solver precomputed its candidate table at construction...
        assert!(json.contains("bicrit.table_builds"));
        assert!(json.contains("bicrit.table_hits"));
        // ...and spans were enabled by --metrics, so the solve span ran.
        assert!(json.contains("bicrit.solve"));
    }

    #[test]
    fn trace_jsonl_round_trips_and_surfaces_drop_counts() {
        let out = execute(&parse(&[
            "--config",
            "hera",
            "--processor",
            "xscale",
            "--trace-jsonl",
            "ignored.jsonl",
        ]))
        .unwrap();
        let jsonl = out.trace_jsonl.expect("--trace-jsonl fills trace_jsonl");
        let events = rexec_sim::events_from_jsonl(&jsonl).unwrap();
        assert!(!events.is_empty());
        assert_eq!(jsonl.lines().count(), events.len());
        assert!(out.report.contains("simulated pattern trace"));
        assert!(out.report.contains("events recorded"));
        assert!(out.report.contains("dropped"));
    }

    #[test]
    fn plain_runs_produce_no_observability_payloads() {
        let out = execute(&parse(&["--platform", "hera", "--processor", "xscale"])).unwrap();
        assert!(out.metrics_json.is_none());
        assert!(out.metrics_prom.is_none());
        assert!(out.trace_chrome.is_none());
        assert!(out.trace_jsonl.is_none());
    }

    #[test]
    fn prom_and_chrome_exports_are_well_formed() {
        let out = execute(&parse(&[
            "--config",
            "hera",
            "--processor",
            "xscale",
            "--validate",
            "2000",
            "--metrics-prom",
            "ignored.prom",
            "--trace-chrome",
            "ignored.trace.json",
        ]))
        .unwrap();
        let prom = out.metrics_prom.expect("--metrics-prom fills metrics_prom");
        rexec_obs::check_prometheus_text(&prom).expect("exposition passes the strict checker");
        assert!(prom.contains("rexec_bicrit_pairs_evaluated_total"));
        let trace = out.trace_chrome.expect("--trace-chrome fills trace_chrome");
        let n = rexec_obs::validate_chrome_trace(&trace).expect("trace-event JSON validates");
        assert!(n > 0, "the run recorded at least the solve span");
    }

    #[test]
    fn default_pio_is_dynamic_power_at_min_speed() {
        let solver = build_solver(&parse(&[
            "--lambda",
            "1e-5",
            "--checkpoint",
            "100",
            "--verification",
            "10",
            "--kappa",
            "1000",
            "--pidle",
            "10",
            "--speeds",
            "0.5,1.0",
        ]))
        .unwrap();
        assert!((solver.model().power.p_io - 1000.0 * 0.125).abs() < 1e-9);
    }
}
