//! # rexec-cli
//!
//! The `rexec-plan` command-line planner: describe a platform (either one
//! of the paper's published configurations or fully custom parameters),
//! and get the energy-optimal two-speed checkpointing plan — optionally
//! cross-validated by Monte Carlo simulation.
//!
//! ```text
//! rexec-plan --platform hera --processor xscale --rho 3
//! rexec-plan --lambda 1e-5 --checkpoint 600 --verification 30 \
//!            --kappa 2000 --pidle 50 --speeds 0.25,0.5,0.75,1.0 \
//!            --rho 2.5 --wbase 1e8 --validate 20000
//! ```

#![warn(missing_docs)]
pub mod args;
pub mod run;
pub mod spec;

pub use args::{Args, ParseError};
pub use run::{execute, Outcome};
pub use spec::{PlanSpec, ResolvedPlan, SpecError};
