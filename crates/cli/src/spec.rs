//! The shared plan specification: one place that owns the domain rules
//! (which parameter must be strictly positive, which may be zero) and
//! the named-configuration resolution, so the `rexec-plan` CLI and the
//! `rexec-serve` wire protocol validate and resolve queries through the
//! **same** code path and cannot drift.
//!
//! Field names here are the *wire* names (`lambda`, `pidle`, …); the
//! CLI maps them to `--lambda`, `--pidle`, … when reporting errors.

use rexec_core::{ModelError, PowerModel, ResilienceCosts, SilentModel, SpeedSet};
use rexec_platforms::{Platform, PlatformId, Processor, ProcessorId};
use std::fmt;

/// A plan query before resolution: every parameter optional, either
/// taken from a named configuration or given explicitly (explicit
/// values override the named configuration).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanSpec {
    /// Named platform (`hera`/`atlas`/`coastal`/`coastal-ssd`).
    pub platform: Option<String>,
    /// Named processor (`xscale`/`crusoe`).
    pub processor: Option<String>,
    /// Silent-error rate λ (1/s); strictly positive.
    pub lambda: Option<f64>,
    /// Checkpoint cost C (s); strictly positive.
    pub checkpoint: Option<f64>,
    /// Verification cost V at full speed (s); strictly positive.
    pub verification: Option<f64>,
    /// Recovery cost R (s); non-negative, defaults to C.
    pub recovery: Option<f64>,
    /// Cube-law coefficient κ (mW); strictly positive.
    pub kappa: Option<f64>,
    /// Static power Pidle (mW); non-negative.
    pub pidle: Option<f64>,
    /// I/O power Pio (mW); non-negative, defaults to κσ_min³.
    pub pio: Option<f64>,
    /// Normalized DVFS speeds; each strictly positive, non-empty.
    pub speeds: Option<Vec<f64>>,
    /// Performance bound ρ; strictly positive, defaults to 3.
    pub rho: Option<f64>,
}

/// What a [`PlanSpec`] resolves to: a validated model, the speed set,
/// and the (defaulted) performance bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPlan {
    /// The analytic model the solver runs on.
    pub model: SilentModel,
    /// The available DVFS speeds.
    pub speeds: SpeedSet,
    /// The performance bound ρ (default 3 when unspecified).
    pub rho: f64,
}

/// Default performance bound when a spec leaves `rho` unset.
pub const DEFAULT_RHO: f64 = 3.0;

/// Validation / resolution failures, shared by CLI and wire surfaces.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A numeric parameter fails its domain rule (NaN, ±inf, sign).
    Invalid {
        /// Wire-level field name (`lambda`, `pidle`, …).
        field: &'static str,
        /// Offending value.
        value: f64,
        /// What the field requires.
        reason: &'static str,
    },
    /// A speed list was given but empty.
    EmptySpeeds,
    /// Bad platform/processor name.
    UnknownName(String),
    /// Neither a named configuration nor enough custom parameters.
    Underspecified(&'static str),
    /// Parameters pass the field rules but do not form a valid model.
    Model(ModelError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Invalid {
                field,
                value,
                reason,
            } => write!(f, "invalid value `{value}` for `{field}`: {reason}"),
            SpecError::EmptySpeeds => write!(f, "`speeds` needs at least one speed"),
            SpecError::UnknownName(n) => write!(f, "unknown name: {n}"),
            SpecError::Underspecified(what) => write!(
                f,
                "missing parameter: {what} (give a platform/processor or custom values)"
            ),
            SpecError::Model(e) => write!(f, "invalid parameters: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e)
    }
}

/// Rejects NaN/±inf and non-positive values: rates, costs, speeds and
/// the bound must be strictly positive real numbers.
pub fn check_positive(field: &'static str, v: Option<f64>) -> Result<(), SpecError> {
    match v {
        Some(x) if !x.is_finite() => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must be a finite number",
        }),
        Some(x) if x <= 0.0 => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must be strictly positive",
        }),
        _ => Ok(()),
    }
}

/// Rejects NaN/±inf and negative values: powers and the recovery cost
/// may be zero but not negative.
pub fn check_non_negative(field: &'static str, v: Option<f64>) -> Result<(), SpecError> {
    match v {
        Some(x) if !x.is_finite() => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must be a finite number",
        }),
        Some(x) if x < 0.0 => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must not be negative",
        }),
        _ => Ok(()),
    }
}

/// Resolves a platform name (case-insensitive, paper Table 1).
pub fn platform_by_name(name: &str) -> Result<Platform, SpecError> {
    let id = match name.to_ascii_lowercase().as_str() {
        "hera" => PlatformId::Hera,
        "atlas" => PlatformId::Atlas,
        "coastal" => PlatformId::Coastal,
        "coastal-ssd" | "coastal_ssd" | "coastalssd" => PlatformId::CoastalSsd,
        _ => return Err(SpecError::UnknownName(name.to_string())),
    };
    Ok(Platform::get(id))
}

/// Resolves a processor name (case-insensitive, paper Table 2).
pub fn processor_by_name(name: &str) -> Result<Processor, SpecError> {
    let id = match name.to_ascii_lowercase().as_str() {
        "xscale" | "intel-xscale" => ProcessorId::IntelXScale,
        "crusoe" | "transmeta-crusoe" => ProcessorId::TransmetaCrusoe,
        _ => return Err(SpecError::UnknownName(name.to_string())),
    };
    Ok(Processor::get(id))
}

impl PlanSpec {
    /// The one rule table: every numeric field checked against its
    /// domain (NaN and ±inf always rejected; zero admitted only where
    /// the model tolerates it). Both the CLI's argument parser and the
    /// serve wire decoder call exactly this.
    pub fn validate_domains(&self) -> Result<(), SpecError> {
        check_positive("lambda", self.lambda)?;
        check_positive("checkpoint", self.checkpoint)?;
        check_positive("verification", self.verification)?;
        check_non_negative("recovery", self.recovery)?;
        check_positive("kappa", self.kappa)?;
        check_non_negative("pidle", self.pidle)?;
        check_non_negative("pio", self.pio)?;
        check_positive("rho", self.rho)?;
        if let Some(speeds) = &self.speeds {
            if speeds.is_empty() {
                return Err(SpecError::EmptySpeeds);
            }
            for &s in speeds {
                check_positive("speeds", Some(s))?;
            }
        }
        Ok(())
    }

    /// Validates the domains, resolves named configurations, applies
    /// explicit overrides and the documented defaults (`R = C`,
    /// `Pio = κσ_min³`, `ρ = 3`), and builds the model.
    pub fn resolve(&self) -> Result<ResolvedPlan, SpecError> {
        self.validate_domains()?;
        let platform = self.platform.as_deref().map(platform_by_name).transpose()?;
        let processor = self
            .processor
            .as_deref()
            .map(processor_by_name)
            .transpose()?;

        let lambda = self
            .lambda
            .or(platform.as_ref().map(|p| p.lambda))
            .ok_or(SpecError::Underspecified("lambda"))?;
        let checkpoint = self
            .checkpoint
            .or(platform.as_ref().map(|p| p.checkpoint))
            .ok_or(SpecError::Underspecified("checkpoint"))?;
        let verification = self
            .verification
            .or(platform.as_ref().map(|p| p.verification))
            .ok_or(SpecError::Underspecified("verification"))?;
        let recovery = self.recovery.unwrap_or(checkpoint);

        let speeds_vec = self
            .speeds
            .clone()
            .or(processor.as_ref().map(|p| p.speeds.clone()))
            .ok_or(SpecError::Underspecified("speeds"))?;
        let speeds = SpeedSet::new(speeds_vec)?;

        let kappa = self
            .kappa
            .or(processor.as_ref().map(|p| p.kappa))
            .ok_or(SpecError::Underspecified("kappa"))?;
        let p_idle = self
            .pidle
            .or(processor.as_ref().map(|p| p.p_idle))
            .ok_or(SpecError::Underspecified("pidle"))?;
        let p_io = self.pio.unwrap_or_else(|| kappa * speeds.min().powi(3));

        let model = SilentModel::new(
            lambda,
            ResilienceCosts::new(checkpoint, verification, recovery)?,
            PowerModel::new(kappa, p_idle, p_io)?,
        )?;
        Ok(ResolvedPlan {
            model,
            speeds,
            rho: self.rho.unwrap_or(DEFAULT_RHO),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(platform: &str, processor: &str) -> PlanSpec {
        PlanSpec {
            platform: Some(platform.into()),
            processor: Some(processor.into()),
            ..PlanSpec::default()
        }
    }

    #[test]
    fn named_configuration_resolves_with_defaults() {
        let r = named("hera", "xscale").resolve().unwrap();
        assert_eq!(r.model.lambda, 3.38e-6);
        assert_eq!(r.model.costs.checkpoint, 300.0);
        assert_eq!(r.model.costs.recovery, 300.0, "R defaults to C");
        assert_eq!(r.rho, DEFAULT_RHO);
        assert_eq!(r.speeds.len(), 5);
        // Pio defaults to the dynamic power at the slowest speed.
        assert!((r.model.power.p_io - 1550.0 * 0.15f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn overrides_apply_on_top_of_named_configuration() {
        let spec = PlanSpec {
            lambda: Some(1e-5),
            rho: Some(1.775),
            ..named("hera", "xscale")
        };
        let r = spec.resolve().unwrap();
        assert_eq!(r.model.lambda, 1e-5);
        assert_eq!(r.rho, 1.775);
    }

    #[test]
    fn underspecified_names_the_missing_field() {
        let spec = PlanSpec {
            lambda: Some(1e-5),
            ..PlanSpec::default()
        };
        assert_eq!(spec.resolve(), Err(SpecError::Underspecified("checkpoint")));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(
            named("jupiter", "xscale").resolve(),
            Err(SpecError::UnknownName(_))
        ));
        assert!(matches!(
            named("hera", "epyc").resolve(),
            Err(SpecError::UnknownName(_))
        ));
    }

    #[test]
    fn domain_rules_match_the_cli_contract() {
        // Strictly positive fields reject zero...
        for (field, spec) in [
            (
                "lambda",
                PlanSpec {
                    lambda: Some(0.0),
                    ..PlanSpec::default()
                },
            ),
            (
                "rho",
                PlanSpec {
                    rho: Some(0.0),
                    ..PlanSpec::default()
                },
            ),
        ] {
            match spec.validate_domains() {
                Err(SpecError::Invalid { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected Invalid({field}), got {other:?}"),
            }
        }
        // ...while recovery and the powers admit zero.
        let ok = PlanSpec {
            recovery: Some(0.0),
            pidle: Some(0.0),
            pio: Some(0.0),
            ..PlanSpec::default()
        };
        assert_eq!(ok.validate_domains(), Ok(()));
        // NaN and ±inf are rejected everywhere.
        let nan = PlanSpec {
            checkpoint: Some(f64::NAN),
            ..PlanSpec::default()
        };
        assert!(matches!(
            nan.validate_domains(),
            Err(SpecError::Invalid {
                field: "checkpoint",
                ..
            })
        ));
        let inf = PlanSpec {
            pidle: Some(f64::NEG_INFINITY),
            ..PlanSpec::default()
        };
        assert!(matches!(
            inf.validate_domains(),
            Err(SpecError::Invalid { field: "pidle", .. })
        ));
    }

    #[test]
    fn speed_rules() {
        let empty = PlanSpec {
            speeds: Some(vec![]),
            ..PlanSpec::default()
        };
        assert_eq!(empty.validate_domains(), Err(SpecError::EmptySpeeds));
        let zero = PlanSpec {
            speeds: Some(vec![0.5, 0.0]),
            ..PlanSpec::default()
        };
        assert!(matches!(
            zero.validate_domains(),
            Err(SpecError::Invalid {
                field: "speeds",
                ..
            })
        ));
    }

    #[test]
    fn error_display_names_field_value_and_reason() {
        let e = PlanSpec {
            lambda: Some(-2.0),
            ..PlanSpec::default()
        }
        .validate_domains()
        .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("lambda") && msg.contains("-2") && msg.contains("positive"));
    }
}
