//! The shared plan specification: one place that owns the domain rules
//! (which parameter must be strictly positive, which may be zero) and
//! the named-configuration resolution, so the `rexec-plan` CLI and the
//! `rexec-serve` wire protocol validate and resolve queries through the
//! **same** code path and cannot drift.
//!
//! Field names here are the *wire* names (`lambda`, `pidle`, …); the
//! CLI maps them to `--lambda`, `--pidle`, … when reporting errors.

use rexec_core::{ErrorLaw, ModelError, PowerModel, ResilienceCosts, SilentModel, SpeedSet};
use rexec_platforms::{Platform, PlatformId, Processor, ProcessorId};
use std::fmt;

/// A plan query before resolution: every parameter optional, either
/// taken from a named configuration or given explicitly (explicit
/// values override the named configuration).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanSpec {
    /// Named platform (`hera`/`atlas`/`coastal`/`coastal-ssd`).
    pub platform: Option<String>,
    /// Named processor (`xscale`/`crusoe`).
    pub processor: Option<String>,
    /// Silent-error rate λ (1/s); strictly positive.
    pub lambda: Option<f64>,
    /// Checkpoint cost C (s); strictly positive.
    pub checkpoint: Option<f64>,
    /// Verification cost V at full speed (s); strictly positive.
    pub verification: Option<f64>,
    /// Recovery cost R (s); non-negative, defaults to C.
    pub recovery: Option<f64>,
    /// Cube-law coefficient κ (mW); strictly positive.
    pub kappa: Option<f64>,
    /// Static power Pidle (mW); non-negative.
    pub pidle: Option<f64>,
    /// I/O power Pio (mW); non-negative, defaults to κσ_min³.
    pub pio: Option<f64>,
    /// Normalized DVFS speeds; each strictly positive, non-empty.
    pub speeds: Option<Vec<f64>>,
    /// Performance bound ρ; strictly positive, defaults to 3.
    pub rho: Option<f64>,
    /// Silent-error law name (`exponential`/`weibull`/`lognormal`);
    /// defaults to exponential (the paper's Poisson model).
    pub law: Option<String>,
    /// Shape parameter of a non-exponential law (Weibull shape `k`,
    /// lognormal log-scale `s`); required by and only meaningful with
    /// `law = weibull`/`lognormal`.
    pub shape: Option<f64>,
    /// Re-execution schedule search depth `K` (schedules of `K` retry
    /// speeds, settling on the last); 1–4, defaults to the paper's
    /// single σ₂.
    pub schedule_depth: Option<u32>,
    /// Deadline quantile `q ∈ (0, 1)`: bound the `q`-quantile of `T/W`
    /// by ρ instead of the expectation.
    pub quantile: Option<f64>,
}

/// What a [`PlanSpec`] resolves to: a validated model, the speed set,
/// and the (defaulted) performance bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPlan {
    /// The analytic model the solver runs on.
    pub model: SilentModel,
    /// The available DVFS speeds.
    pub speeds: SpeedSet,
    /// The performance bound ρ (default 3 when unspecified).
    pub rho: f64,
}

/// Default performance bound when a spec leaves `rho` unset.
pub const DEFAULT_RHO: f64 = 3.0;

/// Largest accepted `schedule_depth`: the search enumerates
/// `|speeds|^(K+1)` schedules, so the depth is capped where the paper's
/// five-speed sets stay sub-millisecond.
pub const MAX_SCHEDULE_DEPTH: u32 = 4;

/// Validation / resolution failures, shared by CLI and wire surfaces.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A numeric parameter fails its domain rule (NaN, ±inf, sign).
    Invalid {
        /// Wire-level field name (`lambda`, `pidle`, …).
        field: &'static str,
        /// Offending value.
        value: f64,
        /// What the field requires.
        reason: &'static str,
    },
    /// A speed list was given but empty.
    EmptySpeeds,
    /// Bad platform/processor name.
    UnknownName(String),
    /// Neither a named configuration nor enough custom parameters.
    Underspecified(&'static str),
    /// Parameters pass the field rules but do not form a valid model.
    Model(ModelError),
    /// A recognized, well-formed parameter names a capability this
    /// surface does not provide (e.g. a non-memoryless error law on the
    /// analytic planner, which needs memorylessness).
    Unsupported {
        /// Wire-level field name (`law`, `schedule_depth`, …).
        field: &'static str,
        /// Why the combination is not supported, and what to use.
        reason: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Invalid {
                field,
                value,
                reason,
            } => write!(f, "invalid value `{value}` for `{field}`: {reason}"),
            SpecError::EmptySpeeds => write!(f, "`speeds` needs at least one speed"),
            SpecError::UnknownName(n) => write!(f, "unknown name: {n}"),
            SpecError::Underspecified(what) => write!(
                f,
                "missing parameter: {what} (give a platform/processor or custom values)"
            ),
            SpecError::Model(e) => write!(f, "invalid parameters: {e}"),
            SpecError::Unsupported { field, reason } => {
                write!(f, "unsupported `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e)
    }
}

/// Rejects NaN/±inf and non-positive values: rates, costs, speeds and
/// the bound must be strictly positive real numbers.
pub fn check_positive(field: &'static str, v: Option<f64>) -> Result<(), SpecError> {
    match v {
        Some(x) if !x.is_finite() => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must be a finite number",
        }),
        Some(x) if x <= 0.0 => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must be strictly positive",
        }),
        _ => Ok(()),
    }
}

/// Rejects NaN/±inf and negative values: powers and the recovery cost
/// may be zero but not negative.
pub fn check_non_negative(field: &'static str, v: Option<f64>) -> Result<(), SpecError> {
    match v {
        Some(x) if !x.is_finite() => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must be a finite number",
        }),
        Some(x) if x < 0.0 => Err(SpecError::Invalid {
            field,
            value: x,
            reason: "must not be negative",
        }),
        _ => Ok(()),
    }
}

/// Resolves a platform name (case-insensitive, paper Table 1).
pub fn platform_by_name(name: &str) -> Result<Platform, SpecError> {
    let id = match name.to_ascii_lowercase().as_str() {
        "hera" => PlatformId::Hera,
        "atlas" => PlatformId::Atlas,
        "coastal" => PlatformId::Coastal,
        "coastal-ssd" | "coastal_ssd" | "coastalssd" => PlatformId::CoastalSsd,
        _ => return Err(SpecError::UnknownName(name.to_string())),
    };
    Ok(Platform::get(id))
}

/// Resolves a processor name (case-insensitive, paper Table 2).
pub fn processor_by_name(name: &str) -> Result<Processor, SpecError> {
    let id = match name.to_ascii_lowercase().as_str() {
        "xscale" | "intel-xscale" => ProcessorId::IntelXScale,
        "crusoe" | "transmeta-crusoe" => ProcessorId::TransmetaCrusoe,
        _ => return Err(SpecError::UnknownName(name.to_string())),
    };
    Ok(Processor::get(id))
}

impl PlanSpec {
    /// The one rule table: every numeric field checked against its
    /// domain (NaN and ±inf always rejected; zero admitted only where
    /// the model tolerates it). Both the CLI's argument parser and the
    /// serve wire decoder call exactly this.
    pub fn validate_domains(&self) -> Result<(), SpecError> {
        check_positive("lambda", self.lambda)?;
        check_positive("checkpoint", self.checkpoint)?;
        check_positive("verification", self.verification)?;
        check_non_negative("recovery", self.recovery)?;
        check_positive("kappa", self.kappa)?;
        check_non_negative("pidle", self.pidle)?;
        check_non_negative("pio", self.pio)?;
        check_positive("rho", self.rho)?;
        if let Some(speeds) = &self.speeds {
            if speeds.is_empty() {
                return Err(SpecError::EmptySpeeds);
            }
            for &s in speeds {
                check_positive("speeds", Some(s))?;
            }
        }
        check_positive("shape", self.shape)?;
        self.error_law()?;
        if let Some(q) = self.quantile {
            check_positive("quantile", Some(q))?;
            if q >= 1.0 {
                return Err(SpecError::Invalid {
                    field: "quantile",
                    value: q,
                    reason: "must be strictly below 1",
                });
            }
        }
        if let Some(d) = self.schedule_depth {
            if !(1..=MAX_SCHEDULE_DEPTH).contains(&d) {
                return Err(SpecError::Invalid {
                    field: "schedule_depth",
                    value: f64::from(d),
                    reason: "must be between 1 and 4",
                });
            }
        }
        Ok(())
    }

    /// Resolves the `law`/`shape` pair into a typed [`ErrorLaw`]
    /// (`Exponential` when unset). Rejects unknown law names, a shape
    /// without a law that uses one, and a shape-requiring law without a
    /// shape — the same rule table for the CLI and the wire.
    pub fn error_law(&self) -> Result<ErrorLaw, SpecError> {
        let law = match self.law.as_deref().map(str::to_ascii_lowercase).as_deref() {
            None | Some("exponential") => {
                if let Some(shape) = self.shape {
                    return Err(SpecError::Invalid {
                        field: "shape",
                        value: shape,
                        reason: "only meaningful with a weibull or lognormal law",
                    });
                }
                ErrorLaw::Exponential
            }
            Some("weibull") => ErrorLaw::Weibull {
                shape: self.shape.ok_or(SpecError::Underspecified("shape"))?,
            },
            Some("lognormal") => ErrorLaw::LogNormal {
                sigma: self.shape.ok_or(SpecError::Underspecified("shape"))?,
            },
            Some(other) => return Err(SpecError::UnknownName(format!("law `{other}`"))),
        };
        law.validate().map_err(|reason| SpecError::Invalid {
            field: "shape",
            value: self.shape.unwrap_or(f64::NAN),
            reason,
        })?;
        Ok(law)
    }

    /// Validates the domains, resolves named configurations, applies
    /// explicit overrides and the documented defaults (`R = C`,
    /// `Pio = κσ_min³`, `ρ = 3`), and builds the model.
    pub fn resolve(&self) -> Result<ResolvedPlan, SpecError> {
        self.validate_domains()?;
        // The analytic planner's expectations (Propositions 2–5) rest on
        // memorylessness; non-exponential laws are simulation-only.
        if !self.error_law()?.is_memoryless() {
            return Err(SpecError::Unsupported {
                field: "law",
                reason: "the analytic planner requires a memoryless (exponential) error law; \
                         non-exponential laws are simulation-only (see the X-laws experiment)",
            });
        }
        let platform = self.platform.as_deref().map(platform_by_name).transpose()?;
        let processor = self
            .processor
            .as_deref()
            .map(processor_by_name)
            .transpose()?;

        let lambda = self
            .lambda
            .or(platform.as_ref().map(|p| p.lambda))
            .ok_or(SpecError::Underspecified("lambda"))?;
        let checkpoint = self
            .checkpoint
            .or(platform.as_ref().map(|p| p.checkpoint))
            .ok_or(SpecError::Underspecified("checkpoint"))?;
        let verification = self
            .verification
            .or(platform.as_ref().map(|p| p.verification))
            .ok_or(SpecError::Underspecified("verification"))?;
        let recovery = self.recovery.unwrap_or(checkpoint);

        let speeds_vec = self
            .speeds
            .clone()
            .or(processor.as_ref().map(|p| p.speeds.clone()))
            .ok_or(SpecError::Underspecified("speeds"))?;
        let speeds = SpeedSet::new(speeds_vec)?;

        let kappa = self
            .kappa
            .or(processor.as_ref().map(|p| p.kappa))
            .ok_or(SpecError::Underspecified("kappa"))?;
        let p_idle = self
            .pidle
            .or(processor.as_ref().map(|p| p.p_idle))
            .ok_or(SpecError::Underspecified("pidle"))?;
        let p_io = self.pio.unwrap_or_else(|| kappa * speeds.min().powi(3));

        let model = SilentModel::new(
            lambda,
            ResilienceCosts::new(checkpoint, verification, recovery)?,
            PowerModel::new(kappa, p_idle, p_io)?,
        )?;
        Ok(ResolvedPlan {
            model,
            speeds,
            rho: self.rho.unwrap_or(DEFAULT_RHO),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(platform: &str, processor: &str) -> PlanSpec {
        PlanSpec {
            platform: Some(platform.into()),
            processor: Some(processor.into()),
            ..PlanSpec::default()
        }
    }

    #[test]
    fn named_configuration_resolves_with_defaults() {
        let r = named("hera", "xscale").resolve().unwrap();
        assert_eq!(r.model.lambda, 3.38e-6);
        assert_eq!(r.model.costs.checkpoint, 300.0);
        assert_eq!(r.model.costs.recovery, 300.0, "R defaults to C");
        assert_eq!(r.rho, DEFAULT_RHO);
        assert_eq!(r.speeds.len(), 5);
        // Pio defaults to the dynamic power at the slowest speed.
        assert!((r.model.power.p_io - 1550.0 * 0.15f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn overrides_apply_on_top_of_named_configuration() {
        let spec = PlanSpec {
            lambda: Some(1e-5),
            rho: Some(1.775),
            ..named("hera", "xscale")
        };
        let r = spec.resolve().unwrap();
        assert_eq!(r.model.lambda, 1e-5);
        assert_eq!(r.rho, 1.775);
    }

    #[test]
    fn underspecified_names_the_missing_field() {
        let spec = PlanSpec {
            lambda: Some(1e-5),
            ..PlanSpec::default()
        };
        assert_eq!(spec.resolve(), Err(SpecError::Underspecified("checkpoint")));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(
            named("jupiter", "xscale").resolve(),
            Err(SpecError::UnknownName(_))
        ));
        assert!(matches!(
            named("hera", "epyc").resolve(),
            Err(SpecError::UnknownName(_))
        ));
    }

    #[test]
    fn domain_rules_match_the_cli_contract() {
        // Strictly positive fields reject zero...
        for (field, spec) in [
            (
                "lambda",
                PlanSpec {
                    lambda: Some(0.0),
                    ..PlanSpec::default()
                },
            ),
            (
                "rho",
                PlanSpec {
                    rho: Some(0.0),
                    ..PlanSpec::default()
                },
            ),
        ] {
            match spec.validate_domains() {
                Err(SpecError::Invalid { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected Invalid({field}), got {other:?}"),
            }
        }
        // ...while recovery and the powers admit zero.
        let ok = PlanSpec {
            recovery: Some(0.0),
            pidle: Some(0.0),
            pio: Some(0.0),
            ..PlanSpec::default()
        };
        assert_eq!(ok.validate_domains(), Ok(()));
        // NaN and ±inf are rejected everywhere.
        let nan = PlanSpec {
            checkpoint: Some(f64::NAN),
            ..PlanSpec::default()
        };
        assert!(matches!(
            nan.validate_domains(),
            Err(SpecError::Invalid {
                field: "checkpoint",
                ..
            })
        ));
        let inf = PlanSpec {
            pidle: Some(f64::NEG_INFINITY),
            ..PlanSpec::default()
        };
        assert!(matches!(
            inf.validate_domains(),
            Err(SpecError::Invalid { field: "pidle", .. })
        ));
    }

    #[test]
    fn speed_rules() {
        let empty = PlanSpec {
            speeds: Some(vec![]),
            ..PlanSpec::default()
        };
        assert_eq!(empty.validate_domains(), Err(SpecError::EmptySpeeds));
        let zero = PlanSpec {
            speeds: Some(vec![0.5, 0.0]),
            ..PlanSpec::default()
        };
        assert!(matches!(
            zero.validate_domains(),
            Err(SpecError::Invalid {
                field: "speeds",
                ..
            })
        ));
    }

    #[test]
    fn law_rules_share_one_table() {
        // Unset and "exponential" both resolve to the memoryless law.
        assert_eq!(
            PlanSpec::default().error_law(),
            Ok(rexec_core::ErrorLaw::Exponential)
        );
        let exp = PlanSpec {
            law: Some("Exponential".into()),
            ..named("hera", "xscale")
        };
        assert_eq!(exp.error_law(), Ok(rexec_core::ErrorLaw::Exponential));
        assert!(exp.resolve().is_ok(), "exponential law plans normally");
        // Shape-requiring laws resolve case-insensitively...
        let wb = PlanSpec {
            law: Some("Weibull".into()),
            shape: Some(0.7),
            ..PlanSpec::default()
        };
        assert_eq!(
            wb.error_law(),
            Ok(rexec_core::ErrorLaw::Weibull { shape: 0.7 })
        );
        let ln = PlanSpec {
            law: Some("lognormal".into()),
            shape: Some(1.2),
            ..PlanSpec::default()
        };
        assert_eq!(
            ln.error_law(),
            Ok(rexec_core::ErrorLaw::LogNormal { sigma: 1.2 })
        );
        // ...but need their shape...
        let missing = PlanSpec {
            law: Some("weibull".into()),
            ..PlanSpec::default()
        };
        assert_eq!(missing.error_law(), Err(SpecError::Underspecified("shape")));
        // ...and a shape without such a law is rejected.
        let orphan = PlanSpec {
            shape: Some(0.7),
            ..PlanSpec::default()
        };
        assert!(matches!(
            orphan.validate_domains(),
            Err(SpecError::Invalid { field: "shape", .. })
        ));
        // Unknown law names are named in the error.
        let unknown = PlanSpec {
            law: Some("pareto".into()),
            ..PlanSpec::default()
        };
        assert!(matches!(
            unknown.validate_domains(),
            Err(SpecError::UnknownName(n)) if n.contains("pareto")
        ));
        // NaN/zero shapes fall to the positivity rule before law logic.
        for bad in [f64::NAN, 0.0, -1.0, f64::INFINITY] {
            let s = PlanSpec {
                law: Some("weibull".into()),
                shape: Some(bad),
                ..PlanSpec::default()
            };
            assert!(
                matches!(
                    s.validate_domains(),
                    Err(SpecError::Invalid { field: "shape", .. })
                ),
                "shape {bad} must be rejected"
            );
        }
    }

    #[test]
    fn non_memoryless_laws_are_unsupported_by_the_planner() {
        let spec = PlanSpec {
            law: Some("weibull".into()),
            shape: Some(0.7),
            ..named("hera", "xscale")
        };
        assert_eq!(spec.validate_domains(), Ok(()), "the spec itself is valid");
        match spec.resolve() {
            Err(SpecError::Unsupported {
                field: "law",
                reason,
            }) => {
                assert!(reason.contains("memoryless"));
            }
            other => panic!("expected Unsupported(law), got {other:?}"),
        }
        let msg = spec.resolve().unwrap_err().to_string();
        assert!(msg.contains("unsupported") && msg.contains("law"));
    }

    #[test]
    fn quantile_and_depth_domains() {
        for bad in [0.0, -0.5, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            let s = PlanSpec {
                quantile: Some(bad),
                ..PlanSpec::default()
            };
            assert!(
                matches!(
                    s.validate_domains(),
                    Err(SpecError::Invalid {
                        field: "quantile",
                        ..
                    })
                ),
                "quantile {bad} must be rejected"
            );
        }
        for bad in [0u32, 5, 100] {
            let s = PlanSpec {
                schedule_depth: Some(bad),
                ..PlanSpec::default()
            };
            assert!(
                matches!(
                    s.validate_domains(),
                    Err(SpecError::Invalid {
                        field: "schedule_depth",
                        ..
                    })
                ),
                "depth {bad} must be rejected"
            );
        }
        let ok = PlanSpec {
            quantile: Some(0.99),
            schedule_depth: Some(MAX_SCHEDULE_DEPTH),
            ..PlanSpec::default()
        };
        assert_eq!(ok.validate_domains(), Ok(()));
    }

    #[test]
    fn error_display_names_field_value_and_reason() {
        let e = PlanSpec {
            lambda: Some(-2.0),
            ..PlanSpec::default()
        }
        .validate_domains()
        .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("lambda") && msg.contains("-2") && msg.contains("positive"));
    }
}
